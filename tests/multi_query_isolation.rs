//! Multi-query isolation properties of the [`PipelineManager`], under
//! maximal back-pressure (`queue_capacity = 1`) on all three executors:
//!
//! 1. **Feedback isolation** — desired-intent feedback issued inside one
//!    query never reaches a sibling's private operators, and never reaches
//!    the shared source unless *every* sharer asserts the same round (the
//!    [`SharedFanout`]'s unanimity lattice).
//! 2. **Lifecycle isolation** — attaching or detaching a query mid-stream at
//!    a punctuation boundary leaves every sibling's sink digest
//!    byte-identical to a solo (manager-less) run of the same plan.

use feedback_dsms::operators::SinkHandle;
use feedback_dsms::prelude::*;
use proptest::prelude::*;

fn schema() -> SchemaRef {
    Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
}

fn feed(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|v| {
            Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(v)), Value::Int(v)])
        })
        .collect()
}

fn source(n: i64) -> VecSource {
    VecSource::new("feed", feed(n))
        .with_punctuation("timestamp", StreamDuration::from_secs(4))
        .with_batch_size(4)
}

fn evens() -> TuplePredicate {
    TuplePredicate::new("v is even", |t| t.int("v").map(|v| v % 2 == 0).unwrap_or(false))
}

fn odds() -> TuplePredicate {
    TuplePredicate::new("v is odd", |t| t.int("v").map(|v| v % 2 != 0).unwrap_or(false))
}

/// A desired-intent pattern all subscribers share, so rounds can meet in the
/// fan-out's unanimity lattice.  Desired feedback prioritizes rather than
/// suppresses, so it perturbs no digest.
fn wanted() -> Pattern {
    Pattern::for_attributes(schema(), &[("v", PatternItem::Eq(Value::Int(2)))]).unwrap()
}

/// A never-matching assumed pattern: assumed is the intent operators *relay*
/// toward the source (it is what would let the source slow down), and a
/// never-matching guard suppresses nothing, so digests stay untouched.
fn never_matching() -> Pattern {
    Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(i64::MAX / 2)))]).unwrap()
}

fn digest(handle: &SinkHandle) -> String {
    let mut rows: Vec<String> = handle.lock().iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// Solo (manager-less) reference run: `source → select → sink`, sync.
fn solo_digest(n: i64, predicate: TuplePredicate) -> String {
    let builder = StreamBuilder::new().with_queue_capacity(1);
    let handle = builder
        .source(source(n))
        .unwrap()
        .select("filter", predicate)
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    SyncExecutor::run(builder.build().unwrap()).unwrap();
    digest(&handle)
}

/// Builds `source_ref → select → [desired subscription] → sink` against the
/// manager's named source.
fn managed_plan(
    manager: &PipelineManager,
    predicate: TuplePredicate,
    subscriptions: &[FeedbackSpec],
) -> (feedback_dsms::engine::QueryPlan, SinkHandle) {
    let builder = StreamBuilder::new();
    let mut stream = builder
        .source(manager.source_ref("feed").unwrap())
        .unwrap()
        .select("filter", predicate)
        .unwrap();
    for spec in subscriptions {
        stream = stream.with_feedback(spec.clone()).unwrap();
    }
    let handle = stream.sink_collect("sink").unwrap();
    (builder.build().unwrap(), handle)
}

const EXECUTORS: [ExecutorKind; 3] =
    [ExecutorKind::Sync, ExecutorKind::Threaded, ExecutorKind::Pooled];

/// Every private operator of the named query must be feedback-silent.
fn assert_feedback_silent(outcome: &ManagerOutcome, query: &str) {
    let report = outcome.query(query).unwrap();
    for metric in &report.metrics {
        assert_eq!(
            (metric.feedback_in, metric.feedback_out),
            (0, 0),
            "{query}/{} must never see a sibling's feedback",
            metric.operator
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Three queries — two sharing a filter prefix, one with its own — where
    /// only the first issues desired feedback: the feedback reaches its own
    /// fan-out port, but no sibling operator and (absent unanimity) never the
    /// shared source.  When *all* queries assert the same round, the lattice
    /// releases it and the source hears it.
    #[test]
    fn desired_feedback_stays_inside_its_query(
        n in 24i64..96,
        fire_after in 1u64..8,
        all_assert_raw in 0u8..2,
    ) {
        let all_assert = all_assert_raw == 1;
        for kind in EXECUTORS {
            let mut manager = PipelineManager::new().with_queue_capacity(1);
            manager.add_source("feed", source(n)).unwrap();
            let desired = FeedbackSpec::desired(wanted()).after_tuples(fire_after);
            let assumed = FeedbackSpec::assumed(never_matching()).after_tuples(fire_after);
            let (qa_subs, sibling_subs): (Vec<FeedbackSpec>, Vec<FeedbackSpec>) = if all_assert {
                (vec![desired, assumed.clone()], vec![assumed])
            } else {
                (vec![desired], vec![])
            };
            let (plan_a, sink_a) = managed_plan(&manager, evens(), &qa_subs);
            let (plan_b, sink_b) = managed_plan(&manager, evens(), &sibling_subs);
            let (plan_c, sink_c) = managed_plan(&manager, odds(), &sibling_subs);
            manager.register("qa", plan_a).unwrap();
            manager.register("qb", plan_b).unwrap();
            manager.register("qc", plan_c).unwrap();

            let outcome = manager.run(kind).unwrap();
            prop_assert_eq!(outcome.master.total_feedback_dropped(), 0);

            // Data parity: desired feedback never perturbs any digest.
            prop_assert_eq!(digest(&sink_a), solo_digest(n, evens()), "{:?} qa", kind);
            prop_assert_eq!(digest(&sink_b), solo_digest(n, evens()), "{:?} qb", kind);
            prop_assert_eq!(digest(&sink_c), solo_digest(n, odds()), "{:?} qc", kind);

            // The subscription fired inside qa…
            let qa = outcome.query("qa").unwrap();
            prop_assert!(
                qa.operator("sink").unwrap().feedback_out >= 1,
                "{:?}: qa's subscription must fire", kind
            );

            let source_heard = outcome.master.operator("feed").unwrap().feedback_in;
            if all_assert {
                // …and with every sharer asserting the same assumed round,
                // the lattice releases it upstream to the shared source.
                prop_assert!(source_heard >= 1, "{:?}: unanimous feedback reaches the source", kind);
            } else {
                // …but no sibling operator saw it, and the source stays
                // undisturbed because qb and qc never agreed.
                assert_feedback_silent(&outcome, "qb");
                assert_feedback_silent(&outcome, "qc");
                prop_assert_eq!(
                    source_heard, 0,
                    "{:?}: the source must not slow down until every sharer agrees", kind
                );
            }
        }
    }

    /// Detaching (or late-attaching) one query at a scripted punctuation
    /// boundary leaves its siblings' sinks byte-identical to solo runs, on
    /// every executor.
    #[test]
    fn lifecycle_changes_never_disturb_siblings(
        n in 32i64..96,
        boundary in 1u64..5,
        late_attach_raw in 0u8..2,
    ) {
        let late_attach = late_attach_raw == 1;
        let solo_evens = solo_digest(n, evens());
        let solo_odds = solo_digest(n, odds());
        for kind in EXECUTORS {
            let mut manager = PipelineManager::new().with_queue_capacity(1);
            manager.add_source("feed", source(n)).unwrap();
            let (plan_a, sink_a) = managed_plan(&manager, evens(), &[]);
            let (plan_b, sink_b) = managed_plan(&manager, evens(), &[]);
            let (plan_c, sink_c) = managed_plan(&manager, odds(), &[]);
            manager.register("qa", plan_a).unwrap();
            manager.register("qc", plan_c).unwrap();
            if late_attach {
                manager.register_detached("qb", plan_b).unwrap();
                manager.attach_at("qb", boundary).unwrap();
            } else {
                manager.register("qb", plan_b).unwrap();
                manager.detach_at("qb", boundary).unwrap();
            }

            let outcome = manager.run(kind).unwrap();
            prop_assert_eq!(outcome.master.total_feedback_dropped(), 0);
            prop_assert_eq!(
                digest(&sink_a), solo_evens.clone(),
                "{:?}: sibling qa must be byte-identical to its solo run", kind
            );
            prop_assert_eq!(
                digest(&sink_c), solo_odds.clone(),
                "{:?}: sibling qc must be byte-identical to its solo run", kind
            );
            // The steered query saw a subset of the solo output, cut at a
            // punctuation boundary.
            let partial = digest(&sink_b);
            let solo_rows: Vec<&str> = solo_evens.lines().collect();
            prop_assert!(
                partial.lines().all(|row| solo_rows.contains(&row)),
                "{:?}: the steered query saw only tuples from the solo result", kind
            );
            prop_assert_eq!(outcome.summary.queries_registered, 3);
            if late_attach {
                prop_assert_eq!(outcome.summary.queries_active, 3);
            } else {
                prop_assert_eq!(outcome.summary.queries_stopped, 1);
            }
        }
    }
}
