//! Supervised recovery under deterministic fault injection, pinned across
//! all three executors at maximal back-pressure (`queue_capacity = 1`).
//!
//! Every fault here is scripted by a [`Chaos`] wrapper — panic at an exact
//! tuple ordinal, a transient error that heals after k firings, a stall that
//! buffers pages — so the tests are reproducible, not probabilistic.  The
//! invariants:
//!
//! * a supervised operator (`RecoveryPolicy::Restart`) restarts in place:
//!   the checkpoint restores its state, the retained post-checkpoint suffix
//!   replays, and the **sorted sink digest is byte-identical to a fault-free
//!   run** on sync, threaded, and pooled executors alike;
//! * `restarts`, `checkpoints_taken`, and `tuples_replayed` are reported,
//!   and `feedback_dropped == 0` — recovery must not eat control messages;
//! * a fail-fast operator failure carries **identical error text** on all
//!   three executors (the lifecycle attributes it once, executors pass it
//!   through);
//! * an exhausted restart budget with quarantine enabled tombstones the
//!   failed stream instead of failing the run, and under a
//!   [`PipelineManager`] the quarantined query detaches from the shared
//!   fan-out while sibling digests stay byte-identical to solo runs.

use feedback_dsms::prelude::*;
use std::time::Duration;

fn schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
}

fn tuples(n: i64, keys: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                schema(),
                vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % keys)],
            )
        })
        .collect()
}

fn source(n: i64, keys: i64) -> VecSource {
    VecSource::new("source", tuples(n, keys)).with_punctuation("ts", StreamDuration::from_secs(4))
}

/// Canonical digest: debug-rendered value rows, sorted and joined — two runs
/// are equivalent iff their digests are byte-identical.
fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// A never-matching pattern so feedback exercises the full control path
/// without perturbing the data digest.
fn never_matching() -> Pattern {
    Pattern::for_attributes(schema(), &[("key", PatternItem::Ge(Value::Int(i64::MAX / 2)))])
        .unwrap()
}

fn restart(max_restarts: u32) -> RecoveryPolicy {
    RecoveryPolicy::Restart { max_restarts, backoff: Duration::ZERO }
}

#[derive(Clone, Copy, PartialEq)]
enum Exec {
    Sync,
    Threaded,
    Pooled,
}

const EXECUTORS: [Exec; 3] = [Exec::Sync, Exec::Threaded, Exec::Pooled];

impl Exec {
    fn run(self, plan: QueryPlan) -> Result<ExecutionReport, feedback_dsms::engine::EngineError> {
        match self {
            Exec::Sync => SyncExecutor::run(plan),
            Exec::Threaded => ThreadedExecutor::run(plan),
            Exec::Pooled => PooledExecutor::run(plan),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Exec::Sync => "sync",
            Exec::Threaded => "threaded",
            Exec::Pooled => "pooled",
        }
    }
}

/// source → chaos(shuffle) → 3 chaos(select) replicas (panic, transient
/// error, stall) → merge → sink, all queues one page deep.  With
/// `faults: false` the same topology is built fault-free (plain operators).
fn partitioned_plan(faults: bool) -> (QueryPlan, feedback_dsms::operators::SinkHandle) {
    let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
    let shuffle = Shuffle::new("shuffle", schema(), &["key"], 3).unwrap();
    let stream = builder.source(source(400, 24)).unwrap();
    let partition_streams = if faults {
        // A stall on the shuffle delays whole pages without reordering them.
        stream
            .apply_multi(Chaos::new(shuffle, FaultSpec::Stall { at_tuple: 21, steps: 2 }))
            .unwrap()
    } else {
        stream.apply_multi(shuffle).unwrap()
    };
    let mut replicas = Vec::new();
    for (i, partition) in partition_streams.into_iter().enumerate() {
        let select = Select::new(format!("replica-{i}"), schema(), TuplePredicate::always());
        let replica = if faults {
            // Thresholds sit well below the smallest partition's tuple count
            // (the key hash spreads 400 tuples unevenly across the three).
            let fault = match i {
                0 => FaultSpec::Panic { at_tuple: 20, times: 1 },
                1 => FaultSpec::Error { at_tuple: 30, times: 2 },
                _ => FaultSpec::Stall { at_tuple: 25, steps: 3 },
            };
            partition
                .apply_as(Chaos::new(select, fault), schema())
                .unwrap()
                .with_recovery(restart(3))
        } else {
            partition.apply_as(select, schema()).unwrap()
        };
        replicas.push(replica);
    }
    let merged = Stream::merge(replicas, Merge::new("merge", schema(), 3)).unwrap();
    let handle = merged
        .with_feedback(FeedbackSpec::assumed(never_matching()).at_flush())
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    (builder.build().unwrap(), handle)
}

/// The tentpole invariant: panic, transient-error, and stall faults on
/// supervised replicas leave every executor's sorted sink digest
/// byte-identical to the fault-free run, with restarts and replay reported
/// and no feedback dropped.
#[test]
fn chaos_replicas_match_fault_free_digests_on_all_executors() {
    let (plan, handle) = partitioned_plan(false);
    SyncExecutor::run(plan).unwrap();
    let expected = digest(&handle.lock());
    assert!(!expected.is_empty());

    for exec in EXECUTORS {
        let (plan, handle) = partitioned_plan(true);
        let report = exec.run(plan).unwrap();
        assert_eq!(
            digest(&handle.lock()),
            expected,
            "{}: faulty digest must be byte-identical to fault-free",
            exec.name()
        );
        let recovery = report.recovery();
        // One panic + two transient errors, each absorbed by a restart; the
        // fired counts persist across restore, so replay never re-fires.
        assert_eq!(recovery.restarts, 3, "{}", exec.name());
        assert!(recovery.checkpoints_taken > 0, "{}", exec.name());
        assert!(recovery.tuples_replayed > 0, "{}", exec.name());
        assert!(recovery.quarantined.is_empty(), "{}", exec.name());
        assert_eq!(report.total_feedback_dropped(), 0, "{}", exec.name());
        // Per-operator accounting lands on the wrapped replicas.
        assert_eq!(report.operator("chaos:replica-0").unwrap().restarts, 1);
        assert_eq!(report.operator("chaos:replica-1").unwrap().restarts, 2);
        assert_eq!(report.operator("chaos:replica-2").unwrap().restarts, 0);
    }
}

/// A stateful aggregate healing from a transient error mid-window: the
/// checkpoint restores its open partials and the replayed suffix rebuilds
/// exactly the counts a fault-free run produces.
#[test]
fn aggregate_recovers_mid_window_on_all_executors() {
    let build = |faults: bool| {
        let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
        let agg = WindowAggregate::new(
            "counts",
            schema(),
            "ts",
            StreamDuration::from_secs(8),
            &["key"],
            AggregateFunction::Count,
        )
        .unwrap();
        let out_schema = agg.output_schema().clone();
        let stream = builder.source(source(240, 6)).unwrap();
        let stream = if faults {
            stream
                .apply_as(Chaos::new(agg, FaultSpec::Error { at_tuple: 50, times: 2 }), out_schema)
                .unwrap()
                .with_recovery(restart(2))
        } else {
            stream.apply(agg).unwrap()
        };
        let handle = stream.sink_collect("sink").unwrap();
        (builder.build().unwrap(), handle)
    };

    let (plan, handle) = build(false);
    SyncExecutor::run(plan).unwrap();
    let expected = digest(&handle.lock());
    assert!(!expected.is_empty());

    for exec in EXECUTORS {
        let (plan, handle) = build(true);
        let report = exec.run(plan).unwrap();
        assert_eq!(digest(&handle.lock()), expected, "{}", exec.name());
        assert_eq!(report.recovery().restarts, 2, "{}", exec.name());
        assert_eq!(report.total_feedback_dropped(), 0, "{}", exec.name());
    }
}

fn right_schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
}

/// A symmetric hash join panicking with both hash tables loaded: the
/// checkpoint restores both sides and the watermark pair, and the replayed
/// probe suffix reproduces the fault-free match set.
#[test]
fn join_recovers_from_panic_on_all_executors() {
    let build = |faults: bool| {
        let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
        let join = SymmetricHashJoin::new(
            "join",
            schema(),
            right_schema(),
            &["key"],
            "ts",
            StreamDuration::from_secs(16),
        )
        .unwrap();
        let out_schema = join.output_schema().clone();
        let left = builder.source(source(120, 8)).unwrap();
        let right = builder
            .source(
                VecSource::new("right", tuples(120, 8))
                    .with_punctuation("ts", StreamDuration::from_secs(4)),
            )
            .unwrap();
        let stream = if faults {
            Stream::merge_as(
                vec![left, right],
                Chaos::new(join, FaultSpec::Panic { at_tuple: 60, times: 1 }),
                out_schema,
            )
            .unwrap()
            .with_recovery(restart(1))
        } else {
            Stream::merge(vec![left, right], join).unwrap()
        };
        let handle = stream.sink_collect("sink").unwrap();
        (builder.build().unwrap(), handle)
    };

    let (plan, handle) = build(false);
    SyncExecutor::run(plan).unwrap();
    let expected = digest(&handle.lock());
    assert!(!expected.is_empty());

    for exec in EXECUTORS {
        let (plan, handle) = build(true);
        let report = exec.run(plan).unwrap();
        assert_eq!(digest(&handle.lock()), expected, "{}", exec.name());
        assert_eq!(report.recovery().restarts, 1, "{}", exec.name());
        assert_eq!(report.total_feedback_dropped(), 0, "{}", exec.name());
    }
}

/// Satellite: a fail-fast panic is attributed once by the lifecycle's
/// guarded dispatch, and every executor surfaces the identical error text.
#[test]
fn failfast_panic_text_is_identical_across_executors() {
    let build = || {
        let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
        let select = Select::new("filter", schema(), TuplePredicate::always());
        let _ = builder
            .source(source(80, 8))
            .unwrap()
            .apply_as(Chaos::new(select, FaultSpec::Panic { at_tuple: 10, times: 1 }), schema())
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        builder.build().unwrap()
    };

    let texts: Vec<String> =
        EXECUTORS.iter().map(|exec| exec.run(build()).unwrap_err().to_string()).collect();
    assert_eq!(texts[0], texts[1], "sync and threaded must agree");
    assert_eq!(texts[0], texts[2], "sync and pooled must agree");
    assert!(
        texts[0].contains("chaos:filter") && texts[0].contains("operator panicked"),
        "the failure names the operator and the panic: {}",
        texts[0]
    );
}

/// Satellite: quarantine tombstones relay `ControlMessage::Shutdown`
/// upstream on the pooled executor with every queue full (one page deep) —
/// the blocked producer must process control before its credit gate, so the
/// run drains instead of deadlocking.
#[test]
fn pooled_shutdown_relay_with_full_queues_does_not_deadlock() {
    let builder =
        StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1).with_worker_pool(2);
    let select = Select::new("filter", schema(), TuplePredicate::always());
    let handle = builder
        .source(source(600, 8))
        .unwrap()
        .apply_as(Chaos::new(select, FaultSpec::Panic { at_tuple: 64, times: u32::MAX }), schema())
        .unwrap()
        .quarantine_on_failure()
        .sink_collect("sink")
        .unwrap();
    let report = PooledExecutor::run(builder.build().unwrap()).unwrap();
    let recovery = report.recovery();
    assert_eq!(recovery.quarantined.len(), 1);
    assert_eq!(recovery.quarantined[0].0, "chaos:filter");
    assert_eq!(report.total_feedback_dropped(), 0);
    // The tombstone flushed and end-of-stream'd the sink: everything the
    // operator pushed before the failure was delivered, nothing hangs.
    assert!(handle.lock().len() < 600, "the quarantined stream is cut short");
}

/// Under a [`PipelineManager`], a query that exhausts its restart budget is
/// quarantined — detached from the shared fan-out, reported in the summary —
/// while its siblings' digests stay byte-identical to solo runs.
#[test]
fn exhausted_restart_budget_quarantines_query_but_not_siblings() {
    let solo = {
        let builder = StreamBuilder::new();
        let handle = builder
            .source(source(200, 8))
            .unwrap()
            .select(
                "keep-evens",
                TuplePredicate::new("even", |t| t.int("key").map(|k| k % 2 == 0).unwrap_or(false)),
            )
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        SyncExecutor::run(builder.build().unwrap()).unwrap();
        let rows = digest(&handle.lock());
        rows
    };

    for kind in [ExecutorKind::Sync, ExecutorKind::Threaded, ExecutorKind::Pooled] {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(200, 8)).unwrap();

        let healthy = {
            let builder = StreamBuilder::new();
            let handle = builder
                .source(manager.source_ref("feed").unwrap())
                .unwrap()
                .select(
                    "keep-evens",
                    TuplePredicate::new("even", |t| {
                        t.int("key").map(|k| k % 2 == 0).unwrap_or(false)
                    }),
                )
                .unwrap()
                .sink_collect("sink")
                .unwrap();
            manager.register("healthy", builder.build().unwrap()).unwrap();
            handle
        };
        let doomed = {
            let builder = StreamBuilder::new();
            let select = Select::new("filter", schema(), TuplePredicate::always());
            let handle = builder
                .source(manager.source_ref("feed").unwrap())
                .unwrap()
                .apply_as(
                    Chaos::new(select, FaultSpec::Panic { at_tuple: 40, times: u32::MAX }),
                    schema(),
                )
                .unwrap()
                .with_recovery(restart(2))
                .quarantine_on_failure()
                .sink_collect("sink")
                .unwrap();
            manager.register("doomed", builder.build().unwrap()).unwrap();
            handle
        };

        let outcome = manager.run(kind).unwrap();
        assert_eq!(
            digest(&healthy.lock()),
            solo,
            "the sibling of a quarantined query must match its solo digest"
        );
        assert_eq!(outcome.summary.quarantined.len(), 1);
        assert_eq!(outcome.summary.quarantined[0].0, "doomed");
        assert!(
            outcome.summary.quarantined[0].1.contains("chaos:filter"),
            "the quarantine report names the failed operator: {}",
            outcome.summary.quarantined[0].1
        );
        // The doomed query got exactly what was pushed before its budget
        // ran out, then a clean end-of-stream.
        assert!(doomed.lock().len() < 200);
    }
}
