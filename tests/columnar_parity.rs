//! Parity: the columnar page kernels must be **semantically invisible**.  On
//! the traffic workload, a pipeline running the batch-level kernels
//! (`VecSource` batch guards plus the `on_page` overrides of `Select`,
//! `Project`, `Shuffle` and `WindowAggregate`) produces byte-identical sorted
//! sink digests to the same pipeline forced onto the per-tuple fallback path
//! — for arbitrary page capacities and guard patterns, on all three
//! executors, with `feedback_dropped == 0` throughout.
//!
//! The fallback pipeline is built from the *same* operators wrapped in
//! [`Costed::spinning`] with zero cost: `Costed` deliberately does not
//! override `on_page`, so every page is torn down into per-item
//! `on_tuple`/`on_punctuation` calls — the exact scalar path the kernels
//! claim to reproduce — and the source runs with `with_batch_guards(false)`.

use feedback_dsms::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

const PARTITIONS: usize = 4;

/// The executor dimension every parity case runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exec {
    Sync,
    Threaded,
    Pooled,
}

const EXECUTORS: [Exec; 3] = [Exec::Sync, Exec::Threaded, Exec::Pooled];

fn traffic_tuples() -> Vec<Tuple> {
    use feedback_dsms::workloads::{TrafficConfig, TrafficGenerator};
    let config =
        TrafficConfig { duration: StreamDuration::from_minutes(3), ..TrafficConfig::small() };
    TrafficGenerator::new(config).collect()
}

fn traffic_schema() -> SchemaRef {
    feedback_dsms::workloads::TrafficGenerator::schema()
}

/// Canonical digest of a sink's output: debug-rendered value rows, sorted and
/// joined — two plans are equivalent iff their digests are byte-identical.
fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// The guard under test: an *assumed* pattern over the `detector` attribute,
/// pre-installed on every guarded operator before execution so that batch
/// decisions are deterministic from the first tuple on both executors.
fn guard(schema: &SchemaRef, ge: bool, cut: i64) -> Pattern {
    let item = if ge { PatternItem::Ge(Value::Int(cut)) } else { PatternItem::Eq(Value::Int(cut)) };
    Pattern::for_attributes(schema.clone(), &[("detector", item)]).unwrap()
}

fn install(op: &mut dyn Operator, outputs: usize, pattern: &Pattern) {
    let mut ctx = OperatorContext::new();
    for output in 0..outputs {
        op.on_feedback(output, FeedbackPunctuation::assumed(pattern.clone(), "parity"), &mut ctx)
            .unwrap();
    }
}

fn make_select() -> Select {
    Select::new(
        "plausible",
        traffic_schema(),
        TuplePredicate::new("0 <= speed <= 120", |t| {
            t.float("speed").map(|s| (0.0..=120.0).contains(&s)).unwrap_or(false)
        }),
    )
}

fn make_project() -> Project {
    Project::new("narrow", traffic_schema(), &["timestamp", "detector", "speed"]).unwrap()
}

fn make_aggregate(name: String, schema: SchemaRef) -> WindowAggregate {
    WindowAggregate::new(
        name,
        schema,
        "timestamp",
        StreamDuration::from_minutes(1),
        &["detector"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate spec")
}

/// Builds and runs the full guarded pipeline
/// `source -> select -> project -> shuffle -> 4x aggregate -> merge -> sink`,
/// either on the columnar kernels (`columnar = true`) or forced onto the
/// per-tuple fallback, and returns the sorted sink digest plus the report.
fn run_pipeline(
    tuples: &[Tuple],
    page_capacity: usize,
    ge: bool,
    cut: i64,
    columnar: bool,
    exec: Exec,
) -> (String, ExecutionReport) {
    let input_guard = guard(&traffic_schema(), ge, cut);
    let narrow_schema = make_project().output_schema().clone();
    let narrow_guard = guard(&narrow_schema, ge, cut);

    let mut source = VecSource::new("source", tuples.to_vec())
        .with_punctuation("timestamp", StreamDuration::from_secs(60));
    install(&mut source, 1, &input_guard);
    let source = source.with_batch_guards(columnar);

    let mut select = make_select();
    install(&mut select, 1, &input_guard);
    let mut project = make_project();
    install(&mut project, 1, &narrow_guard);
    let mut shuffle =
        Shuffle::new("shuffle", narrow_schema.clone(), &["detector"], PARTITIONS).unwrap();
    // A shuffle guard only activates once every downstream partition asks for
    // it; install on all outputs so the guard is unanimous up front.
    install(&mut shuffle, PARTITIONS, &narrow_guard);

    let mut plan = QueryPlan::new().with_page_capacity(page_capacity).with_queue_capacity(8);
    let source = plan.add(source);
    let (select, project, shuffle) = if columnar {
        (plan.add(select), plan.add(project), plan.add(shuffle))
    } else {
        (
            plan.add(Costed::spinning(select, Duration::ZERO)),
            plan.add(Costed::spinning(project, Duration::ZERO)),
            plan.add(Costed::spinning(shuffle, Duration::ZERO)),
        )
    };
    let output_schema =
        make_aggregate("probe".into(), narrow_schema.clone()).output_schema().clone();
    let merge = plan.add(Merge::new("merge", output_schema, PARTITIONS));
    let (sink, results) = CollectSink::new("sink");
    let sink = plan.add(sink);

    plan.connect_simple(source, select).unwrap();
    plan.connect_simple(select, project).unwrap();
    plan.connect_simple(project, shuffle).unwrap();
    for partition in 0..PARTITIONS {
        let mut aggregate = make_aggregate(format!("AVG-{partition}"), narrow_schema.clone());
        // Aggregate feedback arrives over its *output* schema; the exploiter
        // translates the `detector` pattern into an input-side group guard.
        let output_guard = guard(aggregate.output_schema(), ge, cut);
        install(&mut aggregate, 1, &output_guard);
        let aggregate = if columnar {
            plan.add(aggregate)
        } else {
            plan.add(Costed::spinning(aggregate, Duration::ZERO))
        };
        plan.connect(shuffle, partition, aggregate, 0).unwrap();
        plan.connect(aggregate, 0, merge, partition).unwrap();
    }
    plan.connect_simple(merge, sink).unwrap();

    let report = match exec {
        Exec::Sync => SyncExecutor::run(plan).unwrap(),
        Exec::Threaded => ThreadedExecutor::run(plan).unwrap(),
        Exec::Pooled => PooledExecutor::run(plan).unwrap(),
    };
    let digest = digest(&results.lock());
    (digest, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary page capacities and assumed `detector` guards — equality
    /// and range patterns, including cuts that make whole batches conclusive
    /// and cuts that straddle batches — the columnar kernels and the
    /// per-tuple fallback produce byte-identical sorted sink digests on all
    /// three executors, and no feedback is dropped.
    #[test]
    fn columnar_kernels_match_per_tuple_fallback(
        page_capacity in 1usize..24,
        ge_bit in 0u8..2,
        cut in 0i64..40,
    ) {
        let ge = ge_bit == 1;
        let tuples = traffic_tuples();
        for exec in EXECUTORS {
            let (columnar, columnar_report) =
                run_pipeline(&tuples, page_capacity, ge, cut, true, exec);
            let (fallback, fallback_report) =
                run_pipeline(&tuples, page_capacity, ge, cut, false, exec);
            prop_assert_eq!(
                &columnar,
                &fallback,
                "exec={:?} page_capacity={} ge={} cut={}: digests must be byte-identical",
                exec,
                page_capacity,
                ge,
                cut
            );
            prop_assert_eq!(columnar_report.total_feedback_dropped(), 0);
            prop_assert_eq!(fallback_report.total_feedback_dropped(), 0);
        }
    }
}

/// The columnar run actually takes the batch path: with a never-matching
/// range guard every page is summary-conclusive (`PassAll`), and with a guard
/// covering every detector the source suppresses the whole stream wholesale.
#[test]
fn columnar_runs_decide_batches_from_summaries() {
    let tuples = traffic_tuples();

    let (passed, report) = run_pipeline(&tuples, 16, true, 1_000, true, Exec::Sync);
    let conclusive: u64 =
        report.metrics.iter().map(|m| m.feedback.batches_summary_conclusive).sum();
    assert!(!passed.is_empty(), "a never-matching guard must not suppress anything");
    assert!(conclusive > 0, "summary-conclusive batches must be counted");

    let (suppressed, report) = run_pipeline(&tuples, 16, true, 0, true, Exec::Sync);
    let conclusive: u64 =
        report.metrics.iter().map(|m| m.feedback.batches_summary_conclusive).sum();
    assert!(suppressed.is_empty(), "a guard covering every detector suppresses the stream");
    assert!(conclusive > 0, "wholesale suppression must be summary-conclusive");
    assert_eq!(report.total_feedback_dropped(), 0);
}
