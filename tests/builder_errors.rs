//! Builder error paths: the fluent API must reject bad compositions *at
//! composition time* with errors that name the offending operators — and the
//! same malformed topologies, built through the raw `QueryPlan` escape hatch,
//! must fail identically on both executors (which validate before running).

use feedback_dsms::prelude::*;

fn sensor_schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("segment", DataType::Int)])
}

fn volume_schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("volume", DataType::Float)])
}

fn readings(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                sensor_schema(),
                vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 4)],
            )
        })
        .collect()
}

/// Connecting a stream into an operator declared over a different schema is
/// rejected when the edge is drawn, naming both operators and both schemas.
#[test]
fn schema_mismatched_connect_fails_at_composition_time() {
    let builder = StreamBuilder::new();
    let err = builder
        .source(VecSource::new("sensors", readings(10)))
        .unwrap()
        .apply(Select::new("by-volume", volume_schema(), TuplePredicate::always()))
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "invalid plan: cannot connect `sensors` to input 0 of `by-volume`: schema mismatch — \
         `sensors` produces (ts: timestamp, segment: int) but `by-volume` expects \
         (ts: timestamp, volume: float)"
    );
}

/// A feedback subscription on a stream whose producer declares no feedback
/// port is rejected at composition time (previously this was a silent
/// run-time no-op: the punctuation arrived and was ignored).
#[test]
fn subscription_on_operator_without_feedback_port_fails_at_composition_time() {
    // QualityFilter::without_feedback() declares FeedbackRoles::NONE.
    let builder = StreamBuilder::new();
    let quality = QualityFilter::new(
        "quality",
        sensor_schema(),
        TuplePredicate::always(),
        std::time::Duration::ZERO,
    )
    .without_feedback();
    let err = builder
        .source(VecSource::new("sensors", readings(10)))
        .unwrap()
        .apply(quality)
        .unwrap()
        .with_feedback(FeedbackSpec::assumed(Pattern::all_wildcards(sensor_schema())))
        .unwrap_err()
        .to_string();
    assert_eq!(
        err,
        "invalid plan: feedback subscription on `quality` rejected: the operator declares no \
         feedback port (roles: none), so the feedback would be silently ignored at run time"
    );

    // An aggregate in F0 mode (FeedbackMode::Ignore) declares no port either.
    let builder = StreamBuilder::new();
    let aggregate = WindowAggregate::new(
        "AVG-F0",
        sensor_schema(),
        "ts",
        StreamDuration::from_secs(60),
        &["segment"],
        AggregateFunction::Count,
    )
    .unwrap()
    .with_feedback_mode(feedback_dsms::operators::aggregate::FeedbackMode::Ignore);
    let averaged =
        builder.source(VecSource::new("sensors", readings(10))).unwrap().apply(aggregate).unwrap();
    let err = averaged
        .with_feedback(FeedbackSpec::assumed(Pattern::all_wildcards(sensor_schema())))
        .unwrap_err()
        .to_string();
    // Rejected for the schema first or the roles first — either way it must
    // name the operator; pin down the roles case with a matching pattern.
    assert!(err.contains("`AVG-F0`"), "{err}");
}

/// The full roles error for the F0 aggregate, with a correctly-schemed
/// pattern, is the no-feedback-port rejection.
#[test]
fn f0_aggregate_rejects_subscription_with_roles_error() {
    let builder = StreamBuilder::new();
    let aggregate = WindowAggregate::new(
        "AVG-F0",
        sensor_schema(),
        "ts",
        StreamDuration::from_secs(60),
        &["segment"],
        AggregateFunction::Count,
    )
    .unwrap()
    .with_feedback_mode(feedback_dsms::operators::aggregate::FeedbackMode::Ignore);
    let averaged =
        builder.source(VecSource::new("sensors", readings(10))).unwrap().apply(aggregate).unwrap();
    let pattern = Pattern::all_wildcards(averaged.schema().clone());
    let err = averaged.with_feedback(FeedbackSpec::assumed(pattern)).unwrap_err().to_string();
    assert_eq!(
        err,
        "invalid plan: feedback subscription on `AVG-F0` rejected: the operator declares no \
         feedback port (roles: none), so the feedback would be silently ignored at run time"
    );
}

/// The exact error a dangling hash partition produces — at `build()` time
/// through the builder, and identically from both executors when the same
/// topology is wired through the raw `QueryPlan` escape hatch.
const DANGLING_PARTITION_ERROR: &str =
    "invalid plan: `router-shuffle` routes its input across 3 output partitions but only 2 are \
     connected — every partition must be wired to a replica, or tuples hashed to the dangling \
     ports would be lost";

#[test]
fn dangling_partition_output_fails_at_build_time() {
    let builder = StreamBuilder::new();
    let shuffle = Shuffle::new("router-shuffle", sensor_schema(), &["segment"], 3).unwrap();
    let mut partitions = builder
        .source(VecSource::new("sensors", readings(30)))
        .unwrap()
        .apply_multi(shuffle)
        .unwrap()
        .into_iter();
    // Wire only two of the three partitions; drop the third stream.
    partitions.next().unwrap().sink_collect("sink-0").unwrap();
    partitions.next().unwrap().sink_collect("sink-1").unwrap();
    drop(partitions);
    let err = builder.build().unwrap_err().to_string();
    assert_eq!(err, DANGLING_PARTITION_ERROR);
}

#[test]
fn dangling_partition_output_fails_identically_on_both_executors() {
    let build_raw = || -> QueryPlan {
        let mut plan = QueryPlan::new();
        let source = plan.add(VecSource::new("sensors", readings(30)));
        let shuffle =
            plan.add(Shuffle::new("router-shuffle", sensor_schema(), &["segment"], 3).unwrap());
        let (sink0, _) = CollectSink::new("sink-0");
        let (sink1, _) = CollectSink::new("sink-1");
        let sink0 = plan.add(sink0);
        let sink1 = plan.add(sink1);
        plan.connect_simple(source, shuffle).unwrap();
        plan.connect(shuffle, 0, sink0, 0).unwrap();
        plan.connect(shuffle, 1, sink1, 0).unwrap();
        // Partition 2 dangles.
        plan
    };
    let sync_err = SyncExecutor::run(build_raw()).unwrap_err().to_string();
    let threaded_err = ThreadedExecutor::run(build_raw()).unwrap_err().to_string();
    assert_eq!(sync_err, DANGLING_PARTITION_ERROR);
    assert_eq!(threaded_err, DANGLING_PARTITION_ERROR);
}

/// Sources must declare (or be given) their schema, and non-source operators
/// cannot start a stream.
#[test]
fn source_arity_and_schema_requirements() {
    let builder = StreamBuilder::new();
    let err = builder
        .source(Select::new("not-a-source", sensor_schema(), TuplePredicate::always()))
        .unwrap_err()
        .to_string();
    assert_eq!(err, "invalid plan: `not-a-source` cannot be a source: it declares 1 input(s)");

    // An empty VecSource cannot infer its schema from its tuples…
    let err = builder.source(VecSource::new("empty", Vec::new())).unwrap_err().to_string();
    assert_eq!(
        err,
        "invalid plan: source `empty` does not declare its output schema; use source_as(op, \
         schema) to state it explicitly"
    );
    // …but source_as states it.
    let stream = builder.source_as(VecSource::new("empty", Vec::new()), sensor_schema()).unwrap();
    assert_eq!(stream.schema(), &sensor_schema());
    drop(stream);
}
