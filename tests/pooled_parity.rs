//! Scheduler stress: the work-stealing [`PooledExecutor`] must be
//! **semantically invisible** relative to the deterministic [`SyncExecutor`]
//! even under maximal back-pressure.
//!
//! Every case here runs with `queue_capacity = 1` — each connection admits a
//! single page in flight, so producers lose credit constantly, tasks bounce
//! between ready and blocked, and any lost-wakeup or credit-accounting bug in
//! the scheduler deadlocks or drops data.  The partitioned plan is checked on
//! pools of 1 worker (pure cooperative multiplexing), 2 workers (stealing
//! across queues), and `available_parallelism` workers, with both midstream
//! (tuple-count-triggered) and at-flush feedback in flight:
//!
//! * sink digests are byte-identical to the sync run (sorted canonical form);
//! * `feedback_dropped == 0` everywhere;
//! * the at-flush feedback still reaches the live source (delivered during
//!   the drain phase, before control channels close);
//! * the scheduler summary is present and consistent (`workers` echoes the
//!   requested pool).

use feedback_dsms::prelude::*;

fn schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
}

fn tuples(n: i64, keys: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                schema(),
                vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % keys)],
            )
        })
        .collect()
}

/// Canonical digest of a sink's output: debug-rendered value rows, sorted and
/// joined — two runs are equivalent iff their digests are byte-identical.
fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// A never-matching pattern so feedback flows through the whole control path
/// without perturbing the data digest.  Distinct `salt`s keep the two
/// subscriptions from lattice-merging into one message along the way.
fn never_matching(salt: i64) -> Pattern {
    Pattern::for_attributes(schema(), &[("key", PatternItem::Ge(Value::Int(i64::MAX / 2 + salt)))])
        .unwrap()
}

/// source → shuffle → N replicas → merge → sink at `queue_capacity = 1`, with
/// a midstream subscription (fires after 64 tuples) and an at-flush
/// subscription riding on the sink's input.  Returns the report and the sink
/// digest.
fn run_stressed(plan_workers: Option<usize>, partitions: usize) -> (ExecutionReport, String) {
    let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
    let builder = match plan_workers {
        Some(w) => builder.with_worker_pool(w),
        None => builder,
    };
    let shuffle = Shuffle::new("shuffle", schema(), &["key"], partitions).unwrap();
    let merge = Merge::new("merge", schema(), partitions);
    let results = builder
        .source(VecSource::new("source", tuples(600, partitions as i64 * 8)))
        .unwrap()
        .partitioned_stage(shuffle, merge, |i| {
            Select::new(format!("replica-{i}"), schema(), TuplePredicate::always())
        })
        .unwrap()
        .with_feedback(FeedbackSpec::assumed(never_matching(0)).after_tuples(64))
        .unwrap()
        .with_feedback(FeedbackSpec::assumed(never_matching(1)).at_flush())
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let plan = builder.build().unwrap();
    let report = if plan_workers.is_some() {
        PooledExecutor::run(plan).unwrap()
    } else {
        SyncExecutor::run(plan).unwrap()
    };
    let collected = results.lock().clone();
    (report, digest(&collected))
}

#[test]
fn pooled_matches_sync_under_maximal_backpressure() {
    let (sync_report, expected) = run_stressed(None, 4);
    assert!(!expected.is_empty());
    assert_eq!(sync_report.total_feedback_dropped(), 0);
    assert!(sync_report.scheduler.is_none(), "sync runs carry no scheduler summary");
    // Both subscriptions reached the source through the full control path.
    assert!(sync_report.operator("source").unwrap().feedback_in >= 2);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for workers in [1, 2, cores] {
        let (report, got) = run_stressed(Some(workers), 4);
        assert_eq!(
            got, expected,
            "workers={workers}: pooled digest must be byte-identical to sync"
        );
        assert_eq!(report.total_feedback_dropped(), 0, "workers={workers}");
        let summary = report.scheduler.expect("pooled runs report a scheduler summary");
        assert_eq!(summary.workers, workers);
        // The at-flush feedback is born during the sink's flush, after the
        // source has gone quiescent — it must still arrive via the drain
        // phase while the control channels are open.
        assert!(
            report.operator("source").unwrap().feedback_in >= 2,
            "workers={workers}: midstream and at-flush feedback must both reach the source"
        );
    }
}

/// Pinning every operator onto one worker of a two-worker pool exercises the
/// stealing path: the idle worker must pull queued tasks over, and the run
/// must stay digest-identical.
#[test]
fn pinned_plans_steal_and_stay_correct() {
    let (_, expected) = run_stressed(None, 2);

    let builder =
        StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1).with_worker_pool(2);
    let shuffle = Shuffle::new("shuffle", schema(), &["key"], 2).unwrap();
    let merge = Merge::new("merge", schema(), 2);
    let results = builder
        .source(VecSource::new("source", tuples(600, 16)))
        .unwrap()
        .pin_to_worker(0)
        .partitioned_stage(shuffle, merge, |i| {
            Select::new(format!("replica-{i}"), schema(), TuplePredicate::always())
        })
        .unwrap()
        .pin_to_worker(0)
        .with_feedback(FeedbackSpec::assumed(never_matching(0)).after_tuples(64))
        .unwrap()
        .with_feedback(FeedbackSpec::assumed(never_matching(1)).at_flush())
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let report = PooledExecutor::run(builder.build().unwrap()).unwrap();
    assert_eq!(digest(&results.lock()), expected);
    assert_eq!(report.total_feedback_dropped(), 0);
    assert_eq!(report.scheduler.unwrap().workers, 2);
}
