//! Cross-crate integration tests: whole query plans executed on both
//! executors, exercising the feedback loop end to end.

use feedback_dsms::prelude::*;
use std::time::Duration;

fn sensor_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn readings(n: i64, segments: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                sensor_schema(),
                vec![
                    Value::Timestamp(Timestamp::from_secs(i)),
                    Value::Int(i % segments),
                    Value::Float(20.0 + (i % 50) as f64),
                ],
            )
        })
        .collect()
}

/// source -> select -> aggregate -> sink, no feedback: both executors produce
/// the same aggregate results.
#[test]
fn executors_agree_on_windowed_aggregation() {
    let run = |threaded: bool| -> Vec<Tuple> {
        let builder = StreamBuilder::new().with_page_capacity(8);
        let results = builder
            .source(
                VecSource::new("sensors", readings(600, 3))
                    .with_punctuation("timestamp", StreamDuration::from_secs(60)),
            )
            .unwrap()
            .select(
                "moving",
                TuplePredicate::new("speed > 0", |t| t.float("speed").unwrap_or(0.0) > 0.0),
            )
            .unwrap()
            .window_avg("AVG", "timestamp", StreamDuration::from_secs(60), &["segment"], "speed")
            .unwrap()
            .sink_collect("out")
            .unwrap();
        let plan = builder.build().unwrap();
        let report = if threaded {
            ThreadedExecutor::run(plan).unwrap()
        } else {
            SyncExecutor::run(plan).unwrap()
        };
        assert!(report.operator("AVG").unwrap().tuples_in > 0);
        let mut out = results.lock().clone();
        out.sort_by(|a, b| a.values().cmp(b.values()));
        out
    };
    let sync_results = run(false);
    let threaded_results = run(true);
    assert_eq!(sync_results.len(), 30, "10 windows × 3 segments");
    assert_eq!(sync_results, threaded_results);
}

/// The full feedback loop: a sink assumes a segment away; the aggregate purges
/// and guards it, relays the feedback to the select, which relays it to the
/// source.  The segment disappears from the results and from upstream work.
#[test]
fn assumed_feedback_propagates_from_sink_to_source() {
    let builder = StreamBuilder::new().with_page_capacity(8);
    let averaged = builder
        .source(
            VecSource::new("sensors", readings(3_000, 3))
                .with_punctuation("timestamp", StreamDuration::from_secs(60))
                .with_batch_size(16),
        )
        .unwrap()
        .select(
            "moving",
            TuplePredicate::new("speed > 0", |t| t.float("speed").unwrap_or(0.0) > 0.0),
        )
        .unwrap()
        .window_avg("AVG", "timestamp", StreamDuration::from_secs(60), &["segment"], "speed")
        .unwrap();

    // After 5 results, the display stops caring about segment 1 — a contract
    // declared at composition time.
    let ignore_segment_1 = FeedbackSpec::assumed(
        Pattern::for_attributes(
            averaged.schema().clone(),
            &[("segment", PatternItem::Eq(Value::Int(1)))],
        )
        .unwrap(),
    )
    .after_tuples(5);
    let results = averaged.with_feedback(ignore_segment_1).unwrap().sink_timed("display").unwrap();

    let report = SyncExecutor::run(builder.build().unwrap()).unwrap();

    // Feedback travelled the whole chain.
    assert_eq!(report.operator("display").unwrap().feedback_out, 1);
    assert_eq!(report.operator("AVG").unwrap().feedback_in, 1);
    assert!(report.operator("AVG").unwrap().feedback_out >= 1, "AVG relays to SELECT");
    assert_eq!(report.operator("moving").unwrap().feedback_in, 1);
    assert!(report.operator("moving").unwrap().feedback_out >= 1, "SELECT relays to the source");
    assert_eq!(report.operator("sensors").unwrap().feedback_in, 1);

    // Results for segment 1 stop appearing after the feedback fired.
    let results = results.lock();
    let segment1_after_feedback =
        results.iter().skip(6).filter(|r| r.tuple.int("segment").unwrap() == 1).count();
    assert_eq!(segment1_after_feedback, 0);
    // Other segments keep flowing.
    assert!(results.iter().filter(|r| r.tuple.int("segment").unwrap() == 0).count() > 5);
    // Upstream suppression did real work: the source dropped segment-1 readings.
    assert!(report.operator("sensors").unwrap().feedback.tuples_suppressed > 0);
}

/// Correct exploitation end to end (Definition 1): with feedback, the result
/// is a subset of the no-feedback result, and only described tuples are
/// missing.
#[test]
fn feedback_exploitation_satisfies_definition_1() {
    let run = |with_feedback: bool| -> Vec<Tuple> {
        let builder = StreamBuilder::new();
        let counted = builder
            .source(
                VecSource::new("sensors", readings(1_200, 4))
                    .with_punctuation("timestamp", StreamDuration::from_secs(60)),
            )
            .unwrap()
            .aggregate(
                "COUNT",
                "timestamp",
                StreamDuration::from_secs(60),
                &["segment"],
                AggregateFunction::Count,
            )
            .unwrap();
        let counted = if with_feedback {
            let fb = FeedbackSpec::assumed(
                Pattern::for_attributes(
                    counted.schema().clone(),
                    &[("segment", PatternItem::Eq(Value::Int(2)))],
                )
                .unwrap(),
            )
            .after_tuples(1)
            .from_issuer("display");
            counted.with_feedback(fb).unwrap()
        } else {
            counted
        };
        let results = counted.sink_timed("display").unwrap();
        SyncExecutor::run(builder.build().unwrap()).unwrap();
        let collected: Vec<Tuple> = results.lock().iter().map(|r| r.tuple.clone()).collect();
        collected
    };

    let reference = run(false);
    let exploited = run(true);
    let feedback = FeedbackPunctuation::assumed(
        Pattern::for_attributes(
            reference[0].schema().clone(),
            &[("segment", PatternItem::Eq(Value::Int(2)))],
        )
        .unwrap(),
        "display",
    );
    let report =
        feedback_dsms::feedback::check_correct_exploitation(&reference, &exploited, &feedback);
    assert!(
        report.is_correct(),
        "invented: {:?}, wrongly dropped: {:?}",
        report.invented,
        report.wrongly_dropped
    );
    assert!(exploited.len() < reference.len(), "exploitation actually removed something");
}

/// PACE + IMPUTE end to end on the threaded executor: feedback reduces wasted
/// archival lookups compared to the same plan without feedback.
#[test]
fn pace_feedback_reduces_wasted_imputation_work() {
    use feedback_dsms::workloads::{ImputationConfig, ImputationGenerator};

    let run = |with_feedback: bool| -> (u64, u64) {
        let schema = ImputationGenerator::schema();
        let config = ImputationConfig { tuples: 400, ..ImputationConfig::experiment1() };
        let builder = StreamBuilder::new().with_page_capacity(4);
        let (dirty, clean) = builder
            .source_as(
                GeneratorSource::new("sensors", ImputationGenerator::new(config))
                    .with_punctuation("timestamp", StreamDuration::from_secs(1))
                    .with_batch_size(8)
                    .with_pacing(40.0),
                schema.clone(),
            )
            .unwrap()
            .split("split", TuplePredicate::new("dirty", |t| t.has_null()))
            .unwrap();
        let imputed = dirty
            .apply_as(
                Impute::new(
                    "IMPUTE",
                    "speed",
                    "detector",
                    ArchivalStore::synthetic(Duration::from_millis(3), 45.0),
                ),
                schema.clone(),
            )
            .unwrap();
        let merged = if with_feedback {
            imputed
                .combine(
                    clean,
                    Pace::new("PACE", schema, 2, "timestamp", StreamDuration::from_secs(2)),
                )
                .unwrap()
        } else {
            imputed.union(clean, "UNION").unwrap()
        };
        let _out = merged.sink_timed("out").unwrap();
        let report = ThreadedExecutor::run(builder.build().unwrap()).unwrap();
        let impute_metrics = report.operator("IMPUTE").unwrap();
        (impute_metrics.tuples_out, impute_metrics.feedback.tuples_suppressed)
    };

    let (baseline_imputed, baseline_suppressed) = run(false);
    let (feedback_imputed, feedback_suppressed) = run(true);
    assert_eq!(baseline_suppressed, 0);
    assert_eq!(baseline_imputed, 200, "without feedback every dirty tuple is imputed");
    assert!(feedback_suppressed > 0, "feedback must suppress some lookups");
    assert!(feedback_imputed < baseline_imputed);
}
