//! Property-based integration tests over the feedback framework: Definition 1
//! and Definition 2 hold for the feedback-aware operators under randomly
//! generated streams and feedback patterns.

use feedback_dsms::feedback::{check_correct_exploitation, FeedbackPunctuation};
use feedback_dsms::operators::aggregate::FeedbackMode;
use feedback_dsms::prelude::*;
use proptest::prelude::*;

fn schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn tuple(ts: i64, seg: i64, speed: f64) -> Tuple {
    Tuple::new(
        schema(),
        vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
    )
}

/// Drains an operator over a stream of tuples followed by a flush, returning
/// the emitted tuples.
fn drive(op: &mut dyn Operator, stream: &[Tuple]) -> Vec<Tuple> {
    let mut ctx = OperatorContext::new();
    let mut out = Vec::new();
    for t in stream {
        op.on_tuple(0, t.clone(), &mut ctx).unwrap();
        for (_, item) in ctx.take_emitted() {
            if let StreamItem::Tuple(t) = item {
                out.push(t);
            }
        }
    }
    op.on_flush(&mut ctx).unwrap();
    for (_, item) in ctx.take_emitted() {
        if let StreamItem::Tuple(t) = item {
            out.push(t);
        }
    }
    out
}

fn stream_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..600, 0i64..5, 0i64..80), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SELECT: adding assumed feedback to its condition is a correct
    /// exploitation for any stream and any segment-feedback.
    #[test]
    fn select_exploitation_is_correct(raw in stream_strategy(), fb_segment in 0i64..5) {
        let stream: Vec<Tuple> = raw.iter().map(|(t, s, v)| tuple(*t, *s, *v as f64)).collect();
        let predicate = || TuplePredicate::new("speed >= 20", |t| t.float("speed").unwrap_or(0.0) >= 20.0);
        let feedback = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(fb_segment)))]).unwrap(),
            "test",
        );

        let mut reference_op = Select::new("select", schema(), predicate());
        let reference = drive(&mut reference_op, &stream);

        let mut exploited_op = Select::new("select", schema(), predicate());
        let mut ctx = OperatorContext::new();
        exploited_op.on_feedback(0, feedback.clone(), &mut ctx).unwrap();
        let exploited = drive(&mut exploited_op, &stream);

        let report = check_correct_exploitation(&reference, &exploited, &feedback);
        prop_assert!(report.is_correct(), "invented {:?} dropped {:?}", report.invented, report.wrongly_dropped);
    }

    /// Windowed COUNT: the Table-1 response to group feedback is a correct
    /// exploitation, for every feedback mode.
    #[test]
    fn count_group_feedback_is_correct(raw in stream_strategy(), fb_segment in 0i64..5) {
        let stream: Vec<Tuple> = raw.iter().map(|(t, s, v)| tuple(*t, *s, *v as f64)).collect();
        let make = |mode: FeedbackMode| {
            WindowAggregate::new(
                "COUNT",
                schema(),
                "timestamp",
                StreamDuration::from_secs(60),
                &["segment"],
                AggregateFunction::Count,
            )
            .unwrap()
            .with_feedback_mode(mode)
        };
        let mut reference_op = make(FeedbackMode::Ignore);
        let reference = drive(&mut reference_op, &stream);

        for mode in [FeedbackMode::GuardOutput, FeedbackMode::Exploit, FeedbackMode::ExploitAndPropagate] {
            let mut exploited_op = make(mode);
            let feedback = FeedbackPunctuation::assumed(
                Pattern::for_attributes(
                    exploited_op.output_schema().clone(),
                    &[("segment", PatternItem::Eq(Value::Int(fb_segment)))],
                )
                .unwrap(),
                "test",
            );
            let mut ctx = OperatorContext::new();
            exploited_op.on_feedback(0, feedback.clone(), &mut ctx).unwrap();
            let exploited = drive(&mut exploited_op, &stream);
            let report = check_correct_exploitation(&reference, &exploited, &feedback);
            prop_assert!(
                report.is_correct(),
                "{mode:?}: invented {:?} dropped {:?}",
                report.invented,
                report.wrongly_dropped
            );
        }
    }

    /// Windowed MAX with an upward-closed value feedback (¬[*, ≥k]) enacts the
    /// aggressive Section-3.5 response and stays correct.
    #[test]
    fn max_value_feedback_is_correct(raw in stream_strategy(), threshold in 10i64..70) {
        let stream: Vec<Tuple> = raw.iter().map(|(t, s, v)| tuple(*t, *s, *v as f64)).collect();
        let make = || {
            WindowAggregate::new(
                "MAX",
                schema(),
                "timestamp",
                StreamDuration::from_secs(60),
                &["segment"],
                AggregateFunction::Max("speed".into()),
            )
            .unwrap()
        };
        let mut reference_op = make();
        let reference = drive(&mut reference_op, &stream);

        let mut exploited_op = make();
        let feedback = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                exploited_op.output_schema().clone(),
                &[("max", PatternItem::Ge(Value::Float(threshold as f64)))],
            )
            .unwrap(),
            "test",
        );
        let mut ctx = OperatorContext::new();
        exploited_op.on_feedback(0, feedback.clone(), &mut ctx).unwrap();
        let exploited = drive(&mut exploited_op, &stream);
        let report = check_correct_exploitation(&reference, &exploited, &feedback);
        prop_assert!(report.is_correct(), "invented {:?} dropped {:?}", report.invented, report.wrongly_dropped);
    }

    /// Desired punctuation never changes the result set of a prioritizer, only
    /// its order.
    #[test]
    fn prioritizer_preserves_the_multiset(raw in stream_strategy(), fb_segment in 0i64..5) {
        let stream: Vec<Tuple> = raw.iter().map(|(t, s, v)| tuple(*t, *s, *v as f64)).collect();
        let mut reference_op = Prioritizer::new("prio", schema(), 8);
        let reference = drive(&mut reference_op, &stream);

        let mut exploited_op = Prioritizer::new("prio", schema(), 8);
        let mut ctx = OperatorContext::new();
        exploited_op
            .on_feedback(
                0,
                FeedbackPunctuation::desired(
                    Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(fb_segment)))])
                        .unwrap(),
                    "test",
                ),
                &mut ctx,
            )
            .unwrap();
        let exploited = drive(&mut exploited_op, &stream);

        let sort = |mut v: Vec<Tuple>| {
            v.sort_by(|a, b| a.values().cmp(b.values()));
            v
        };
        prop_assert_eq!(sort(reference), sort(exploited));
    }
}
