//! Zero-copy regression tests for the tuple hot path.
//!
//! The engine's fan-out operators clone tuples on every emission; since the
//! `Arc<[Value]>`/`Arc<str>` representation change those clones must be
//! reference-count bumps, never value deep-copies.  `Arc::strong_count` on a
//! text payload threaded through a plan is the probe: a deep copy anywhere
//! would materialise a second `str` allocation and the count would *not*
//! account for every live tuple copy.

use feedback_dsms::prelude::*;
use std::sync::Arc;

fn schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("freeway", DataType::Text),
    ])
}

fn text_tuple(text: &Arc<str>, seg: i64) -> Tuple {
    Tuple::new(
        schema(),
        vec![
            Value::Timestamp(Timestamp::from_secs(seg)),
            Value::Int(seg),
            Value::Text(text.clone()),
        ],
    )
}

/// A 4-way DUPLICATE of a text-bearing tuple performs zero value deep-copies:
/// all four emitted tuples share the input's value buffer, and the text
/// `Arc` gains no owners (the buffer holds the only tuple-side reference).
#[test]
fn four_way_duplicate_deep_copies_nothing() {
    let text: Arc<str> = Arc::from("Interstate-05 northbound near milepost 042");
    let tuple = text_tuple(&text, 3);
    assert_eq!(Arc::strong_count(&text), 2, "our handle + the tuple's buffer");

    let mut op = Duplicate::new("dup", schema(), 4);
    let mut ctx = OperatorContext::new();
    op.on_tuple(0, tuple, &mut ctx).unwrap();
    let emitted = ctx.take_emitted();
    assert_eq!(emitted.len(), 4, "one copy per output");

    // Zero deep copies: four live tuples, still exactly one value buffer and
    // one str allocation.
    assert_eq!(
        Arc::strong_count(&text),
        2,
        "a deep copy would have added owners or new allocations"
    );
    let tuples: Vec<&Tuple> = emitted.iter().filter_map(|(_, item)| item.as_tuple()).collect();
    for pair in tuples.windows(2) {
        assert!(pair[0].shares_values_with(pair[1]), "all fan-out copies share one buffer");
    }

    // Dropping the copies releases nothing but refcounts; the probe handle
    // becomes the sole owner.
    drop(emitted);
    assert_eq!(Arc::strong_count(&text), 1);
}

/// `Tuple::clone` is O(1) sharing; `with_value` is copy-on-write — it
/// rebuilds the buffer for the new tuple and leaves every existing clone on
/// the original.
#[test]
fn clone_shares_and_with_value_rebuilds() {
    let text: Arc<str> = Arc::from("OR-217 southbound");
    let original = text_tuple(&text, 7);
    let shared = original.clone();
    assert!(original.shares_values_with(&shared));
    assert_eq!(Arc::strong_count(&text), 2, "clone bumped no inner value counts");

    let rewritten = shared.with_value(1, Value::Int(8)).unwrap();
    assert!(!rewritten.shares_values_with(&original), "copy-on-write made a fresh buffer");
    assert_eq!(original.int("segment").unwrap(), 7, "existing clones are untouched");
    assert_eq!(rewritten.int("segment").unwrap(), 8);
    // The untouched text value is still shared, not re-allocated: probe +
    // original buffer + rewritten buffer.
    assert_eq!(Arc::strong_count(&text), 3);
}

/// End-to-end: a full run through DUPLICATE into two sinks leaves the text
/// allocation count at exactly (probe + dataset + per-sink copies) — i.e.
/// the executors' routing, paging, and sink collection never deep-copy
/// tuple values either.
#[test]
fn executors_never_deep_copy_text_values() {
    for threaded in [false, true] {
        let text: Arc<str> = Arc::from("US-26 westbound near the zoo");
        let tuples: Vec<Tuple> = (0..100).map(|seg| text_tuple(&text, seg)).collect();
        assert_eq!(Arc::strong_count(&text), 101, "probe + one buffer per tuple");

        let builder = StreamBuilder::new().with_page_capacity(16).with_queue_capacity(4);
        let stream = builder
            .source_as(
                VecSource::new("source", tuples)
                    .with_punctuation("timestamp", StreamDuration::from_secs(10)),
                schema(),
            )
            .unwrap();
        let branches = stream.apply_multi(Duplicate::new("dup", schema(), 2)).unwrap();
        let mut handles = Vec::new();
        for (i, branch) in branches.into_iter().enumerate() {
            handles.push(branch.sink_collect(format!("sink-{i}")).unwrap());
        }
        let report = if threaded {
            ThreadedExecutor::run(builder.build().unwrap()).unwrap()
        } else {
            SyncExecutor::run(builder.build().unwrap()).unwrap()
        };
        assert_eq!(report.total_feedback_dropped(), 0);

        let collected: usize = handles.iter().map(|h| h.lock().len()).sum();
        assert_eq!(collected, 200, "threaded={threaded}: both sinks got every tuple");
        // The two sink copies of each input tuple share one value buffer, and
        // each buffer holds the single tuple-side text reference: probe + 100
        // buffers.  Anything above that means a hop deep-copied; 200 would be
        // a copy per fan-out branch, 300+ a copy per page or sink push.
        assert_eq!(
            Arc::strong_count(&text),
            101,
            "threaded={threaded}: a deep copy happened somewhere on the hot path"
        );
        drop(handles);
        assert_eq!(Arc::strong_count(&text), 1, "threaded={threaded}");
    }
}
