//! NEXMark-style integration smoke: the bid/auction workload generator
//! (paper Section 4.4) drives an *adaptive* elastic stage end to end.
//!
//! A [`GeneratorSource`] streams `(timestamp, auction, bidder, amount)` bids
//! in timestamp order with periodic progress punctuation; the stage computes
//! the per-auction windowed MAX bid behind a shuffle keyed on `auction`.  The
//! elastic policy here is [`ElasticPolicy::Adaptive`] — scale decisions come
//! from the live queue-depth signal the shuffle reports, not a script — so
//! this exercises the metrics → decision → feedback-directive → migration
//! loop the scripted parity suite bypasses.  The digest must still be
//! byte-identical to a fixed-width run, with no feedback dropped.

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{AuctionConfig, AuctionGenerator};

const MAX_WIDTH: usize = 4;

fn bids() -> GeneratorSource {
    GeneratorSource::new("bids", AuctionGenerator::new(AuctionConfig::default()))
        .with_punctuation("timestamp", StreamDuration::from_secs(30))
}

fn replica(i: usize) -> WindowAggregate {
    WindowAggregate::new(
        format!("max-bid-{i}"),
        AuctionGenerator::schema(),
        "timestamp",
        StreamDuration::from_secs(120),
        &["auction"],
        AggregateFunction::Max("amount".into()),
    )
    .unwrap()
}

fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

fn run_stage(adaptive: bool, threaded: bool) -> (ExecutionReport, String) {
    let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
    let out_schema = replica(0).output_schema().clone();
    let shuffle =
        Shuffle::new("shuffle", AuctionGenerator::schema(), &["auction"], MAX_WIDTH).unwrap();
    let merge = Merge::new("merge", out_schema, MAX_WIDTH);
    let source = builder.source_as(bids(), AuctionGenerator::schema()).unwrap();
    let staged = if adaptive {
        // Any backlog at a punctuation boundary spreads the stage to full
        // width; an idle boundary folds it back to one replica.
        let policy =
            ElasticPolicy::Adaptive { high: 1, low: 0, spike_width: MAX_WIDTH, idle_width: 1 };
        source.elastic_stage(shuffle, merge, 1, policy, replica).unwrap()
    } else {
        source.partitioned_stage(shuffle, merge, replica).unwrap()
    };
    let results = staged.sink_collect("sink").unwrap();
    let plan = builder.build().unwrap();
    let report = if threaded {
        ThreadedExecutor::run(plan).unwrap()
    } else {
        SyncExecutor::run(plan).unwrap()
    };
    let collected = results.lock().clone();
    (report, digest(&collected))
}

#[test]
fn adaptive_elastic_stage_runs_the_auction_workload_unchanged() {
    let (fixed_report, expected) = run_stage(false, false);
    assert!(!expected.is_empty());
    assert_eq!(fixed_report.operator("shuffle").unwrap().tuples_in, 600, "20 auctions × 30 bids");

    for threaded in [false, true] {
        let (report, got) = run_stage(true, threaded);
        assert_eq!(got, expected, "threaded={threaded}: adaptive resizing must be invisible");
        assert_eq!(report.total_feedback_dropped(), 0, "threaded={threaded}");
        let stats = report.operator("shuffle").unwrap().elastic.clone().unwrap();
        assert_eq!(stats.cancelled + stats.resizes, stats.epochs.len() as u64 + stats.cancelled);
        if !threaded {
            // Under queue_capacity = 1 the deterministic sync schedule always
            // finds backlog at some boundary: the stage must actually move.
            assert!(stats.resizes >= 1, "adaptive policy never fired: {stats:?}");
        }
    }
}
