//! Resize-parity property suite: elastic repartitioning must be
//! **semantically invisible**.
//!
//! Each case runs the same keyed, stateful stage — shuffle → `WindowAggregate`
//! replicas → merge — twice: once at a fixed width of 4 and once elastically,
//! driven by a *random* resize schedule (a `ElasticPolicy::Scripted` list of
//! `(punctuation boundary, target width)` moves).  Every schedule contains at
//! least one scale-out and one scale-in, and every elastic run must produce a
//! sink digest byte-identical to the fixed run on all three executors, with
//! `feedback_dropped == 0`.
//!
//! The stage runs under maximal back-pressure (`queue_capacity = 1`,
//! `page_capacity = 2`) so migration buffering, routing-epoch switches and the
//! Migrate/Ack/Commit handshake interleave with credit exhaustion — timing
//! bugs become digest mismatches or deadlocks.  Two never-matching feedback
//! subscriptions (one midstream, one at flush) ride along so the
//! membership-aware lattice merge in the shuffle is exercised while replicas
//! come and go.

use feedback_dsms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_WIDTH: usize = 4;

fn schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int), ("v", DataType::Float)])
}

fn tuples() -> Vec<Tuple> {
    (0..600)
        .map(|i| {
            Tuple::new(
                schema(),
                vec![
                    Value::Timestamp(Timestamp::from_secs(i)),
                    Value::Int(i % 32),
                    Value::Float((i % 17) as f64),
                ],
            )
        })
        .collect()
}

fn replica(i: usize) -> WindowAggregate {
    WindowAggregate::new(
        format!("replica-{i}"),
        schema(),
        "ts",
        StreamDuration::from_secs(60),
        &["key"],
        AggregateFunction::Sum("v".into()),
    )
    .unwrap()
}

/// Canonical digest: debug-rendered value rows, sorted and joined — two runs
/// are equivalent iff their digests are byte-identical.
fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// A never-matching pattern over the stage's *output* schema so feedback
/// flows through the whole control path (merge broadcast → replica relays →
/// shuffle lattice → source) without perturbing the data digest.
fn never_matching(salt: i64) -> Pattern {
    Pattern::for_attributes(
        replica(0).output_schema().clone(),
        &[("key", PatternItem::Ge(Value::Int(i64::MAX / 2 + salt)))],
    )
    .unwrap()
}

/// A random resize schedule with a guaranteed scale-out then scale-in inside
/// the first ten punctuation boundaries (the run has ~30), plus up to two
/// extra random moves later.
fn random_schedule(rng: &mut StdRng) -> (usize, Vec<(u64, usize)>) {
    let initial = rng.gen_range(1..=MAX_WIDTH - 1);
    let mut moves = Vec::new();
    let mut width = initial;
    let mut mark = rng.gen_range(2..5) as u64;

    let out = rng.gen_range(width + 1..=MAX_WIDTH);
    moves.push((mark, out));
    width = out;
    mark += rng.gen_range(2..5) as u64;

    let back_in = rng.gen_range(1..width);
    moves.push((mark, back_in));
    width = back_in;

    for _ in 0..rng.gen_range(0..3) {
        mark += rng.gen_range(2..5) as u64;
        let next = rng.gen_range(1..=MAX_WIDTH);
        if next != width {
            moves.push((mark, next));
            width = next;
        }
    }
    (initial, moves)
}

enum Executor {
    Sync,
    Threaded,
    Pooled,
}

/// Composes the stage (fixed width when `schedule` is `None`, elastic
/// otherwise) under maximal back-pressure and runs it on the chosen executor.
fn run_stage(
    executor: &Executor,
    schedule: Option<(usize, Vec<(u64, usize)>)>,
) -> (ExecutionReport, String) {
    let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
    let out_schema = replica(0).output_schema().clone();
    let shuffle = Shuffle::new("shuffle", schema(), &["key"], MAX_WIDTH).unwrap();
    let merge = Merge::new("merge", out_schema, MAX_WIDTH);
    let source = builder
        .source(
            VecSource::new("source", tuples())
                .with_punctuation("ts", StreamDuration::from_secs(20)),
        )
        .unwrap();
    let staged = match schedule {
        None => source.partitioned_stage(shuffle, merge, replica).unwrap(),
        Some((initial, moves)) => source
            .elastic_stage(shuffle, merge, initial, ElasticPolicy::Scripted(moves), replica)
            .unwrap(),
    };
    let results = staged
        .with_feedback(FeedbackSpec::assumed(never_matching(0)).after_tuples(64))
        .unwrap()
        .with_feedback(FeedbackSpec::assumed(never_matching(1)).at_flush())
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let plan = builder.build().unwrap();
    let report = match executor {
        Executor::Sync => SyncExecutor::run(plan).unwrap(),
        Executor::Threaded => ThreadedExecutor::run(plan).unwrap(),
        Executor::Pooled => PooledExecutor::run(plan).unwrap(),
    };
    let collected = results.lock().clone();
    (report, digest(&collected))
}

#[test]
fn random_resize_schedules_preserve_the_fixed_partition_digest() {
    let (fixed_report, expected) = run_stage(&Executor::Sync, None);
    assert!(!expected.is_empty());
    assert_eq!(fixed_report.total_feedback_dropped(), 0);

    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xE1A5_7100 + seed);
        let (initial, moves) = random_schedule(&mut rng);
        for executor in [Executor::Sync, Executor::Threaded, Executor::Pooled] {
            let label = format!(
                "seed={seed} initial={initial} moves={moves:?} executor={}",
                match executor {
                    Executor::Sync => "sync",
                    Executor::Threaded => "threaded",
                    Executor::Pooled => "pooled",
                }
            );
            let (report, got) = run_stage(&executor, Some((initial, moves.clone())));
            assert_eq!(got, expected, "{label}: digest must match the fixed-width run");
            assert_eq!(report.total_feedback_dropped(), 0, "{label}");

            let stats = report
                .operator("shuffle")
                .unwrap()
                .elastic
                .clone()
                .expect("elastic shuffles report elastic stats");
            assert!(stats.resizes >= 2, "{label}: both guaranteed moves must commit");
            let mut width = initial;
            let mut grew = false;
            let mut shrank = false;
            for &(_, committed) in &stats.epochs {
                grew |= committed > width;
                shrank |= committed < width;
                width = committed;
            }
            assert!(grew && shrank, "{label}: schedule must scale out AND in: {stats:?}");

            // Both riding subscriptions crossed the elastic stage: unanimity
            // over the *current* membership released them to the source.
            assert!(
                report.operator("source").unwrap().feedback_in >= 2,
                "{label}: midstream and at-flush feedback must reach the source"
            );
        }
    }
}
