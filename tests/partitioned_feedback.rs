//! Cross-partition feedback and output-equivalence tests for hash-partitioned
//! plans.
//!
//! A partitioned stage replaces one stateful operator with a
//! shuffle → N replicas → merge sandwich.  These tests pin down the two
//! contracts that make the rewrite safe:
//!
//! 1. **Output equivalence** — partitioned on its group key, a grouped
//!    aggregate produces exactly the single-replica output (as a multiset:
//!    the merge is order-insensitive), on both executors.
//! 2. **Feedback semantics** — a feedback punctuation born at the merge
//!    point is broadcast to *every* upstream replica, relays across the
//!    replicas, lattice-merges at the shuffle, and reaches the source — with
//!    `feedback_dropped == 0` even under maximal back-pressure
//!    (`queue_capacity = 1`), on all three executors.

use feedback_dsms::feedback::ExplicitPolicy;
use feedback_dsms::prelude::*;
use proptest::prelude::*;

/// The executor dimension every parity case runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exec {
    Sync,
    Threaded,
    Pooled,
}

const EXECUTORS: [Exec; 3] = [Exec::Sync, Exec::Threaded, Exec::Pooled];

fn run_plan(plan: QueryPlan, exec: Exec) -> ExecutionReport {
    match exec {
        Exec::Sync => SyncExecutor::run(plan).unwrap(),
        Exec::Threaded => ThreadedExecutor::run(plan).unwrap(),
        Exec::Pooled => PooledExecutor::run(plan).unwrap(),
    }
}

/// Canonical rendering of a sink's output: value rows, sorted.  The merge is
/// an order-insensitive union, so two runs are equivalent iff their sorted
/// renderings are byte-identical.
fn canonical(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// Traffic tuples for the equivalence runs (small, deterministic).
fn traffic_tuples() -> Vec<Tuple> {
    use feedback_dsms::workloads::{TrafficConfig, TrafficGenerator};
    let config = TrafficConfig {
        duration: StreamDuration::from_minutes(4),
        ..TrafficConfig::partition_scaling()
    };
    TrafficGenerator::new(config).collect()
}

fn traffic_schema() -> SchemaRef {
    feedback_dsms::workloads::TrafficGenerator::schema()
}

/// Per-detector windowed average speed — the stateful stage being
/// partitioned.  Grouped (and therefore partitionable) on `detector`.
fn make_aggregate(name: String) -> WindowAggregate {
    WindowAggregate::new(
        name,
        traffic_schema(),
        "timestamp",
        StreamDuration::from_minutes(1),
        &["detector"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate spec")
}

fn run_single(exec: Exec) -> (ExecutionReport, Vec<Tuple>) {
    let builder = StreamBuilder::new().with_page_capacity(32).with_queue_capacity(8);
    let results = builder
        .source(
            VecSource::new("source", traffic_tuples())
                .with_punctuation("timestamp", StreamDuration::from_secs(60)),
        )
        .unwrap()
        .apply(make_aggregate("aggregate".into()))
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let plan = builder.build().unwrap();
    let report = run_plan(plan, exec);
    let collected = results.lock().clone();
    (report, collected)
}

fn run_partitioned(exec: Exec, partitions: usize) -> (ExecutionReport, Vec<Tuple>) {
    let builder = StreamBuilder::new().with_page_capacity(32).with_queue_capacity(8);
    let shuffle =
        Shuffle::new("aggregate-shuffle", traffic_schema(), &["detector"], partitions).unwrap();
    // The aggregate changes the schema, so the merge is built over its
    // output schema.
    let output_schema = make_aggregate("probe".into()).output_schema().clone();
    let merge = Merge::new("aggregate-merge", output_schema, partitions);
    let results = builder
        .source(
            VecSource::new("source", traffic_tuples())
                .with_punctuation("timestamp", StreamDuration::from_secs(60)),
        )
        .unwrap()
        .partitioned_stage(shuffle, merge, |i| make_aggregate(format!("aggregate-{i}")))
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let plan = builder.build().unwrap();
    let report = run_plan(plan, exec);
    let collected = results.lock().clone();
    (report, collected)
}

/// The headline equivalence: for 2, 4 and 8 partitions, on all three
/// executors,
/// the partitioned aggregate's sink output is byte-identical (canonically
/// sorted) to the single-replica plan's, and no feedback is dropped.
#[test]
fn partitioned_aggregate_output_matches_single_replica() {
    for exec in EXECUTORS {
        let (single_report, single_out) = run_single(exec);
        assert!(!single_out.is_empty());
        let expected = canonical(&single_out);
        for partitions in [2, 4, 8] {
            let (report, out) = run_partitioned(exec, partitions);
            assert_eq!(
                canonical(&out),
                expected,
                "partitions={partitions} exec={exec:?}: outputs must be byte-identical after \
                 canonical sorting"
            );
            assert_eq!(report.total_feedback_dropped(), 0, "partitions={partitions} exec={exec:?}");
            assert_eq!(
                report.operator("sink").unwrap().tuples_in,
                single_report.operator("sink").unwrap().tuples_in,
                "partitions={partitions} exec={exec:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-partition feedback propagation
// ---------------------------------------------------------------------------

/// A schema-preserving replica that relays any feedback it receives upstream
/// unchanged — the cooperative behaviour the lattice merge depends on.
struct RelayingReplica {
    name: String,
}

impl Operator for RelayingReplica {
    fn name(&self) -> &str {
        &self.name
    }
    fn inputs(&self) -> usize {
        1
    }
    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> feedback_dsms::engine::EngineResult<()> {
        ctx.emit(0, tuple);
        Ok(())
    }
    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> feedback_dsms::engine::EngineResult<()> {
        ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
        Ok(())
    }
}

fn feedback_schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
}

/// An in-order stream over `keys` distinct keys, ending with one tuple that
/// is `late_by` seconds older than its own partition's latest arrival — a
/// guaranteed disorder-bound violation at the merge (FIFO per partition
/// means its partition-mate with the newest timestamp precedes it).
fn disordered_stream(n: i64, keys: i64, late_by: i64) -> Vec<Tuple> {
    let schema = feedback_schema();
    let mut tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % keys)],
            )
        })
        .collect();
    // Same key as the final in-order tuple => same partition, FIFO-ordered
    // after it, `late_by` seconds too old.
    let last_key = (n - 1) % keys;
    tuples.push(Tuple::new(
        schema.clone(),
        vec![
            Value::Timestamp(Timestamp::from_secs((n - 1 - late_by).max(0))),
            Value::Int(last_key),
        ],
    ));
    tuples
}

/// Runs source → shuffle → N relaying replicas → merge(disorder policy) →
/// sink and returns the execution report, with replica names
/// `replica-0..replica-N`.
fn run_feedback_plan(
    exec: Exec,
    partitions: usize,
    queue_capacity: usize,
    n: i64,
    tolerance_secs: i64,
) -> ExecutionReport {
    let schema = feedback_schema();
    let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(queue_capacity);
    let keys = (partitions as i64) * 8; // plenty of keys per partition
    let shuffle = Shuffle::new("shuffle", schema.clone(), &["key"], partitions).unwrap();
    let merge = Merge::new("merge", schema.clone(), partitions).with_disorder_policy(
        ExplicitPolicy::disorder_bound("ts", StreamDuration::from_secs(tolerance_secs)),
        StreamDuration::from_secs(tolerance_secs),
    );
    let _results = builder
        .source(VecSource::new("source", disordered_stream(n, keys, 4 * tolerance_secs)))
        .unwrap()
        .partitioned_stage(shuffle, merge, |i| RelayingReplica { name: format!("replica-{i}") })
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    let plan = builder.build().unwrap();
    run_plan(plan, exec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An FP emitted by the merge reaches **every** upstream replica,
    /// lattice-merges at the shuffle, and arrives at the source — with
    /// nothing dropped, under maximal back-pressure (queue_capacity = 1),
    /// on all three executors.
    #[test]
    fn merge_feedback_reaches_every_replica_and_the_source(
        partitions in 2usize..9,
        n in 200i64..600,
        exec in (0usize..EXECUTORS.len()).prop_map(|i| EXECUTORS[i]),
    ) {
        let tolerance = 10;
        let report = run_feedback_plan(exec, partitions, 1, n, tolerance);

        let merge = report.operator("merge").unwrap();
        prop_assert!(
            merge.feedback.issued.assumed >= 1,
            "the disorder violation must make the merge issue feedback"
        );
        // Broadcast: every replica received every message the merge issued.
        for i in 0..partitions {
            let replica = report.operator(&format!("replica-{i}")).unwrap();
            prop_assert!(
                replica.feedback_in >= merge.feedback_out / partitions as u64,
                "replica-{i} must receive the broadcast (got {} of {})",
                replica.feedback_in,
                merge.feedback_out
            );
            prop_assert!(replica.feedback_in >= 1, "replica-{i} saw no feedback");
        }
        // Lattice merge: the shuffle saw all relays and released upstream.
        let shuffle = report.operator("shuffle").unwrap();
        prop_assert_eq!(
            shuffle.feedback_in,
            merge.feedback_out,
            "every replica relay reaches the shuffle"
        );
        prop_assert!(shuffle.feedback_out >= 1, "unanimous feedback must cross the shuffle");
        let source = report.operator("source").unwrap();
        prop_assert!(source.feedback_in >= 1, "merged feedback must reach the source");
        prop_assert_eq!(report.total_feedback_dropped(), 0, "nothing may be dropped");
    }
}

/// Deterministic version of the back-pressure case for quick failure
/// localization: 4 partitions, queue capacity 1, all three executors.
#[test]
fn backpressured_partitioned_plan_drops_no_feedback() {
    for exec in EXECUTORS {
        let report = run_feedback_plan(exec, 4, 1, 400, 10);
        assert_eq!(report.total_feedback_dropped(), 0, "exec={exec:?}");
        assert!(report.operator("source").unwrap().feedback_in >= 1, "exec={exec:?}");
    }
}
