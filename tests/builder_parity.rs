//! Parity: plans composed with the fluent `StreamBuilder` must lower to
//! exactly the behaviour of the equivalent hand-wired `QueryPlan` — on the
//! traffic workload, builder-built and hand-built plans produce
//! **byte-identical sorted sink digests** on all three executors, for the
//! plain pipeline, the hash-partitioned stage, and the scheduled-feedback
//! path.

use feedback_dsms::prelude::*;

fn traffic_tuples() -> Vec<Tuple> {
    use feedback_dsms::workloads::{TrafficConfig, TrafficGenerator};
    let config =
        TrafficConfig { duration: StreamDuration::from_minutes(6), ..TrafficConfig::small() };
    TrafficGenerator::new(config).collect()
}

fn traffic_schema() -> SchemaRef {
    feedback_dsms::workloads::TrafficGenerator::schema()
}

/// Canonical digest of a sink's output: debug-rendered value rows, sorted and
/// joined — two plans are equivalent iff their digests are byte-identical.
fn digest(tuples: &[Tuple]) -> String {
    let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// Fixed-seed hash of a digest string, for pinning against constants.
fn digest_hash(digest: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut h = dsms_types::FixedHasher::new();
    h.write(digest.as_bytes());
    h.finish()
}

fn make_source() -> VecSource {
    VecSource::new("source", traffic_tuples())
        .with_punctuation("timestamp", StreamDuration::from_secs(60))
}

fn make_select() -> Select {
    Select::new(
        "plausible",
        traffic_schema(),
        TuplePredicate::new("0 <= speed <= 120", |t| {
            t.float("speed").map(|s| (0.0..=120.0).contains(&s)).unwrap_or(false)
        }),
    )
}

fn make_aggregate(name: String) -> WindowAggregate {
    WindowAggregate::new(
        name,
        traffic_schema(),
        "timestamp",
        StreamDuration::from_minutes(1),
        &["detector"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate spec")
}

/// The executor dimension every parity case runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exec {
    Sync,
    Threaded,
    Pooled,
}

const EXECUTORS: [Exec; 3] = [Exec::Sync, Exec::Threaded, Exec::Pooled];

fn run(plan: QueryPlan, exec: Exec) -> ExecutionReport {
    match exec {
        Exec::Sync => SyncExecutor::run(plan).unwrap(),
        Exec::Threaded => ThreadedExecutor::run(plan).unwrap(),
        Exec::Pooled => PooledExecutor::run(plan).unwrap(),
    }
}

/// source -> select -> aggregate -> sink: builder and hand-wired plans are
/// digest-identical on all three executors.
#[test]
fn pipeline_digests_match_hand_built_plans() {
    for exec in EXECUTORS {
        // Hand-wired through the low-level IR.
        let mut plan = QueryPlan::new().with_page_capacity(16);
        let source = plan.add(make_source());
        let select = plan.add(make_select());
        let aggregate = plan.add(make_aggregate("AVG".into()));
        let (sink, hand_results) = CollectSink::new("sink");
        let sink = plan.add(sink);
        plan.connect_simple(source, select).unwrap();
        plan.connect_simple(select, aggregate).unwrap();
        plan.connect_simple(aggregate, sink).unwrap();
        run(plan, exec);
        let hand = digest(&hand_results.lock());
        assert!(!hand.is_empty());

        // Fluently composed.
        let builder = StreamBuilder::new().with_page_capacity(16);
        let fluent_results = builder
            .source(make_source())
            .unwrap()
            .apply(make_select())
            .unwrap()
            .apply(make_aggregate("AVG".into()))
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        run(builder.build().unwrap(), exec);
        let fluent = digest(&fluent_results.lock());

        assert_eq!(hand, fluent, "exec={exec:?}: digests must be byte-identical");
        assert_eq!(
            digest_hash(&hand),
            PIPELINE_DIGEST,
            "exec={exec:?}: output diverged from the pinned pre-zero-copy digest"
        );
    }
}

/// Pinned sink digests, captured on the `Box<[Value]>`/`String` tuple
/// representation *before* the zero-copy change (`Arc<[Value]>`/`Arc<str>`),
/// hashed with the stable `FixedHasher`.  The representation of tuples and
/// text must be invisible in results: if either constant moves, a types-level
/// change leaked into observable output.
const PIPELINE_DIGEST: u64 = 0xad04_eeee_48ed_9117;
const SOURCE_DIGEST: u64 = 0xb57f_ef8e_5a35_c2e9;

/// The raw traffic stream itself digests identically to its pre-change value
/// — the `Value`/`Tuple` representation change cannot alter a single rendered
/// row.
#[test]
fn source_digest_matches_pre_representation_change_value() {
    assert_eq!(digest_hash(&digest(&traffic_tuples())), SOURCE_DIGEST);
}

/// The hash-partitioned stage: fluent `partitioned_stage` against the
/// `PartitionedExt` plan rewrite, digest-identical on all three executors
/// with no feedback dropped.
#[test]
fn partitioned_stage_digests_match_hand_built_plans() {
    let partitions = 4;
    for exec in EXECUTORS {
        let output_schema = make_aggregate("probe".into()).output_schema().clone();

        let mut plan = QueryPlan::new().with_page_capacity(16).with_queue_capacity(8);
        let source = plan.add(make_source());
        let shuffle =
            Shuffle::new("stage-shuffle", traffic_schema(), &["detector"], partitions).unwrap();
        let merge = Merge::new("stage-merge", output_schema.clone(), partitions);
        let stage =
            plan.partitioned_stage(shuffle, merge, |i| make_aggregate(format!("AVG-{i}"))).unwrap();
        let (sink, hand_results) = CollectSink::new("sink");
        let sink = plan.add(sink);
        plan.connect_simple(source, stage.input()).unwrap();
        plan.connect_simple(stage.output(), sink).unwrap();
        let hand_report = run(plan, exec);
        let hand = digest(&hand_results.lock());

        let builder = StreamBuilder::new().with_page_capacity(16).with_queue_capacity(8);
        let shuffle =
            Shuffle::new("stage-shuffle", traffic_schema(), &["detector"], partitions).unwrap();
        let merge = Merge::new("stage-merge", output_schema, partitions);
        let fluent_results = builder
            .source(make_source())
            .unwrap()
            .partitioned_stage(shuffle, merge, |i| make_aggregate(format!("AVG-{i}")))
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        let fluent_report = run(builder.build().unwrap(), exec);
        let fluent = digest(&fluent_results.lock());

        assert_eq!(hand, fluent, "exec={exec:?}: digests must be byte-identical");
        assert_eq!(hand_report.total_feedback_dropped(), 0);
        assert_eq!(fluent_report.total_feedback_dropped(), 0);
    }
}

/// Scheduled feedback: a composition-time `FeedbackSpec` subscription lowers
/// to the same observable behaviour as a hand-wired
/// `TimedSink::with_scheduled_feedback` — the feedback reaches the source on
/// all three executors and (with a never-matching pattern) the digests stay
/// byte-identical.
#[test]
fn feedback_subscription_matches_hand_built_scheduled_feedback() {
    let never_matching = || {
        Pattern::for_attributes(
            traffic_schema(),
            &[("detector", PatternItem::Ge(Value::Int(i64::MAX / 2)))],
        )
        .unwrap()
    };
    for exec in EXECUTORS {
        let mut plan = QueryPlan::new().with_page_capacity(16);
        let source = plan.add(make_source());
        let select = plan.add(make_select());
        let (sink, hand_results) = TimedSink::new("sink");
        let feedback = FeedbackPunctuation::assumed(never_matching(), "sink");
        let sink = plan.add(sink.with_scheduled_feedback(32, feedback));
        plan.connect_simple(source, select).unwrap();
        plan.connect_simple(select, sink).unwrap();
        let hand_report = run(plan, exec);
        let hand_rows: Vec<Tuple> = hand_results.lock().iter().map(|r| r.tuple.clone()).collect();

        let builder = StreamBuilder::new().with_page_capacity(16);
        let fluent_results = builder
            .source(make_source())
            .unwrap()
            .apply(make_select())
            .unwrap()
            .with_feedback(FeedbackSpec::assumed(never_matching()).after_tuples(32))
            .unwrap()
            .sink_timed("sink")
            .unwrap();
        let fluent_report = run(builder.build().unwrap(), exec);
        let fluent_rows: Vec<Tuple> =
            fluent_results.lock().iter().map(|r| r.tuple.clone()).collect();

        assert_eq!(
            digest(&hand_rows),
            digest(&fluent_rows),
            "exec={exec:?}: digests must be byte-identical"
        );
        // The plausibility select passes every generated tuple and the
        // scheduled feedback never matches, so this path must reproduce the
        // source stream — pinned to its pre-zero-copy digest.
        assert_eq!(
            digest_hash(&digest(&hand_rows)),
            SOURCE_DIGEST,
            "exec={exec:?}: output diverged from the pinned pre-zero-copy digest"
        );
        for report in [&hand_report, &fluent_report] {
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
            assert_eq!(report.operator("plausible").unwrap().feedback_in, 1);
            assert_eq!(report.total_feedback_dropped(), 0);
        }
    }
}
