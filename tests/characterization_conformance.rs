//! Conformance tests: the feedback-aware operators enact exactly the
//! responses that `dsms_feedback::characterization` declares correct for them
//! (so Tables 1 and 2 are not just derived — they are what the operators do),
//! and feedback guards expire once embedded punctuation subsumes them
//! (the supportable-feedback rule of Section 4.4).

use feedback_dsms::feedback::{
    characterize_join, AttributeMapping, ExploitAction, FeedbackPunctuation, FeedbackRegistry,
    GuardDecision, JoinSpec, PropagationRule,
};
use feedback_dsms::prelude::*;
use feedback_dsms::punctuation::scheme::Delimitation;

fn sensor_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn probe_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("avg", DataType::Float),
    ])
}

fn sensor(ts: i64, seg: i64, speed: f64) -> Tuple {
    Tuple::new(
        sensor_schema(),
        vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
    )
}

fn probe(ts: i64, seg: i64, avg: f64) -> Tuple {
    Tuple::new(
        probe_schema(),
        vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(avg)],
    )
}

/// The join operator's observable behaviour matches the characterization it
/// consults: feedback on the join key is propagated to both inputs and purges
/// both hash tables, exactly as `characterize_join` prescribes.
#[test]
fn join_enacts_its_own_characterization() {
    let join = SymmetricHashJoin::new(
        "JOIN",
        sensor_schema(),
        probe_schema(),
        &["segment"],
        "timestamp",
        StreamDuration::from_secs(60),
    )
    .unwrap();
    let output = join.output_schema().clone();

    // What the characterization says should happen for ¬[segment = 3].
    let spec = JoinSpec {
        output: output.clone(),
        left: sensor_schema(),
        right: probe_schema(),
        left_attributes: vec![2],
        join_attributes: vec![1],
        right_attributes: vec![3],
        left_mapping: AttributeMapping::by_name(output.clone(), sensor_schema()).unwrap(),
        right_mapping: AttributeMapping::by_name(output.clone(), probe_schema()).unwrap(),
    };
    let feedback_pattern =
        Pattern::for_attributes(output, &[("segment", PatternItem::Eq(Value::Int(3)))]).unwrap();
    let declared = characterize_join(&spec, &feedback_pattern).unwrap();
    assert!(declared.purges_state());
    assert!(declared.guards_input());
    let declared_targets = match &declared.propagation {
        PropagationRule::ToInputs(targets) => targets.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        other => panic!("expected propagation to inputs, got {other:?}"),
    };
    assert_eq!(declared_targets, vec![0, 1]);
    assert!(declared
        .actions
        .iter()
        .any(|a| matches!(a, ExploitAction::GuardInput { input: 0, .. })));
    assert!(declared
        .actions
        .iter()
        .any(|a| matches!(a, ExploitAction::GuardInput { input: 1, .. })));

    // What the operator actually does.
    let mut join = join;
    let mut ctx = OperatorContext::new();
    join.on_tuple(0, sensor(10, 3, 40.0), &mut ctx).unwrap();
    join.on_tuple(1, probe(20, 3, 38.0), &mut ctx).unwrap();
    join.on_tuple(0, sensor(10, 4, 50.0), &mut ctx).unwrap();
    let _ = ctx.take_emitted();
    assert_eq!(join.buffered(), 3);

    join.on_feedback(0, FeedbackPunctuation::assumed(feedback_pattern, "MAP"), &mut ctx).unwrap();
    let relayed: Vec<usize> = ctx.take_feedback().into_iter().map(|(i, _)| i).collect();
    assert_eq!(relayed, declared_targets, "operator propagates to exactly the declared inputs");
    assert_eq!(join.buffered(), 1, "segment-3 state purged from both tables, as declared");

    // Declared input guards hold: segment-3 tuples on either input are ignored.
    join.on_tuple(0, sensor(30, 3, 99.0), &mut ctx).unwrap();
    join.on_tuple(1, probe(30, 3, 99.0), &mut ctx).unwrap();
    assert_eq!(join.buffered(), 1);
    assert!(ctx.take_emitted().is_empty());
}

/// Section 4.4: feedback on a delimited (punctuated) attribute is supportable —
/// its guard state is released once embedded punctuation covers it — while
/// feedback on an undelimited attribute is rejected in strict mode.
#[test]
fn guards_expire_with_embedded_punctuation_and_unsupportable_feedback_is_rejected() {
    let scheme = PunctuationScheme::new(
        sensor_schema(),
        &[("timestamp", Delimitation::Progressive), ("segment", Delimitation::Grouped)],
    )
    .unwrap();
    let mut registry = FeedbackRegistry::new("IMPUTE").with_scheme(scheme, true);

    // Supportable: constrains the progressive timestamp attribute.
    let before_100 = FeedbackPunctuation::assumed(
        Pattern::for_attributes(
            sensor_schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(100))))],
        )
        .unwrap(),
        "PACE",
    );
    registry.register(before_100).unwrap();
    assert_eq!(registry.decide(&sensor(50, 1, 10.0)), GuardDecision::Suppress);

    // Unsupportable: speeds are never punctuated, so this guard could never be
    // released — strict mode rejects it.
    let fast = FeedbackPunctuation::assumed(
        Pattern::for_attributes(sensor_schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
            .unwrap(),
        "MAP",
    );
    assert!(registry.register(fast).is_err());

    // Embedded punctuation catching up to the guard releases it.
    let progress =
        Punctuation::progress(sensor_schema(), "timestamp", Timestamp::from_secs(100)).unwrap();
    assert_eq!(registry.expire_with(&progress), 1);
    assert_eq!(registry.predicate_state_size(), 0);
    assert_eq!(registry.peek(&sensor(50, 1, 10.0)), GuardDecision::Pass);
}

/// The speed-map viewport feedback of Experiment 2 composes with the
/// characterization machinery: an InSet pattern over the segment attribute is
/// group-only feedback, so the aggregate purges, guards and propagates it, and
/// a later viewport change only adds guards for newly hidden segments.
#[test]
fn viewport_feedback_drives_the_aggregate_like_experiment_2() {
    use feedback_dsms::operators::aggregate::FeedbackMode;

    let aggregate = WindowAggregate::new(
        "AVERAGE",
        sensor_schema(),
        "timestamp",
        StreamDuration::from_secs(60),
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .unwrap()
    .with_feedback_mode(FeedbackMode::ExploitAndPropagate);
    let output = aggregate.output_schema().clone();
    let mut aggregate = aggregate;
    let mut ctx = OperatorContext::new();

    for seg in 0..9 {
        aggregate.on_tuple(0, sensor(10, seg, 30.0 + seg as f64), &mut ctx).unwrap();
    }
    assert_eq!(aggregate.open_groups(), 9);

    // Viewport: only segments 0 and 1 are visible → hide 2..9.
    let hidden: Vec<Value> = (2..9).map(Value::Int).collect();
    let feedback = FeedbackPunctuation::assumed(
        Pattern::for_attributes(output, &[("segment", PatternItem::InSet(hidden))]).unwrap(),
        "MAP",
    );
    aggregate.on_feedback(0, feedback, &mut ctx).unwrap();
    assert_eq!(aggregate.open_groups(), 2, "hidden segments purged");
    assert_eq!(ctx.take_feedback().len(), 1, "relayed to the quality filter (scheme F3)");

    // Hidden segments no longer aggregate; visible ones still do.
    aggregate.on_tuple(0, sensor(20, 5, 99.0), &mut ctx).unwrap();
    aggregate.on_tuple(0, sensor(20, 1, 99.0), &mut ctx).unwrap();
    assert_eq!(aggregate.open_groups(), 2);

    aggregate.on_flush(&mut ctx).unwrap();
    let emitted: Vec<i64> = ctx
        .take_emitted()
        .into_iter()
        .filter_map(|(_, item)| match item {
            StreamItem::Tuple(t) => Some(t.int("segment").unwrap()),
            StreamItem::Punctuation(_) => None,
        })
        .collect();
    assert_eq!(emitted.len(), 2);
    assert!(emitted.contains(&0) && emitted.contains(&1));
}
