//! Three standing queries over one shared traffic source, driven by the
//! multi-query [`PipelineManager`]:
//!
//! * `viewport-a` and `viewport-b` watch the same downtown segments with an
//!   **identical** select prefix — the manager instantiates the source *and*
//!   the filter once and fans the result out zero-copy;
//! * `volume` keeps its own filter, so it shares only the source;
//! * `viewport-b` is stopped mid-stream at a punctuation boundary, which
//!   must leave the other two queries' outputs untouched.
//!
//!     cargo run --release --example multi_query

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{TrafficConfig, TrafficGenerator};

fn viewport() -> TuplePredicate {
    TuplePredicate::new("segment < 6", |t| t.int("segment").map(|s| s < 6).unwrap_or(false))
}

fn busy() -> TuplePredicate {
    TuplePredicate::new("volume >= 8", |t| t.int("volume").map(|v| v >= 8).unwrap_or(false))
}

/// Builds `source_ref("traffic") → select → sink` against the manager.
fn register(
    manager: &mut PipelineManager,
    name: &str,
    predicate: TuplePredicate,
) -> feedback_dsms::operators::SinkHandle {
    let builder = StreamBuilder::new();
    let handle = builder
        .source(manager.source_ref("traffic").expect("the traffic source is registered"))
        .expect("a source ref starts a stream")
        .select("filter", predicate)
        .expect("the predicate matches the traffic schema")
        .sink_collect("sink")
        .expect("the sink consumes the stream");
    manager.register(name, builder.build().expect("plan is valid")).expect("registration");
    handle
}

fn main() {
    let config = TrafficConfig::multi_query();
    let readings: Vec<Tuple> = TrafficGenerator::new(config.clone()).collect();
    println!("traffic readings generated ....... {}", readings.len());

    let mut manager = PipelineManager::new().with_page_capacity(32).with_queue_capacity(8);
    manager
        .add_source(
            "traffic",
            VecSource::new("traffic", readings).with_punctuation("timestamp", config.resolution),
        )
        .expect("the traffic feed is a valid source");

    let viewport_a = register(&mut manager, "viewport-a", viewport());
    let viewport_b = register(&mut manager, "viewport-b", viewport());
    let volume = register(&mut manager, "volume", busy());

    // Stop viewport-b at the 12th punctuation boundary — a consistent cut:
    // it sees a punctuation-delimited prefix of the stream, and its siblings
    // never notice.
    manager.detach_at("viewport-b", 12).expect("viewport-b is registered");

    let outcome = manager.run(ExecutorKind::Pooled).expect("the shared run succeeds");

    println!(
        "viewport rows (a / b) ............ {} / {} (b stopped early)",
        viewport_a.lock().len(),
        viewport_b.lock().len(),
    );
    println!("busy rows ........................ {}", volume.lock().len());
    assert!(
        viewport_b.lock().len() < viewport_a.lock().len(),
        "the detached query must have stopped before the stream ended"
    );

    for query in &outcome.queries {
        println!("\nquery {} (private operators):", query.name);
        print!("{}", dsms_bench::display::metrics_table(&query.report));
    }
    println!("\nshared spine and fan-outs (master plan excerpt):");
    let shared = ExecutionReport {
        elapsed: outcome.master.elapsed,
        metrics: outcome
            .master
            .metrics
            .iter()
            .filter(|m| {
                m.operator == "traffic"
                    || m.operator.starts_with("fanout/")
                    || m.operator.starts_with("shared/")
            })
            .cloned()
            .collect(),
        scheduler: outcome.master.scheduler,
    };
    print!("{}", dsms_bench::display::metrics_table(&shared));

    println!();
    print!("{}", outcome.summary);
    assert_eq!(outcome.master.total_feedback_dropped(), 0);
    assert_eq!(outcome.summary.queries_stopped, 1);
    assert_eq!(outcome.summary.queries_active, 2);
    assert!(outcome.summary.shared_prefix_hits >= 3, "source twice + the filter once");
}
