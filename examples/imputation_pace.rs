//! The paper's Example 3 / Experiment 1 scenario, end to end: an input stream
//! where dirty readings (missing speeds) alternate with clean ones, a split
//! into a clean path and an expensive IMPUTE path, and PACE bounding the
//! disorder between the two while feeding assumed punctuation back to IMPUTE.
//!
//!     cargo run --release --example imputation_pace
//!
//! Compare the number of timely imputed readings with and without feedback —
//! the runnable miniature of Figures 5 and 6 (the full-scale regeneration is
//! `cargo run --release -p dsms-bench --bin figure5_6`).

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{ImputationConfig, ImputationGenerator};
use std::time::Duration;

fn run(feedback: bool) -> (usize, usize) {
    let schema = ImputationGenerator::schema();
    let config = ImputationConfig { tuples: 800, ..ImputationConfig::experiment1() };

    let builder = StreamBuilder::new().with_page_capacity(4);
    let readings = builder
        .source_as(
            GeneratorSource::new("sensors", ImputationGenerator::new(config))
                .with_punctuation("timestamp", StreamDuration::from_secs(1))
                .with_batch_size(8)
                .with_pacing(20.0), // 20 stream seconds per wall-clock second
            schema.clone(),
        )
        .unwrap();
    let (dirty, clean) =
        readings.split("split", TuplePredicate::new("needs imputation", |t| t.has_null())).unwrap();
    let imputed = dirty
        .apply_as(
            Impute::new(
                "IMPUTE",
                "speed",
                "detector",
                // one simulated archival lookup per dirty tuple
                ArchivalStore::synthetic(Duration::from_millis(6), 45.0),
            ),
            schema.clone(),
        )
        .unwrap();
    let merged = if feedback {
        imputed
            .combine(clean, Pace::new("PACE", schema, 2, "timestamp", StreamDuration::from_secs(2)))
            .unwrap()
    } else {
        imputed.union(clean, "UNION").unwrap()
    };
    let out = merged.sink_timed("speed-map-feed").unwrap();

    let _report = ThreadedExecutor::run(builder.build().unwrap()).expect("execution failed");

    let arrivals = out.lock();
    let mut watermark = Timestamp::MIN;
    let mut timely_imputed = 0;
    let mut total_imputed = 0;
    for record in arrivals.iter() {
        let ts = record.tuple.timestamp("timestamp").unwrap();
        watermark = watermark.max(ts);
        if record.tuple.int("tuple_id").unwrap() % 2 == 1 {
            total_imputed += 1;
            if (watermark - ts).as_millis() <= 2_000 {
                timely_imputed += 1;
            }
        }
    }
    (timely_imputed, total_imputed)
}

fn main() {
    println!("running the imputation plan twice (~2 s each, paced replay)…\n");
    let (timely_base, total_base) = run(false);
    println!(
        "without feedback: {timely_base:>3} of 400 imputed readings were timely ({} reached the output at all)",
        total_base
    );
    let (timely_fb, total_fb) = run(true);
    println!(
        "with PACE+feedback: {timely_fb:>3} of 400 imputed readings were timely ({} reached the output at all)",
        total_fb
    );
    println!(
        "\nPACE noticed the imputed path lagging, told IMPUTE which tuples were already\n\
         useless (assumed punctuation ¬[timestamp < watermark]), and IMPUTE spent its\n\
         expensive archival lookups on readings that still had a chance of being timely."
    );
}
