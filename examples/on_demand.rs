//! On-demand result production (paper Example 4) and demanded punctuation.
//!
//! A financial speculator watches windowed average exchange rates but only
//! wants results when she asks for them — and when her margin of action is
//! about to close she needs whatever partial answer exists *right now*
//! (demanded punctuation `![pair = …]`).
//!
//!     cargo run --example on_demand

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{FinancialConfig, FinancialGenerator};

fn main() {
    let tick_schema = FinancialGenerator::schema();
    let config = FinancialConfig::default();

    let mut plan = QueryPlan::new().with_page_capacity(32);
    let source = plan.add(
        GeneratorSource::new("ticks", FinancialGenerator::new(config))
            .with_punctuation("timestamp", StreamDuration::from_secs(30)),
    );

    // One-minute average rate per currency pair.
    let average = WindowAggregate::new(
        "AVG-RATE",
        tick_schema,
        "timestamp",
        StreamDuration::from_secs(60),
        &["pair"],
        AggregateFunction::Avg("rate".into()),
    )
    .expect("valid aggregate");
    let avg_schema = average.output_schema().clone();
    let average = plan.add(average);

    // The gate holds results until the client asks.
    let gate = plan.add(OnDemandGate::new("GATE", avg_schema.clone(), 1_000));

    // The client: asks for everything after 5 arrivals would be too late —
    // instead it demands the EUR/USD subset immediately after 2 punctuations
    // worth of stream progress, then polls for the rest at the end.
    let demand_eur_usd = FeedbackPunctuation::demanded(
        Pattern::for_attributes(
            avg_schema.clone(),
            &[("pair", PatternItem::Eq(Value::Text("EUR/USD".into())))],
        )
        .expect("pair attribute exists"),
        "speculator",
    );
    let (client, received) = TimedSink::new("speculator");
    let client = plan.add(client.with_scheduled_feedback(2, demand_eur_usd));

    plan.connect_simple(source, average).unwrap();
    plan.connect_simple(average, gate).unwrap();
    plan.connect_simple(gate, client).unwrap();

    let report = ThreadedExecutor::run(plan).expect("execution failed");

    let received = received.lock();
    let eur_usd: Vec<&TimedArrival> = received
        .iter()
        .filter(|r| r.tuple.value_by_name("pair").unwrap() == &Value::Text("EUR/USD".into()))
        .collect();
    println!("windowed averages delivered ....... {}", received.len());
    println!("EUR/USD partials delivered ........ {}", eur_usd.len());
    let gate_metrics = report.operator("GATE").unwrap();
    let avg_metrics = report.operator("AVG-RATE").unwrap();
    println!("demanded punctuations relayed ..... {}", gate_metrics.feedback_out);
    println!("partial results from the gate ..... {}", gate_metrics.feedback.partial_results);
    println!("partial results from AVG-RATE ..... {}", avg_metrics.feedback.partial_results);
    println!(
        "\nThe demanded punctuation released the EUR/USD subset immediately — a partial\n\
         answer inside the speculator's margin of action — while everything else stayed\n\
         buffered until the query drained."
    );
}

use feedback_dsms::operators::sink::TimedArrival;
