//! On-demand result production (paper Example 4) and demanded punctuation.
//!
//! A financial speculator watches windowed average exchange rates but only
//! wants results when she asks for them — and when her margin of action is
//! about to close she needs whatever partial answer exists *right now*
//! (demanded punctuation `![pair = …]`).
//!
//!     cargo run --example on_demand

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{FinancialConfig, FinancialGenerator};

fn main() {
    let tick_schema = FinancialGenerator::schema();
    let config = FinancialConfig::default();

    let builder = StreamBuilder::new().with_page_capacity(32);
    // One-minute average rate per currency pair, held back by a gate until
    // the client asks.
    let gated = builder
        .source_as(
            GeneratorSource::new("ticks", FinancialGenerator::new(config))
                .with_punctuation("timestamp", StreamDuration::from_secs(30)),
            tick_schema,
        )
        .unwrap()
        .window_avg("AVG-RATE", "timestamp", StreamDuration::from_secs(60), &["pair"], "rate")
        .unwrap();
    let avg_schema = gated.schema().clone();
    let gated = gated.apply(OnDemandGate::new("GATE", avg_schema.clone(), 1_000)).unwrap();

    // The client's margin of action, declared at composition time: asking
    // for everything after 5 arrivals would be too late — instead it demands
    // the EUR/USD subset after 2 arrivals (`![pair = EUR/USD]`), then polls
    // for the rest at the end.  The subscription would be rejected here if
    // the gate declared no feedback port.
    let demand_eur_usd = FeedbackSpec::demanded(
        Pattern::for_attributes(
            avg_schema,
            &[("pair", PatternItem::Eq(Value::Text("EUR/USD".into())))],
        )
        .expect("pair attribute exists"),
    )
    .after_tuples(2);
    let received = gated
        .with_feedback(demand_eur_usd)
        .expect("the gate declares a feedback port")
        .sink_timed("speculator")
        .unwrap();

    let report = ThreadedExecutor::run(builder.build().unwrap()).expect("execution failed");

    let received = received.lock();
    let eur_usd: Vec<&TimedArrival> = received
        .iter()
        .filter(|r| r.tuple.value_by_name("pair").unwrap() == &Value::Text("EUR/USD".into()))
        .collect();
    println!("windowed averages delivered ....... {}", received.len());
    println!("EUR/USD partials delivered ........ {}", eur_usd.len());
    let gate_metrics = report.operator("GATE").unwrap();
    let avg_metrics = report.operator("AVG-RATE").unwrap();
    println!("demanded punctuations relayed ..... {}", gate_metrics.feedback_out);
    println!("partial results from the gate ..... {}", gate_metrics.feedback.partial_results);
    println!("partial results from AVG-RATE ..... {}", avg_metrics.feedback.partial_results);
    println!(
        "\nThe demanded punctuation released the EUR/USD subset immediately — a partial\n\
         answer inside the speculator's margin of action — while everything else stayed\n\
         buffered until the query drained."
    );
}

use feedback_dsms::operators::sink::TimedArrival;
