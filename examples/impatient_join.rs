//! Desired punctuation in action: IMPATIENT JOIN plus a PRIORITIZER.
//!
//! Probe vehicles are scarce compared to fixed sensors, so when the join holds
//! vehicle data for a segment it asks the sensor side to deliver matching
//! readings *first* (`?[segment ∈ {…}]`).  A prioritizer on the sensor path
//! exploits the desired punctuation by reordering its buffer; the overall
//! result is unchanged, only its production order.
//!
//!     cargo run --example impatient_join

use feedback_dsms::prelude::*;

fn vehicle_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn sensor_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("volume", DataType::Float),
    ])
}

fn main() {
    // A handful of vehicle readings concentrated on segments 2 and 5.
    let vehicles: Vec<Tuple> = (0..40)
        .map(|i| {
            Tuple::new(
                vehicle_schema(),
                vec![
                    Value::Timestamp(Timestamp::from_secs(i)),
                    Value::Int(if i % 2 == 0 { 2 } else { 5 }),
                    Value::Float(48.0),
                ],
            )
        })
        .collect();
    // Sensor readings round-robin over all 9 segments.
    let sensors: Vec<Tuple> = (0..360)
        .map(|i| {
            Tuple::new(
                sensor_schema(),
                vec![
                    Value::Timestamp(Timestamp::from_secs(i / 9)),
                    Value::Int(i % 9),
                    Value::Float(100.0 + i as f64),
                ],
            )
        })
        .collect();

    let builder = StreamBuilder::new().with_page_capacity(16);
    let vehicle_stream = builder
        .source(
            VecSource::new("vehicles", vehicles)
                .with_punctuation("timestamp", StreamDuration::from_secs(10)),
        )
        .unwrap();
    // The prioritizer sits on the sensor path and honours desired punctuation.
    let sensor_stream = builder
        .source(
            VecSource::new("sensors", sensors)
                .with_punctuation("timestamp", StreamDuration::from_secs(10)),
        )
        .unwrap()
        .apply(Prioritizer::new("prioritizer", sensor_schema(), 64))
        .unwrap();

    let inner = SymmetricHashJoin::new(
        "JOIN",
        vehicle_schema(),
        sensor_schema(),
        &["segment"],
        "timestamp",
        StreamDuration::from_secs(60),
    )
    .expect("valid join");
    let impatient =
        ImpatientJoin::new("IMPATIENT-JOIN", inner, sensor_schema(), "segment").with_batch(2);
    let results =
        vehicle_stream.combine(sensor_stream, impatient).unwrap().sink_collect("results").unwrap();

    let report = ThreadedExecutor::run(builder.build().unwrap()).expect("execution failed");

    let results = results.lock();
    println!("join results produced ............ {}", results.len());
    let prioritizer_metrics = report.operator("prioritizer").unwrap();
    let join_metrics = report.operator("IMPATIENT-JOIN").unwrap();
    println!(
        "desired punctuations issued ...... {}",
        join_metrics.feedback.issued.desired.max(join_metrics.feedback_out)
    );
    println!("prioritizer received feedback .... {}", prioritizer_metrics.feedback_in);
    println!(
        "sensor readings fast-tracked ..... {}",
        prioritizer_metrics.feedback.tuples_prioritized
    );
    println!(
        "\nThe join asked for segments 2 and 5 first; the prioritizer released matching\n\
         sensor readings ahead of the rest, so joined results appear sooner — without\n\
         changing which results are produced."
    );
}
