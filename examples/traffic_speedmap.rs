//! The motivating speed-map query of Figure 1: fixed-sensor readings are
//! outer-joined with aggregated probe-vehicle readings so that congested
//! segments (sensor speed < 45 mph) get the extra probe information, and the
//! join sends assumed feedback upstream so the probe path stops cleaning and
//! aggregating readings for uncongested segments.
//!
//!     cargo run --example traffic_speedmap

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{ProbeConfig, ProbeGenerator, TrafficConfig, TrafficGenerator};
use std::time::Duration;

fn main() {
    // Sensor stream: 9 segments, 20-second reports, 30 minutes.
    let sensor_config = TrafficConfig {
        duration: StreamDuration::from_minutes(30),
        detectors_per_segment: 4,
        ..TrafficConfig::default()
    };
    let sensor_schema = TrafficGenerator::schema();

    // Probe stream: a handful of vehicles reporting every 5 seconds.
    let probe_config = ProbeConfig {
        duration: StreamDuration::from_minutes(30),
        vehicles: 12,
        ..ProbeConfig::default()
    };
    let probe_schema = ProbeGenerator::schema();

    let mut plan = QueryPlan::new().with_page_capacity(64);

    let sensor_source = plan.add(
        GeneratorSource::new("fixed-sensors", TrafficGenerator::new(sensor_config))
            .with_punctuation("timestamp", StreamDuration::from_secs(60)),
    );
    let probe_source = plan.add(
        GeneratorSource::new("probe-vehicles", ProbeGenerator::new(probe_config))
            .with_punctuation("timestamp", StreamDuration::from_secs(60)),
    );

    // CLEAN: drop implausible probe readings (GPS glitches), paying a small
    // per-tuple validation cost.
    let clean = plan.add(QualityFilter::new(
        "CLEAN",
        probe_schema.clone(),
        TuplePredicate::new("speed <= 120", |t| t.float("speed").unwrap_or(999.0) <= 120.0),
        Duration::from_micros(2),
    ));

    // AGGREGATE probe readings per (segment, 1-minute window).
    let aggregate = WindowAggregate::new(
        "AGGREGATE",
        probe_schema,
        "timestamp",
        StreamDuration::from_secs(60),
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate");
    let probe_avg_schema = aggregate.output_schema().clone();
    let aggregate = plan.add(aggregate);

    // The sensor side aggregates too (per segment, per minute), so both join
    // inputs share the (window, segment) key.
    let sensor_avg = WindowAggregate::new(
        "SENSOR-AVG",
        sensor_schema,
        "timestamp",
        StreamDuration::from_secs(60),
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate");
    let sensor_avg_schema = sensor_avg.output_schema().clone();
    let sensor_avg = plan.add(sensor_avg);

    // Outer join on (window, segment): every sensor average appears; probe
    // averages attach where available.
    let join = SymmetricHashJoin::new(
        "SPEEDMAP-JOIN",
        sensor_avg_schema,
        probe_avg_schema,
        &["segment"],
        "window",
        StreamDuration::from_secs(60),
    )
    .expect("valid join")
    .left_outer();
    let join_schema = join.output_schema().clone();
    let join = plan.add(join);

    let (sink, results) = CollectSink::new("speed-map");
    let sink = plan.add(sink);

    plan.connect_simple(sensor_source, sensor_avg).unwrap();
    plan.connect_simple(probe_source, clean).unwrap();
    plan.connect_simple(clean, aggregate).unwrap();
    plan.connect(sensor_avg, 0, join, 0).unwrap();
    plan.connect(aggregate, 0, join, 1).unwrap();
    plan.connect_simple(join, sink).unwrap();

    let report = ThreadedExecutor::run(plan).expect("execution failed");

    let results = results.lock();
    let with_probe =
        results.iter().filter(|t| !t.value_by_name("right_avg").unwrap().is_null()).count();
    println!("speed-map rows produced ........ {}", results.len());
    println!("rows enriched with probe data .. {with_probe}");
    println!("join output schema ............. {}", join_schema.describe());
    for name in
        ["fixed-sensors", "probe-vehicles", "CLEAN", "AGGREGATE", "SENSOR-AVG", "SPEEDMAP-JOIN"]
    {
        if let Some(m) = report.operator(name) {
            println!(
                "operator {:<14} in={:<6} out={:<6} punctuation_in={:<4} feedback_in={}",
                m.operator, m.tuples_in, m.tuples_out, m.punctuations_in, m.feedback_in
            );
        }
    }
}
