//! The motivating speed-map query of Figure 1: fixed-sensor readings are
//! outer-joined with aggregated probe-vehicle readings so that congested
//! segments (sensor speed < 45 mph) get the extra probe information, and the
//! join sends assumed feedback upstream so the probe path stops cleaning and
//! aggregating readings for uncongested segments.
//!
//!     cargo run --example traffic_speedmap

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{ProbeConfig, ProbeGenerator, TrafficConfig, TrafficGenerator};
use std::time::Duration;

fn main() {
    // Sensor stream: 9 segments, 20-second reports, 30 minutes.
    let sensor_config = TrafficConfig {
        duration: StreamDuration::from_minutes(30),
        detectors_per_segment: 4,
        ..TrafficConfig::default()
    };
    let sensor_schema = TrafficGenerator::schema();

    // Probe stream: a handful of vehicles reporting every 5 seconds.
    let probe_config = ProbeConfig {
        duration: StreamDuration::from_minutes(30),
        vehicles: 12,
        ..ProbeConfig::default()
    };
    let probe_schema = ProbeGenerator::schema();

    let builder = StreamBuilder::new().with_page_capacity(64);

    // The sensor side aggregates per (segment, 1-minute window).
    let sensor_avg = builder
        .source_as(
            GeneratorSource::new("fixed-sensors", TrafficGenerator::new(sensor_config))
                .with_punctuation("timestamp", StreamDuration::from_secs(60)),
            sensor_schema,
        )
        .unwrap()
        .window_avg("SENSOR-AVG", "timestamp", StreamDuration::from_secs(60), &["segment"], "speed")
        .unwrap();

    // The probe side: CLEAN drops implausible readings (GPS glitches) at a
    // small per-tuple validation cost, then AGGREGATE averages per segment
    // and minute so both join inputs share the (window, segment) key.
    let probe_avg = builder
        .source_as(
            GeneratorSource::new("probe-vehicles", ProbeGenerator::new(probe_config))
                .with_punctuation("timestamp", StreamDuration::from_secs(60)),
            probe_schema.clone(),
        )
        .unwrap()
        .apply(QualityFilter::new(
            "CLEAN",
            probe_schema,
            TuplePredicate::new("speed <= 120", |t| t.float("speed").unwrap_or(999.0) <= 120.0),
            Duration::from_micros(2),
        ))
        .unwrap()
        .window_avg("AGGREGATE", "timestamp", StreamDuration::from_secs(60), &["segment"], "speed")
        .unwrap();

    // Outer join on (window, segment): every sensor average appears; probe
    // averages attach where available.  The builder checks both input
    // schemas against the join's declaration when the edges are drawn.
    let join = SymmetricHashJoin::new(
        "SPEEDMAP-JOIN",
        sensor_avg.schema().clone(),
        probe_avg.schema().clone(),
        &["segment"],
        "window",
        StreamDuration::from_secs(60),
    )
    .expect("valid join")
    .left_outer();
    let join_schema = join.output_schema().clone();
    let results = sensor_avg.combine(probe_avg, join).unwrap().sink_collect("speed-map").unwrap();

    let report = ThreadedExecutor::run(builder.build().unwrap()).expect("execution failed");

    let results = results.lock();
    let with_probe =
        results.iter().filter(|t| !t.value_by_name("right_avg").unwrap().is_null()).count();
    println!("speed-map rows produced ........ {}", results.len());
    println!("rows enriched with probe data .. {with_probe}");
    println!("join output schema ............. {}", join_schema.describe());
    for name in
        ["fixed-sensors", "probe-vehicles", "CLEAN", "AGGREGATE", "SENSOR-AVG", "SPEEDMAP-JOIN"]
    {
        if let Some(m) = report.operator(name) {
            println!(
                "operator {:<14} in={:<6} out={:<6} punctuation_in={:<4} feedback_in={}",
                m.operator, m.tuples_in, m.tuples_out, m.punctuations_in, m.feedback_in
            );
        }
    }
}
