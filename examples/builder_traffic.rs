//! The traffic speed-map pipeline written with the fluent `StreamBuilder`
//! API: schema-checked composition, a hash-partitioned aggregation stage, and
//! a feedback contract declared when the plan is composed — plus the
//! Graphviz export of the lowered plan (feedback edges dashed).
//!
//!     cargo run --release --example builder_traffic

use feedback_dsms::prelude::*;
use feedback_dsms::workloads::{TrafficConfig, TrafficGenerator};

fn make_aggregate(name: String) -> WindowAggregate {
    WindowAggregate::new(
        name,
        TrafficGenerator::schema(),
        "timestamp",
        StreamDuration::from_minutes(1),
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate")
}

fn main() {
    let config =
        TrafficConfig { duration: StreamDuration::from_minutes(10), ..TrafficConfig::small() };
    let readings: Vec<Tuple> = TrafficGenerator::new(config).collect();
    println!("traffic readings generated ....... {}", readings.len());

    // Compose: source -> plausibility filter -> 4-way partitioned windowed
    // average (the aggregate changes the schema, so the merge endpoint is
    // built over its output schema) -> display sink.
    let builder = StreamBuilder::new().with_page_capacity(32).with_queue_capacity(8);
    let filtered = builder
        .source(
            VecSource::new("detectors", readings)
                .with_punctuation("timestamp", StreamDuration::from_secs(60)),
        )
        .expect("detectors is a source")
        .select(
            "plausible",
            TuplePredicate::new("0 <= speed <= 120", |t| {
                t.float("speed").map(|s| (0.0..=120.0).contains(&s)).unwrap_or(false)
            }),
        )
        .expect("select over the stream schema");

    let partitions = 4;
    let output_schema = make_aggregate("probe".into()).output_schema().clone();
    let shuffle = Shuffle::new("avg-shuffle", filtered.schema().clone(), &["segment"], partitions)
        .expect("segment is a key attribute");
    let merge = Merge::new("avg-merge", output_schema.clone(), partitions);
    let averaged = filtered
        .partitioned_stage(shuffle, merge, |i| make_aggregate(format!("AVG-{i}")))
        .expect("replica counts agree");

    // The map display's contract, declared before anything runs: after 40
    // rendered rows it assumes away segment 0 (`¬[segment = 0]`).  This line
    // fails at composition time — naming the operators — if the upstream
    // stage declared no feedback port or the pattern schema mismatched.
    let ignore_segment_0 = FeedbackSpec::assumed(
        Pattern::for_attributes(output_schema, &[("segment", PatternItem::Eq(Value::Int(0)))])
            .expect("segment survives aggregation"),
    )
    .after_tuples(40);
    let rendered = averaged
        .with_feedback(ignore_segment_0)
        .expect("the merge declares a feedback port")
        .sink_timed("map-display")
        .expect("display consumes the averages");

    let plan = builder.build().expect("plan is valid");
    println!(
        "lowered plan ..................... {} operators, {} edges",
        plan.node_count(),
        plan.edge_count()
    );
    let dot = plan.dot();
    let dashed = dot.lines().filter(|l| l.contains("style=dashed")).count();
    println!("graphviz export .................. {} feedback edges (dashed)", dashed);

    let report = ThreadedExecutor::run(plan).expect("execution failed");
    let rendered = rendered.lock();
    let segment0_after =
        rendered.iter().skip(41).filter(|r| r.tuple.int("segment").unwrap_or(-1) == 0).count();
    println!("speed-map rows rendered .......... {}", rendered.len());
    println!("segment-0 rows after feedback .... {segment0_after}");
    for name in ["detectors", "plausible", "avg-shuffle", "avg-merge", "map-display"] {
        if let Some(m) = report.operator(name) {
            println!(
                "operator {:<12} in={:<6} out={:<6} feedback_in={:<3} feedback_out={}",
                m.operator, m.tuples_in, m.tuples_out, m.feedback_in, m.feedback_out
            );
        }
    }
    println!(
        "\nThe display's ¬[segment = 0] was declared when the plan was composed; at run\n\
         time it crossed the merge, reached every replica, lattice-merged at the\n\
         shuffle, and stopped segment-0 work all the way up the partitioned stage."
    );
}
