//! Quickstart: build a small streaming query, run it, and watch assumed
//! feedback punctuation flow *against* the stream to save work.
//!
//!     cargo run --example quickstart
//!
//! The plan is a miniature of the paper's motivating idea: a source of sensor
//! readings, a SELECT, and a sink that — after it has seen enough data —
//! decides it no longer cares about one segment and sends assumed punctuation
//! (`¬[segment = 2]`) upstream.  The SELECT adds the pattern to its condition
//! and relays it; the source stops producing the segment altogether.

use feedback_dsms::prelude::*;

fn main() {
    // 1. Schema and a small synthetic stream: 300 readings over 3 segments.
    let schema = Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ]);
    let readings: Vec<Tuple> = (0..300)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Timestamp(Timestamp::from_secs(i)),
                    Value::Int(i % 3),
                    Value::Float(30.0 + (i % 40) as f64),
                ],
            )
        })
        .collect();

    // 2. Compose the plan fluently: source -> select -> timed sink, with the
    //    feedback contract declared at composition time.  The subscription
    //    would be rejected here — not silently ignored at run time — if the
    //    upstream operator declared no feedback port.
    let ignore_segment_2 = FeedbackSpec::assumed(
        Pattern::for_attributes(schema.clone(), &[("segment", PatternItem::Eq(Value::Int(2)))])
            .expect("segment is an attribute of the schema"),
    )
    .after_tuples(50)
    .from_issuer("map-display");

    let builder = StreamBuilder::new().with_page_capacity(16);
    let results = builder
        .source(
            VecSource::new("sensors", readings)
                .with_punctuation("timestamp", StreamDuration::from_secs(30))
                .with_batch_size(8),
        )
        .expect("sensors is a source")
        .select(
            "fast-enough",
            TuplePredicate::new("speed >= 35", |t| t.float("speed").unwrap_or(0.0) >= 35.0),
        )
        .expect("select over the stream schema")
        .with_feedback(ignore_segment_2)
        .expect("select declares a feedback port")
        .sink_timed("map-display")
        .expect("sink consumes the stream");

    // 3. Lower and run it on the deterministic single-threaded executor.
    let plan = builder.build().expect("plan is valid");
    let report = SyncExecutor::run(plan).expect("execution failed");

    // 4. Inspect what happened.
    let results = results.lock();
    let segment2_results = results.iter().filter(|r| r.tuple.int("segment").unwrap() == 2).count();
    println!("results delivered ................ {}", results.len());
    println!("results for the ignored segment .. {segment2_results}");
    print!("{}", dsms_bench::display::metrics_table(&report));
    println!(
        "\nThe sink sent ¬[*, 2, *]; SELECT added it to its condition and relayed it;\n\
         the source then suppressed segment-2 readings at the cheapest possible point."
    );
}
