//! Offline stand-in for `rand` (0.8-style API).
//!
//! The workloads only need deterministic, seeded generation — never
//! cryptographic or OS entropy — so this shim implements the used surface
//! exactly: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! and inclusive numeric ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] sampling.  The core generator is xoshiro256**
//! seeded via SplitMix64, the same construction `rand`'s `SmallRng` family
//! uses, so streams are high-quality and fully reproducible from a `u64`
//! seed.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a small value.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = uniform_u128(rng, span);
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform draw from `[0, span)` via rejection sampling (span <= 2^64 here).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u128::from(u64::MAX) {
        // Full-width inclusive range (e.g. i64::MIN..=i64::MAX): span is
        // exactly 2^64, every 64-bit word is a valid draw.
        return u128::from(rng.next_u64());
    }
    let span64 = span as u64;
    if span64.is_power_of_two() {
        return (rng.next_u64() & (span64 - 1)) as u128;
    }
    // Rejection zone keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX % span64) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = next_f64(rng) as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let unit = next_f64(rng) as $ty;
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded with
    /// SplitMix64, as in the `rand` ecosystem's small fast RNGs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for random sampling from slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements chosen uniformly without
        /// replacement (all of them when `amount >= len`), in random order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.into_iter().take(amount).map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(0.5f64..150.0);
            assert!((0.5..150.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<i64> = (0..10).collect();
        let mut picked: Vec<i64> = all.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4, "samples must be distinct");
        assert_eq!(all.choose_multiple(&mut rng, 99).count(), 10);
    }
}
