//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the subset of the crossbeam-channel API the engine uses —
//! multi-producer **multi-consumer** bounded and unbounded channels with
//! cloneable endpoints, blocking and non-blocking send/receive, and
//! disconnect detection — on top of `std::sync::{Mutex, Condvar}`.  It is a
//! correctness-first implementation: the lock-free fast paths of the real
//! crate are not reproduced, which is acceptable because pages amortize
//! per-message overhead (one queue message carries up to a page of tuples).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel.  Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.  Cloneable (multi-consumer); the channel
/// disconnects for senders once every clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded channel: sends block once `capacity` messages are
/// in flight, providing back-pressure.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_full(&self, state: &State<T>) -> bool {
        matches!(self.capacity, Some(cap) if state.queue.len() >= cap)
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.  Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if !self.shared.is_full(&state) {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.shared.is_full(&state) {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking until one arrives.  Fails only
    /// when the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full_and_backpressure_releases() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let sender = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(3))
        };
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(sender.join().unwrap(), Ok(()));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_is_observed_on_both_ends() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));

        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multiple_consumers_each_get_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut seen = Vec::new();
        while let Ok(v) = rx.try_recv() {
            seen.push(v);
            if let Ok(v) = rx2.try_recv() {
                seen.push(v);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
