//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the subset of the crossbeam-channel API the engine uses —
//! multi-producer **multi-consumer** bounded and unbounded channels with
//! cloneable endpoints, blocking and non-blocking send/receive, disconnect
//! detection, and a [`Select`]-style multi-receiver wait — on top of
//! `std::sync::{Mutex, Condvar}`.  It is a correctness-first implementation:
//! the lock-free fast paths of the real crate are not reproduced, which is
//! acceptable because pages amortize per-message overhead (one queue message
//! carries up to a page of tuples).
//!
//! The multi-receiver wait is an *event count*: every receiver can register a
//! [`Waker`] (via [`SelectHandle::register`]); senders bump the waker's
//! generation — on message arrival and on disconnect — and a waiter blocks
//! only while the generation it captured is still current, which rules out
//! lost wakeups without requiring the waiter to hold any channel lock.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Wakers registered by selectors waiting for this channel to become
    /// ready (non-empty or disconnected).  Dead entries are pruned whenever
    /// the list is walked.
    watchers: Vec<Weak<WakerInner>>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel.  Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.  Cloneable (multi-consumer); the channel
/// disconnects for senders once every clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded channel: sends block once `capacity` messages are
/// in flight, providing back-pressure.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            watchers: Vec::new(),
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_full(&self, state: &State<T>) -> bool {
        matches!(self.capacity, Some(cap) if state.queue.len() >= cap)
    }

    /// Wakes every registered selector, pruning dead registrations.  Called
    /// whenever the channel becomes ready for receivers: a message arrived or
    /// the last sender disconnected.
    fn notify_watchers(state: &mut State<T>) {
        state.watchers.retain(|w| match w.upgrade() {
            Some(waker) => {
                waker.notify();
                true
            }
            None => false,
        });
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.  Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if !self.shared.is_full(&state) {
                state.queue.push_back(value);
                Shared::notify_watchers(&mut state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.shared.is_full(&state) {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        Shared::notify_watchers(&mut state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking until one arrives.  Fails only
    /// when the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers and selectors so they observe the
            // disconnect.
            Shared::notify_watchers(&mut state);
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-receiver wait (Select)
// ---------------------------------------------------------------------------

struct WakerInner {
    /// Event-count generation: bumped on every notification.
    generation: Mutex<u64>,
    condvar: Condvar,
}

impl WakerInner {
    fn notify(&self) {
        let mut generation = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.condvar.notify_all();
    }
}

/// A wait handle shared between a blocked selector and the channels it
/// watches.  Channels bump the waker's generation whenever they become ready
/// for receivers; the selector captures the generation *before* scanning its
/// channels and then sleeps only while the generation is unchanged, so an
/// event that arrives mid-scan can never be lost.
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl Waker {
    /// Creates a fresh waker with no registrations.
    pub fn new() -> Self {
        Waker { inner: Arc::new(WakerInner { generation: Mutex::new(0), condvar: Condvar::new() }) }
    }

    /// Captures the current generation.  Pass the token to [`Waker::wait`]
    /// after scanning channels: any notification since the capture makes the
    /// wait return immediately.
    pub fn token(&self) -> WakeToken {
        WakeToken(*self.inner.generation.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Blocks until the generation moves past `token` (i.e. until at least
    /// one notification has happened since the token was captured).
    pub fn wait(&self, token: WakeToken) {
        let mut generation = self.inner.generation.lock().unwrap_or_else(|e| e.into_inner());
        while *generation == token.0 {
            generation = self.inner.condvar.wait(generation).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Waker::wait`] but gives up after `timeout`; returns `true` when
    /// a notification arrived, `false` on timeout.
    pub fn wait_timeout(&self, token: WakeToken, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut generation = self.inner.generation.lock().unwrap_or_else(|e| e.into_inner());
        while *generation == token.0 {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _res) = self
                .inner
                .condvar
                .wait_timeout(generation, remaining)
                .unwrap_or_else(|e| e.into_inner());
            generation = guard;
        }
        true
    }

    /// Manually bumps the generation, releasing any waiter.
    pub fn notify(&self) {
        self.inner.notify();
    }
}

impl Default for Waker {
    fn default() -> Self {
        Waker::new()
    }
}

impl fmt::Debug for Waker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Waker").finish_non_exhaustive()
    }
}

/// A captured [`Waker`] generation (see [`Waker::token`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeToken(u64);

/// Types a [`Select`] can wait on.  Implemented by [`Receiver`]; downstream
/// crates may implement it for wrappers by delegating both methods to an
/// inner receiver.
pub trait SelectHandle {
    /// True when a receive would not block: a message is queued or the
    /// channel is disconnected.
    fn is_ready(&self) -> bool;

    /// Registers `waker` to be notified whenever this channel becomes ready.
    /// The registration lives until the waker is dropped.
    fn register(&self, waker: &Waker);
}

impl<T> SelectHandle for Receiver<T> {
    fn is_ready(&self) -> bool {
        let state = self.shared.lock();
        !state.queue.is_empty() || state.senders == 0
    }

    fn register(&self, waker: &Waker) {
        let mut state = self.shared.lock();
        // Prune dead registrations here as well as on notify: a channel that
        // is watched repeatedly but never notified (an idle control channel
        // under a long-running stream) must not accumulate stale entries.
        state.watchers.retain(|w| w.strong_count() > 0);
        state.watchers.push(Arc::downgrade(&waker.inner));
    }
}

/// Waits for any of several receivers to become ready, without polling.
///
/// The API mirrors the shape of crossbeam-channel's `Select` restricted to
/// receive operations: register receivers with [`Select::recv`] (or any
/// [`SelectHandle`] with [`Select::watch`]), then block in [`Select::ready`],
/// which returns the index of a ready operation.  Unlike the real crate the
/// shim does not reserve the operation — callers simply `try_recv` on the
/// indicated (or indeed any) receiver afterwards and retry on a miss.
pub struct Select<'a> {
    waker: Waker,
    handles: Vec<&'a dyn SelectHandle>,
}

impl<'a> Select<'a> {
    /// Creates an empty selector.
    pub fn new() -> Self {
        Select { waker: Waker::new(), handles: Vec::new() }
    }

    /// Adds a receive operation, returning its index.
    pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
        self.watch(receiver)
    }

    /// Adds any [`SelectHandle`], returning its index.
    pub fn watch(&mut self, handle: &'a dyn SelectHandle) -> usize {
        handle.register(&self.waker);
        self.handles.push(handle);
        self.handles.len() - 1
    }

    /// Returns the index of a ready operation without blocking, if any.
    pub fn try_ready(&self) -> Option<usize> {
        self.handles.iter().position(|h| h.is_ready())
    }

    /// Blocks until one of the registered operations is ready and returns its
    /// index.
    ///
    /// # Panics
    ///
    /// Panics when no operations are registered (the wait could never end).
    pub fn ready(&self) -> usize {
        assert!(!self.handles.is_empty(), "Select::ready with no registered operations");
        loop {
            let token = self.waker.token();
            if let Some(index) = self.try_ready() {
                return index;
            }
            self.waker.wait(token);
        }
    }

    /// Blocks until an operation is ready or `timeout` elapses.
    pub fn ready_timeout(&self, timeout: Duration) -> Option<usize> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let token = self.waker.token();
            if let Some(index) = self.try_ready() {
                return Some(index);
            }
            let now = std::time::Instant::now();
            let remaining = deadline.checked_duration_since(now).filter(|d| !d.is_zero())?;
            if !self.waker.wait_timeout(token, remaining) {
                return self.try_ready();
            }
        }
    }
}

impl Default for Select<'_> {
    fn default() -> Self {
        Select::new()
    }
}

impl fmt::Debug for Select<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Select").field("operations", &self.handles.len()).finish()
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full_and_backpressure_releases() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let sender = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(3))
        };
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(sender.join().unwrap(), Ok(()));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_is_observed_on_both_ends() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));

        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn select_returns_ready_receiver_without_blocking() {
        let (tx1, rx1) = unbounded::<i32>();
        let (_tx2, rx2) = unbounded::<i32>();
        let mut sel = Select::new();
        let i1 = sel.recv(&rx1);
        let i2 = sel.recv(&rx2);
        assert_eq!((i1, i2), (0, 1));
        assert_eq!(sel.try_ready(), None);
        tx1.send(7).unwrap();
        assert_eq!(sel.try_ready(), Some(i1));
        assert_eq!(sel.ready(), i1);
        assert_eq!(rx1.try_recv(), Ok(7));
    }

    #[test]
    fn select_blocks_until_a_message_arrives() {
        let (tx, rx) = bounded::<i32>(4);
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        let mut sel = Select::new();
        let idx = sel.recv(&rx);
        assert_eq!(sel.ready(), idx, "ready() must wake on the send");
        assert_eq!(rx.recv(), Ok(42));
        sender.join().unwrap();
    }

    #[test]
    fn select_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let mut sel = Select::new();
        let idx = sel.recv(&rx);
        let dropper = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        assert_eq!(sel.ready(), idx, "disconnect counts as ready");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        dropper.join().unwrap();
    }

    #[test]
    fn select_ready_timeout_expires_when_idle() {
        let (_tx, rx) = unbounded::<i32>();
        let mut sel = Select::new();
        sel.recv(&rx);
        assert_eq!(sel.ready_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn repeated_selects_do_not_accumulate_watchers() {
        let (_tx, rx) = unbounded::<i32>();
        for _ in 0..100 {
            let mut sel = Select::new();
            sel.recv(&rx);
            assert_eq!(sel.try_ready(), None);
        }
        // Dead registrations from dropped selectors are pruned on the next
        // register even though the channel was never notified.
        assert!(rx.shared.lock().watchers.len() <= 1);
    }

    #[test]
    fn waker_token_prevents_lost_wakeups() {
        let waker = Waker::new();
        let token = waker.token();
        waker.notify();
        // The notification happened after the capture: wait returns at once.
        waker.wait(token);
        let stale = waker.token();
        assert!(!waker.wait_timeout(stale, Duration::from_millis(5)), "no event since capture");
    }

    #[test]
    fn multiple_consumers_each_get_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut seen = Vec::new();
        while let Ok(v) = rx.try_recv() {
            seen.push(v);
            if let Ok(v) = rx2.try_recv() {
                seen.push(v);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
