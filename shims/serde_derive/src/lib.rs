//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace ships a minimal local substitute.  Serialization is not yet
//! exercised by any code path — the derives only need to *accept* the
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attribute syntax —
//! so both derives expand to an empty token stream.  Swapping back to the real
//! `serde`/`serde_derive` is a one-line change in the root `Cargo.toml`.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
