//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use — [`strategy::Strategy`] with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec()`], `prop_oneof!`, `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` — on top of the deterministic `rand`
//! shim.
//!
//! Differences from the real crate, acceptable for CI property checks:
//!
//! * no shrinking — a failing case reports its inputs via the assertion
//!   message (all strategies generate `Debug`-friendly values) but is not
//!   minimized;
//! * `prop_assert!` panics (fails the test immediately) instead of returning
//!   a `TestCaseError`;
//! * case generation is seeded from the test-function name, so every run and
//!   every machine sees the same inputs.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the tests use.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a half-open
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty length range for collection::vec");
        VecStrategy { element, min, max }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration (`ProptestConfig`).

    /// How many random cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Creates the RNG for one test run.
pub fn rng_for(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Prints the generated inputs of the current case when the test body panics
/// (any assertion failure unwinds through the guard's `Drop`), so a failing
/// property test always reports what it was fed.
#[doc(hidden)]
pub struct CaseGuard(pub String);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest: failing {}", self.0);
        }
    }
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn` runs its body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __case_guard = $crate::CaseGuard(format!(
                    concat!("case {} of {}: ", $(stringify!($arg), " = {:?} "),+),
                    case, config.cases, $(&$arg),+
                ));
                $body
                drop(__case_guard);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(i64),
        Pair(i64, i64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 0usize..10) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![
            Just(Shape::Dot),
            (0i64..5).prop_map(Shape::Line),
            (0i64..5, 0i64..5).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]) {
            match s {
                Shape::Dot => {}
                Shape::Line(a) => prop_assert!((0..5).contains(&a)),
                Shape::Pair(a, b) => prop_assert!((0..5).contains(&a) && (0..5).contains(&b)),
            }
        }

        #[test]
        fn vec_lengths_respect_spec(
            exact in crate::collection::vec(0i64..3, 4),
            ranged in crate::collection::vec(0i64..3, 1..4),
        ) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn seeding_is_stable_per_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
