//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` API the workspace uses.
//! Poisoned std locks are recovered transparently (`into_inner` on the
//! poison error), matching parking_lot's panic-transparent behaviour closely
//! enough for this codebase, which never relies on poisoning.

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Never errors:
    /// a poisoned lock is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
