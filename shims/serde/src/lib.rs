//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides just enough of serde's public surface for the workspace to
//! compile: the `Serialize`/`Deserialize` trait *names* (with blanket
//! implementations, so trait bounds are always satisfiable) and the no-op
//! derive macros from the sibling `serde_derive` shim.  No actual
//! serialization is performed anywhere in the workspace yet; when a real
//! format backend (e.g. `serde_json`) is introduced, replace the `[patch]`-
//! style path dependency in the root `Cargo.toml` with the real crates.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
