//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition surface the workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` — with a simple wall-clock measurement loop instead of
//! the real crate's statistical machinery.  Each benchmark is warmed up
//! briefly, then timed over a fixed sample budget, and the mean and min
//! per-iteration times are printed in a `name ... time: [..]` line that is
//! grep-compatible with criterion's output shape.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one routine call per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample in real criterion.
    SmallInput,
    /// Large inputs: few per sample in real criterion.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Measures `routine`, called once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.result = Some(Measurement { mean: total / self.samples as u32, min });
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.result = Some(Measurement { mean: total / self.samples as u32, min });
    }
}

fn run_bench(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { samples, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(m) => println!(
            "{name:<50} time: [min {:>12?}  mean {:>12?}]  ({samples} samples)",
            m.min, m.mean
        ),
        None => println!("{name:<50} time: [not measured]"),
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for CLI compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(&id.into_id(), self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sampling config.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed sample budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(&format!("{}/{}", self.name, id.into_id()), self.sample_size, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_bench(&format!("{}/{}", self.name, id.into_id()), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Throughput specification, accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Defines a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group defined by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1))
            .bench_function(BenchmarkId::new("param", 7), |b| {
                b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
            });
    }

    #[test]
    fn groups_run_each_benchmark() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        for n in [1usize, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.finish();
    }
}
