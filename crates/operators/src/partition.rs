//! Data-parallel plan rewriting: `partitioned(…)` on [`QueryPlan`].
//!
//! Replicates a stateful operator N ways behind a [`Shuffle`] (hash-partition
//! on key columns) and a [`Merge`] (order-insensitive union):
//!
//! ```text
//!              ┌─ replica 0 ─┐
//! … ─ shuffle ─┼─ replica 1 ─┼─ merge ─ …
//!              └─ replica … ─┘
//! ```
//!
//! Data follows the hash route, embedded punctuation is broadcast
//! shuffle→replicas, feedback from the merge's consumer is broadcast
//! merge→replicas, and feedback from the replicas is lattice-merged by the
//! shuffle before crossing toward the source (see
//! [`dsms_feedback::FeedbackMerge`]).  As long as the replicated operator's
//! state is keyed by (a function of) the shuffle key — a grouped aggregate
//! partitioned on its group key, a keyed join partitioned on its join key —
//! the partitioned stage produces the same output multiset as the single
//! operator.

use crate::merge::Merge;
use crate::shuffle::Shuffle;
use dsms_engine::{EngineError, EngineResult, NodeId, Operator, QueryPlan};
use dsms_types::SchemaRef;

/// Handle to a partitioned stage inside a plan: connect your producer to
/// [`input()`](PartitionedStage::input) and your consumer to
/// [`output()`](PartitionedStage::output).
#[derive(Debug, Clone)]
pub struct PartitionedStage {
    input: NodeId,
    output: NodeId,
    replicas: Vec<NodeId>,
}

impl PartitionedStage {
    /// The stage's entry node (the shuffle): connect the upstream producer
    /// here.
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// The stage's exit node (the merge): connect the downstream consumer
    /// here.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// The replica nodes, in partition order.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.replicas.len()
    }
}

/// Shared validation for partitioned-stage construction: at least two
/// partitions.  Used by both the [`PartitionedExt`] plan rewrite and the
/// fluent `StreamOps` combinators, so both paths report the identical error.
pub(crate) fn check_partition_count(name: &str, partitions: usize) -> EngineResult<()> {
    if partitions < 2 {
        return Err(EngineError::InvalidPlan {
            detail: format!(
                "partitioned stage `{name}` needs at least 2 partitions (got {partitions}); use \
                 the operator directly for a single-replica plan"
            ),
        });
    }
    Ok(())
}

/// Shared validation for caller-built stage endpoints: the shuffle's fan-out
/// and the merge's fan-in must agree.
pub(crate) fn check_stage_endpoints(shuffle: &Shuffle, merge: &Merge) -> EngineResult<()> {
    if merge.inputs() != shuffle.partitions() {
        return Err(EngineError::InvalidPlan {
            detail: format!(
                "shuffle `{}` fans out to {} partitions but merge `{}` collects {} inputs — the \
                 replica counts must agree",
                shuffle.name(),
                shuffle.partitions(),
                merge.name(),
                merge.inputs()
            ),
        });
    }
    Ok(())
}

/// Plan-rewrite extension adding data-parallel stages to [`QueryPlan`].
pub trait PartitionedExt {
    /// Adds a stage of `partitions` replicas built by `make` (called once per
    /// partition index), hash-partitioned on the `key` attributes of
    /// `schema`, behind a default [`Shuffle`] / [`Merge`] pair named
    /// `{name}-shuffle` / `{name}-merge`.
    ///
    /// Both endpoints are built over `schema`, which suits schema-preserving
    /// replicas (filters, imputers, joins keyed on their probe input).  For a
    /// schema-*changing* replica — a grouped aggregate, say — build the
    /// endpoints yourself and use
    /// [`partitioned_stage`](PartitionedExt::partitioned_stage) with a
    /// [`Merge`] over the replica's output schema.
    ///
    /// The default [`Merge`] has no progress tracking, so it **absorbs**
    /// embedded punctuation (forwarding one replica's punctuation would be
    /// wrong — the others may still produce matching tuples).  That is fine
    /// for the replicas themselves (the shuffle broadcasts punctuation to
    /// them) and for finite streams, but if an operator *downstream of the
    /// stage* relies on punctuation to make progress on an unbounded stream,
    /// build the endpoints yourself and give the merge
    /// [`Merge::with_progress_on`], which re-emits the minimum of the
    /// per-replica watermarks.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{QueryPlan, SyncExecutor};
    /// use dsms_operators::{CollectSink, PartitionedExt, Select, TuplePredicate, VecSource};
    /// use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("ts", DataType::Timestamp), ("seg", DataType::Int)]);
    /// let tuples: Vec<Tuple> = (0..100)
    ///     .map(|i| {
    ///         Tuple::new(
    ///             schema.clone(),
    ///             vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 10)],
    ///         )
    ///     })
    ///     .collect();
    ///
    /// let mut plan = QueryPlan::new();
    /// let source = plan.add(VecSource::new("source", tuples));
    /// // Replicate a filter 4 ways, partitioned on the `seg` key column.
    /// let stage = plan.partitioned("stage", schema.clone(), &["seg"], 4, |i| {
    ///     Select::new(
    ///         format!("select-{i}"),
    ///         schema.clone(),
    ///         TuplePredicate::new("seg != 3", |t| t.int("seg").unwrap_or(0) != 3),
    ///     )
    /// })?;
    /// let (sink, results) = CollectSink::new("sink");
    /// let sink = plan.add(sink);
    /// plan.connect_simple(source, stage.input())?;
    /// plan.connect_simple(stage.output(), sink)?;
    ///
    /// let report = SyncExecutor::run(plan)?;
    /// assert_eq!(results.lock().len(), 90, "segment 3 filtered out in one replica");
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    fn partitioned<O, F>(
        &mut self,
        name: &str,
        schema: SchemaRef,
        key: &[&str],
        partitions: usize,
        make: F,
    ) -> EngineResult<PartitionedStage>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O;

    /// Like [`partitioned`](PartitionedExt::partitioned), but with
    /// caller-built shuffle and merge endpoints (e.g. a [`Merge`] carrying a
    /// disorder-bound policy).  The shuffle's partition count and the merge's
    /// input count must agree.
    fn partitioned_stage<O, F>(
        &mut self,
        shuffle: Shuffle,
        merge: Merge,
        make: F,
    ) -> EngineResult<PartitionedStage>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O;
}

impl PartitionedExt for QueryPlan {
    fn partitioned<O, F>(
        &mut self,
        name: &str,
        schema: SchemaRef,
        key: &[&str],
        partitions: usize,
        make: F,
    ) -> EngineResult<PartitionedStage>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O,
    {
        check_partition_count(name, partitions)?;
        let shuffle = Shuffle::new(format!("{name}-shuffle"), schema.clone(), key, partitions)?;
        let merge = Merge::new(format!("{name}-merge"), schema, partitions);
        self.partitioned_stage(shuffle, merge, make)
    }

    fn partitioned_stage<O, F>(
        &mut self,
        shuffle: Shuffle,
        merge: Merge,
        mut make: F,
    ) -> EngineResult<PartitionedStage>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O,
    {
        check_stage_endpoints(&shuffle, &merge)?;
        let partitions = shuffle.partitions();
        let input = self.add(shuffle);
        let output = self.add(merge);
        let mut replicas = Vec::with_capacity(partitions);
        for partition in 0..partitions {
            let replica = self.add(make(partition));
            self.connect(input, partition, replica, 0)?;
            self.connect(replica, 0, output, partition)?;
            replicas.push(replica);
        }
        Ok(PartitionedStage { input, output, replicas })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::source::VecSource;
    use dsms_engine::{SyncExecutor, ThreadedExecutor};
    use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("ts", DataType::Timestamp), ("seg", DataType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    schema(),
                    vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 13)],
                )
            })
            .collect()
    }

    /// Pass-through replica that records which segment values it saw.
    struct Recorder {
        name: String,
        seen: std::sync::Arc<parking_lot::Mutex<Vec<i64>>>,
    }

    impl Operator for Recorder {
        fn name(&self) -> &str {
            &self.name
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(
            &mut self,
            _i: usize,
            t: Tuple,
            ctx: &mut dsms_engine::OperatorContext,
        ) -> EngineResult<()> {
            self.seen.lock().push(t.int("seg").unwrap());
            ctx.emit(0, t);
            Ok(())
        }
    }

    #[test]
    fn partitioned_stage_wires_and_runs_on_both_executors() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = plan.add(VecSource::new("source", tuples(200)));
            let recorders: Vec<_> =
                (0..4).map(|_| std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()))).collect();
            let handles = recorders.clone();
            let stage = plan
                .partitioned("stage", schema(), &["seg"], 4, |i| Recorder {
                    name: format!("replica-{i}"),
                    seen: handles[i].clone(),
                })
                .unwrap();
            assert_eq!(stage.partitions(), 4);
            assert_eq!(stage.replicas().len(), 4);
            let (sink, results) = CollectSink::new("sink");
            let sink = plan.add(sink);
            plan.connect_simple(source, stage.input()).unwrap();
            plan.connect_simple(stage.output(), sink).unwrap();
            plan.validate().unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(results.lock().len(), 200, "threaded={threaded}");
            assert_eq!(report.total_feedback_dropped(), 0);
            // Key-consistency: each segment value is seen by exactly one replica.
            for seg in 0..13 {
                let owners = recorders.iter().filter(|r| r.lock().contains(&seg)).count();
                assert_eq!(owners, 1, "segment {seg} must live on exactly one replica");
            }
            // The hash spreads 13 segments over more than one replica.
            let active = recorders.iter().filter(|r| !r.lock().is_empty()).count();
            assert!(active > 1, "partitioning must actually spread the stream");
        }
    }

    #[test]
    fn mismatched_replica_counts_are_rejected() {
        let mut plan = QueryPlan::new();
        let shuffle = Shuffle::new("s", schema(), &["seg"], 4).unwrap();
        let merge = Merge::new("m", schema(), 3);
        let err = plan
            .partitioned_stage(shuffle, merge, |i| Recorder {
                name: format!("replica-{i}"),
                seen: Default::default(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("must agree"), "{err}");

        let err = plan
            .partitioned("p", schema(), &["seg"], 1, |i| Recorder {
                name: format!("replica-{i}"),
                seen: Default::default(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("at least 2 partitions"), "{err}");
    }
}
