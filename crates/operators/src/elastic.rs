//! Elastic repartitioning for the shuffle→replicas→merge sandwich.
//!
//! A partitioned stage built by
//! [`elastic_stage`](crate::fluent::StreamOps::elastic_stage) can change its
//! *active* replica count at runtime without changing the query result.  The
//! stage is built at its maximum width; at any moment only replicas
//! `0..active` receive data, and a four-step handshake — riding entirely on
//! the existing punctuation and feedback channels — moves the keyed state of
//! stateful replicas when the width changes:
//!
//! 1. **Resize** — the merge watches the shuffle-reported input queue depth
//!    (via the shared [`ElasticController`]) and, at a punctuation boundary,
//!    decides a new width against its [`ElasticPolicy`].  The decision
//!    travels *upstream* as a feedback punctuation carrying
//!    [`StageDirective::Resize`] — inter-operator feedback exactly as the
//!    paper frames it, here carrying a scheduling intent instead of a
//!    subset description.
//! 2. **Migrate** — the shuffle emits a [`StageDirective::Migrate`] marker
//!    punctuation to *every* replica (a consistent cut: each replica sees it
//!    after all earlier tuples and before all later ones) and starts
//!    buffering its input.  Each [`ElasticReplica`] exports its keyed state
//!    into the controller's migration pool, acknowledges upstream with
//!    [`StageDirective::Ack`], and forwards the marker downstream.
//! 3. **Commit** — once every replica has acknowledged, the shuffle switches
//!    its routing width, emits a [`StageDirective::Commit`] marker, and
//!    replays the buffered input under the new routing.  Each replica
//!    reclaims from the pool exactly the keys that now hash to it; the merge
//!    counts the commit markers and switches its watermark membership.
//! 4. **Cancel** — if the stream ends mid-handshake the shuffle commits the
//!    *old* width instead: every key reclaims its own exporter's state, the
//!    replay uses the old routing, and the run is byte-identical to one with
//!    no resize at all.
//!
//! Because the cut is aligned with the stream (markers are ordinary
//! punctuations in the data channel) and state moves whole groups at the
//! cut, a resized run produces exactly the multiset of tuples a
//! fixed-partition run produces — the property `tests/elastic_parity.rs`
//! pins across all three executors.

use dsms_engine::{ElasticStats, EngineResult, Operator, OperatorContext, SourceState, StateEntry};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles};
use dsms_punctuation::{Pattern, Punctuation, StageDirective};
use dsms_types::{FixedHasher, Tuple, Value};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The partition a key routes to at the given width.  Must agree with
/// [`Shuffle::partition_of`](crate::Shuffle::partition_of): the same
/// fixed-seed hash over the key values **in shuffle key order**, reduced
/// modulo the width — stateful replicas must therefore export
/// [`StateEntry::key`] values in that same order.
pub fn route_values(values: &[Value], partitions: usize) -> usize {
    let mut hasher = FixedHasher::new();
    for value in values {
        value.hash(&mut hasher);
    }
    (hasher.finish() % partitions.max(1) as u64) as usize
}

/// The membership flags for a stage running `active` of `partitions`
/// replicas: the active ones are always the prefix `0..active`.  Both the
/// shuffle's [`FeedbackMerge`](dsms_feedback::FeedbackMerge) and the merge's
/// [`MinWatermark`](crate::MinWatermark) take membership in this shape.
pub fn membership(active: usize, partitions: usize) -> Vec<bool> {
    (0..partitions).map(|replica| replica < active).collect()
}

/// Shared coordination state of one elastic stage: the migration pool keyed
/// state parks in between Migrate and Commit, the load signal the shuffle
/// reports and the merge reads, and the stage's [`ElasticStats`].
///
/// One controller serves exactly one stage; share it via
/// [`ElasticController::shared`].
#[derive(Default)]
pub struct ElasticController {
    /// State exported at the Migrate cut, tagged with the exporting replica.
    pool: Mutex<Vec<(usize, StateEntry)>>,
    /// Most recent input queue depth observed by the shuffle.
    load: AtomicU64,
    stats: Mutex<ElasticStats>,
}

impl ElasticController {
    /// Creates a controller behind an [`Arc`] for sharing across the stage.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records the shuffle's current input queue depth (the scale signal).
    pub fn report_load(&self, depth: u64) {
        self.load.store(depth, Ordering::Relaxed);
    }

    /// The most recently reported queue depth.
    pub fn load(&self) -> u64 {
        self.load.load(Ordering::Relaxed)
    }

    /// Parks a replica's exported state in the migration pool.
    pub fn park(&self, from: usize, entries: Vec<StateEntry>) {
        let mut pool = self.pool.lock();
        pool.extend(entries.into_iter().map(|entry| (from, entry)));
    }

    /// Drains from the pool every entry that routes to `replica` at the
    /// committed width, returning the entries and how many of them *moved*
    /// (were exported by a different replica).
    pub fn reclaim(&self, replica: usize, partitions: usize) -> (Vec<StateEntry>, u64) {
        let mut pool = self.pool.lock();
        let mut mine = Vec::new();
        let mut migrated = 0;
        let mut index = 0;
        while index < pool.len() {
            if route_values(&pool[index].1.key, partitions) == replica {
                let (from, entry) = pool.swap_remove(index);
                if from != replica {
                    migrated += 1;
                }
                mine.push(entry);
            } else {
                index += 1;
            }
        }
        (mine, migrated)
    }

    /// Adds to the stage-wide migrated-groups counter.
    pub fn record_migrated(&self, groups: u64) {
        self.stats.lock().migrated_groups += groups;
    }

    /// Records a committed resize to the given width.
    pub fn record_resize(&self, epoch: u64, partitions: usize) {
        let mut stats = self.stats.lock();
        stats.resizes += 1;
        stats.epochs.push((epoch, partitions));
    }

    /// Records a resize cancelled by end-of-stream.
    pub fn record_cancel(&self) {
        self.stats.lock().cancelled += 1;
    }

    /// A snapshot of the stage's statistics.
    pub fn stats(&self) -> ElasticStats {
        self.stats.lock().clone()
    }
}

/// When and how far an elastic merge resizes its stage.
#[derive(Debug, Clone)]
pub enum ElasticPolicy {
    /// Resize to the given widths after the merge has seen the given numbers
    /// of progress punctuations on input 0 (a deterministic schedule, used by
    /// the parity tests).  Entries must be in ascending punctuation order.
    Scripted(Vec<(u64, usize)>),
    /// Watch the shuffle-reported queue depth at every punctuation boundary:
    /// at or above `high` pages, scale out to `spike_width`; at or below
    /// `low`, scale in to `idle_width`.
    Adaptive {
        /// Queue depth at or above which the stage scales out.
        high: u64,
        /// Queue depth at or below which the stage scales in.
        low: u64,
        /// Width used under load spikes.
        spike_width: usize,
        /// Width used when the queue drains.
        idle_width: usize,
    },
}

impl ElasticPolicy {
    /// The width the stage should run at, given the punctuations seen so far
    /// on input 0, the current load signal, and the current width.  Returns
    /// `None` when no change is called for.  `&mut` because a scripted
    /// schedule consumes its entries.
    pub fn decide(&mut self, punctuations: u64, load: u64, active: usize) -> Option<usize> {
        match self {
            ElasticPolicy::Scripted(schedule) => {
                if schedule.first().is_some_and(|(at, _)| punctuations >= *at) {
                    let (_, target) = schedule.remove(0);
                    (target != active).then_some(target)
                } else {
                    None
                }
            }
            ElasticPolicy::Adaptive { high, low, spike_width, idle_width } => {
                if load >= *high && active != *spike_width {
                    Some(*spike_width)
                } else if load <= *low && active != *idle_width {
                    Some(*idle_width)
                } else {
                    None
                }
            }
        }
    }
}

/// Wraps one replica of an elastic stage, handling migration markers on its
/// behalf: [`Migrate`](StageDirective::Migrate) exports the inner operator's
/// keyed state into the controller pool and acknowledges upstream;
/// [`Commit`](StageDirective::Commit) reclaims and re-imports the keys that
/// hash to this replica at the committed width.  Everything else is
/// delegated untouched.
pub struct ElasticReplica<O> {
    inner: O,
    index: usize,
    controller: Arc<ElasticController>,
}

impl<O: Operator> ElasticReplica<O> {
    /// Wraps replica `index` of a stage coordinated by `controller`.
    pub fn new(inner: O, index: usize, controller: Arc<ElasticController>) -> Self {
        ElasticReplica { inner, index, controller }
    }

    /// The wrapped replica.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn handle_directive(
        &mut self,
        directive: StageDirective,
        marker: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        match directive {
            StageDirective::Migrate { epoch, .. } => {
                let exported = self.inner.export_state();
                self.controller.park(self.index, exported);
                let pattern = self
                    .inner
                    .schema_in(0)
                    .map(Pattern::all_wildcards)
                    .unwrap_or_else(|| marker.pattern().clone());
                ctx.send_feedback(
                    0,
                    FeedbackPunctuation::desired(pattern, self.inner.name())
                        .with_directive(StageDirective::Ack { epoch, replica: self.index }),
                );
            }
            StageDirective::Commit { partitions, .. } => {
                let (entries, migrated) = self.controller.reclaim(self.index, partitions);
                self.controller.record_migrated(migrated);
                if !entries.is_empty() {
                    self.inner.import_state(entries)?;
                }
            }
            // Resize and Ack ride the feedback channel, never the data
            // channel; an arrival here is a no-op.
            StageDirective::Resize { .. } | StageDirective::Ack { .. } => {}
        }
        // Forward the marker so the cut stays consistent through the stage
        // (the merge counts Commit markers to switch its membership).
        ctx.emit_punctuation(0, marker);
        Ok(())
    }
}

impl<O: Operator> Operator for ElasticReplica<O> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn must_connect_all_outputs(&self) -> bool {
        self.inner.must_connect_all_outputs()
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles().union(FeedbackRoles::relayer())
    }

    fn schema_in(&self, input: usize) -> Option<dsms_types::SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<dsms_types::SchemaRef> {
        self.inner.schema_out(output)
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_page(
        &mut self,
        input: usize,
        page: dsms_engine::Page,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Migration markers must not reach the inner operator's batched
        // fast path (it would forward them blindly without exporting).
        // Pages carrying one are unpacked item by item; everything else
        // takes the inner fast path untouched.
        let items: Vec<dsms_engine::StreamItem> = page.into_iter().collect();
        let has_marker = items.iter().any(|item| match item {
            dsms_engine::StreamItem::Punctuation(p) => p.stage_directive().is_some(),
            dsms_engine::StreamItem::Tuple(_) => false,
        });
        if !has_marker {
            return self.inner.on_page(input, dsms_engine::Page::from_items(items), ctx);
        }
        for item in items {
            match item {
                dsms_engine::StreamItem::Tuple(tuple) => self.inner.on_tuple(input, tuple, ctx)?,
                dsms_engine::StreamItem::Punctuation(p) => self.on_punctuation(input, p, ctx)?,
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        match punctuation.stage_directive() {
            Some(directive) => self.handle_directive(directive, punctuation, ctx),
            None => self.inner.on_punctuation(input, punctuation, ctx),
        }
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if feedback.stage_directive().is_some() {
            // A stage directive from the merge is addressed to the shuffle;
            // relay it upstream without involving the inner operator (whose
            // schema the pattern may not match).
            let pattern = self
                .inner
                .schema_in(0)
                .map(Pattern::all_wildcards)
                .unwrap_or_else(|| feedback.pattern().clone());
            ctx.send_feedback(0, feedback.relay(pattern, self.inner.name()));
            return Ok(());
        }
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_request_results(output, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_flush(ctx)
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        self.inner.poll_source(ctx)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        self.inner.feedback_stats()
    }

    fn export_state(&mut self) -> Vec<StateEntry> {
        self.inner.export_state()
    }

    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.inner.import_state(entries)
    }

    /// Never restartable, even over a restartable inner operator: migration
    /// directives mutate the *shared* [`ElasticController`], so replaying the
    /// punctuation that carried them would double-apply handoffs against
    /// sibling replicas.
    fn restartable(&self) -> bool {
        false
    }

    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        self.inner.absorb_shutdown(output, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, SchemaRef};

    fn schema() -> SchemaRef {
        Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
    }

    fn entry(key: i64) -> StateEntry {
        StateEntry { key: vec![Value::Int(key)], payload: Box::new(key) }
    }

    #[test]
    fn route_values_matches_the_shuffle_route() {
        let shuffle = crate::Shuffle::new("s", schema(), &["key"], 4).unwrap();
        for key in 0..64 {
            let tuple = Tuple::new(
                schema(),
                vec![Value::Timestamp(dsms_types::Timestamp::from_secs(0)), Value::Int(key)],
            );
            assert_eq!(
                route_values(&[Value::Int(key)], 4),
                shuffle.partition_of(&tuple).unwrap(),
                "key {key}: replica reclaim must agree with shuffle routing"
            );
        }
    }

    #[test]
    fn pool_reclaim_partitions_the_parked_state_exactly() {
        let controller = ElasticController::shared();
        controller.park(0, (0..40).map(entry).collect());
        let mut total = 0;
        let mut migrated_total = 0;
        for replica in 0..4 {
            let (mine, migrated) = controller.reclaim(replica, 4);
            for e in &mine {
                assert_eq!(route_values(&e.key, 4), replica);
            }
            total += mine.len();
            migrated_total += migrated;
        }
        assert_eq!(total, 40, "every parked entry reclaimed exactly once");
        assert!(migrated_total > 0, "widening from one exporter moves groups");
        assert_eq!(controller.reclaim(0, 1).0.len(), 0, "pool fully drained");
    }

    #[test]
    fn reclaim_at_the_old_width_returns_state_to_its_exporter() {
        let controller = ElasticController::shared();
        // Two replicas each export the keys they own at width 2.
        for key in 0..20 {
            let owner = route_values(&[Value::Int(key)], 2);
            controller.park(owner, vec![entry(key)]);
        }
        for replica in 0..2 {
            let (_, migrated) = controller.reclaim(replica, 2);
            assert_eq!(migrated, 0, "cancelled resize moves nothing");
        }
    }

    #[test]
    fn scripted_policy_fires_in_order_and_consumes_entries() {
        let mut policy = ElasticPolicy::Scripted(vec![(2, 4), (5, 1)]);
        assert_eq!(policy.decide(1, 0, 1), None, "before the first mark");
        assert_eq!(policy.decide(2, 0, 1), Some(4));
        assert_eq!(policy.decide(3, 0, 4), None, "entry consumed");
        assert_eq!(policy.decide(7, 0, 4), Some(1), "late is fine: at-or-after");
        assert_eq!(policy.decide(100, 0, 1), None, "schedule exhausted");
    }

    #[test]
    fn adaptive_policy_tracks_the_watermarks() {
        let mut policy = ElasticPolicy::Adaptive { high: 8, low: 1, spike_width: 4, idle_width: 1 };
        assert_eq!(policy.decide(0, 3, 1), None, "between the watermarks");
        assert_eq!(policy.decide(0, 9, 1), Some(4), "spike scales out");
        assert_eq!(policy.decide(0, 9, 4), None, "already wide");
        assert_eq!(policy.decide(0, 0, 4), Some(1), "drain scales in");
    }

    #[test]
    fn controller_stats_accumulate() {
        let controller = ElasticController::shared();
        controller.record_resize(1, 4);
        controller.record_resize(2, 1);
        controller.record_cancel();
        controller.record_migrated(7);
        controller.report_load(42);
        let stats = controller.stats();
        assert_eq!(stats.resizes, 2);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.migrated_groups, 7);
        assert_eq!(stats.epochs, vec![(1, 4), (2, 1)]);
        assert_eq!(controller.load(), 42);
    }
}
