//! # dsms-operators
//!
//! The operator library for the feedback-punctuation DSMS reproduction.
//! Every operator implements the engine's [`dsms_engine::Operator`] trait and,
//! where the paper describes it, the feedback roles (producer, exploiter,
//! relayer) with the exact characterizations of `dsms-feedback`.
//!
//! | Operator | Paper role | Feedback behaviour |
//! |---|---|---|
//! | [`source::VecSource`], [`source::GeneratorSource`] | stream input | exploits assumed feedback by skipping described tuples at the source |
//! | [`sink::CollectSink`], [`sink::TimedSink`] | query result | optionally issues event-driven feedback |
//! | [`select::Select`] | σ (stateless filter) | adds assumed patterns to its condition; relays |
//! | [`project::Project`] | π | relays feedback through its attribute mapping |
//! | [`duplicate::Duplicate`] | DUPLICATE | exploits only when all outputs assume the same subset |
//! | [`split::Split`] | σC / σ¬C pair | content-based routing for the imputation plan |
//! | [`union::Union`] | UNION | merges inputs, relays feedback to both |
//! | [`pace::Pace`] | PACE | *produces* assumed feedback from its disorder bound |
//! | [`impute::Impute`] | IMPUTE | *exploits* assumed feedback by purging/skipping late tuples |
//! | [`aggregate::WindowAggregate`] | COUNT/SUM/AVG/MAX/MIN | Table 1 characterization; schemes F1/F2 |
//! | [`join::SymmetricHashJoin`] | JOIN | Table 2 characterization |
//! | [`thrifty_join::ThriftyJoin`] | THRIFTY JOIN | adaptive producer: empty probe windows |
//! | [`impatient_join::ImpatientJoin`] | IMPATIENT JOIN | adaptive producer of desired punctuation |
//! | [`quality_filter::QualityFilter`] | σQ data-quality filter | exploits relayed feedback (scheme F3) |
//! | [`prioritizer::Prioritizer`] | — | exploits desired punctuation by reordering |
//! | [`demand::OnDemandGate`] | Example 4 | answers demanded punctuation / result requests |
//! | [`shuffle::Shuffle`] | data-parallel fan-out | broadcasts punctuation to replicas; lattice-merges replica feedback before relaying |
//! | [`fanout::SharedFanout`] | multi-query fan-out | per-port guard isolation; lattice-merges sharer feedback; attach/detach at punctuation boundaries |
//! | [`merge::Merge`] | data-parallel fan-in | broadcasts consumer feedback to every replica; optionally *produces* disorder-bound feedback |
//! | [`chaos::Chaos`] | — | deterministic fault-injection wrapper (panic / transient error / stall) for supervised-recovery tests |
//!
//! [`partition::PartitionedExt`] extends [`dsms_engine::QueryPlan`] with a
//! `partitioned(…)` rewrite that replicates a stateful operator N ways behind
//! a shuffle/merge pair, and [`common::Costed`] models expensive (CPU- or
//! I/O-bound) operators for scaling experiments.
//!
//! [`fluent::StreamOps`] extends the engine's fluent [`dsms_engine::Stream`]
//! with combinators that construct these operators from the schema the stream
//! carries — the recommended way to compose plans (`QueryPlan` stays public
//! as the low-level escape hatch the builder lowers into).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod chaos;
pub mod common;
pub mod demand;
pub mod duplicate;
pub mod elastic;
pub mod fanout;
pub mod fluent;
pub mod impatient_join;
pub mod impute;
pub mod join;
pub mod merge;
pub mod pace;
pub mod partition;
pub mod prioritizer;
pub mod project;
pub mod quality_filter;
pub mod select;
pub mod shuffle;
pub mod sink;
pub mod source;
pub mod split;
pub mod thrifty_join;
pub mod union;

pub use aggregate::{AggregateFunction, WindowAggregate};
pub use chaos::{Chaos, FaultSpec};
pub use common::{simulate_cost, Costed, MinWatermark, TuplePredicate};
pub use demand::OnDemandGate;
pub use duplicate::Duplicate;
pub use elastic::{membership, route_values, ElasticController, ElasticPolicy, ElasticReplica};
pub use fanout::{FanoutCommit, FanoutController, FanoutDirective, SharedFanout};
pub use fluent::StreamOps;
pub use impatient_join::ImpatientJoin;
pub use impute::{ArchivalStore, Impute};
pub use join::{JoinSide, SymmetricHashJoin};
pub use merge::Merge;
pub use pace::Pace;
pub use partition::{PartitionedExt, PartitionedStage};
pub use prioritizer::Prioritizer;
pub use project::Project;
pub use quality_filter::QualityFilter;
pub use select::Select;
pub use shuffle::Shuffle;
pub use sink::{CollectSink, SinkHandle, TimedSink, TimedSinkHandle};
pub use source::{GeneratorSource, VecSource};
pub use split::Split;
pub use thrifty_join::ThriftyJoin;
pub use union::Union;
