//! Symmetric-hash windowed equi-join with Table-2 feedback behaviour.
//!
//! The join buffers tuples from both inputs in per-window hash tables keyed by
//! the join attributes; every arriving tuple probes the opposite table and
//! emits concatenated results immediately (symmetric hash join), which is the
//! standard pipelined join for streams.  Tumbling windows scope the state:
//! tuples join only with tuples of the same window, and embedded punctuation
//! (progress on the timestamp attribute of both inputs) purges completed
//! windows.  An optional *left-outer* mode emits unmatched left tuples padded
//! with nulls when their window closes — the speed-map plan of Figure 1 outer
//! joins fixed-sensor readings with aggregated probe-vehicle readings.
//!
//! Feedback follows Table 2 exactly (see `dsms_feedback::characterize_join`):
//! feedback on join attributes purges both tables, guards both inputs and
//! propagates to both antecedents; feedback on attributes of one input only
//! goes to that side; feedback coupling both sides can only guard the output.

use dsms_engine::{EngineError, EngineResult, Operator, OperatorContext, StateEntry};
use dsms_feedback::{
    characterize_join, AttributeMapping, ExploitAction, FeedbackIntent, FeedbackPunctuation,
    FeedbackRegistry, FeedbackRoles, JoinSpec, PropagationRule,
};
use dsms_punctuation::{Pattern, Punctuation};
use dsms_types::{Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Which input of the join a configuration item refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Input port 0.
    Left,
    /// Input port 1.
    Right,
}

/// One side's buffered tuple with an outer-join match flag.
#[derive(Debug, Clone)]
struct Buffered {
    tuple: Tuple,
    matched: bool,
}

type WindowKey = (i64, Vec<Value>);

/// A tumbling-window symmetric hash equi-join.
pub struct SymmetricHashJoin {
    name: String,
    left_schema: SchemaRef,
    right_schema: SchemaRef,
    output_schema: SchemaRef,
    key_attributes: Vec<String>,
    left_key_indices: Vec<usize>,
    right_key_indices: Vec<usize>,
    /// Indices of right attributes that are *not* join keys (appended to the
    /// left tuple to form the output).
    right_payload_indices: Vec<usize>,
    timestamp_attribute: String,
    /// Indices of the (shared) timestamp attribute per input, resolved once
    /// so per-tuple windowing is a slice access instead of a name lookup.
    left_ts_index: usize,
    right_ts_index: usize,
    window: StreamDuration,
    left_outer: bool,
    left_state: HashMap<WindowKey, Vec<Buffered>>,
    right_state: HashMap<WindowKey, Vec<Buffered>>,
    left_watermark: Option<Timestamp>,
    right_watermark: Option<Timestamp>,
    purged_watermark: Option<Timestamp>,
    spec: JoinSpec,
    output_guards: Vec<Pattern>,
    left_input_guards: Vec<Pattern>,
    right_input_guards: Vec<Pattern>,
    registry: FeedbackRegistry,
}

impl SymmetricHashJoin {
    /// Creates a windowed equi-join of two streams on the named key
    /// attributes (which must exist in both schemas with those names), scoped
    /// by tumbling windows of `window` on `timestamp_attribute` (also present
    /// in both schemas).
    pub fn new(
        name: impl Into<String>,
        left_schema: SchemaRef,
        right_schema: SchemaRef,
        key_attributes: &[&str],
        timestamp_attribute: impl Into<String>,
        window: StreamDuration,
    ) -> dsms_types::TypeResult<Self> {
        let name = name.into();
        let timestamp_attribute = timestamp_attribute.into();
        let left_key_indices: Vec<usize> =
            key_attributes.iter().map(|a| left_schema.index_of(a)).collect::<Result<_, _>>()?;
        let right_key_indices: Vec<usize> =
            key_attributes.iter().map(|a| right_schema.index_of(a)).collect::<Result<_, _>>()?;
        let left_ts_index = left_schema.index_of(&timestamp_attribute)?;
        let right_ts_index = right_schema.index_of(&timestamp_attribute)?;

        // Output schema: every left attribute, then right attributes that are
        // neither join keys nor the (shared) timestamp attribute.
        let mut fields = left_schema.fields().to_vec();
        let mut right_payload_indices = Vec::new();
        for (i, f) in right_schema.fields().iter().enumerate() {
            if key_attributes.contains(&f.name()) || f.name() == timestamp_attribute {
                continue;
            }
            right_payload_indices.push(i);
            let field_name = if left_schema.contains(f.name()) {
                format!("right_{}", f.name())
            } else {
                f.name().to_string()
            };
            fields.push(dsms_types::Field::new(field_name, f.data_type()));
        }
        let output_schema: SchemaRef = Arc::new(Schema::try_new(fields)?);

        // Output partition (L, J, R) for the characterization.
        let mut join_attributes = Vec::new();
        let mut left_attributes = Vec::new();
        let mut right_attributes = Vec::new();
        for (i, f) in output_schema.fields().iter().enumerate() {
            if key_attributes.contains(&f.name()) {
                join_attributes.push(i);
            } else if i < left_schema.arity() {
                left_attributes.push(i);
            } else {
                right_attributes.push(i);
            }
        }
        let left_mapping = AttributeMapping::by_name(output_schema.clone(), left_schema.clone())?;
        // Right attributes may have been renamed with the `right_` prefix, so
        // the right mapping is built from explicit pairs.
        let mut right_pairs: Vec<(String, String)> = Vec::new();
        for key in key_attributes {
            right_pairs.push((key.to_string(), key.to_string()));
        }
        right_pairs.push((timestamp_attribute.clone(), timestamp_attribute.clone()));
        for &i in &right_payload_indices {
            let in_name = right_schema.field(i)?.name().to_string();
            let out_name = if left_schema.contains(&in_name) {
                format!("right_{in_name}")
            } else {
                in_name.clone()
            };
            right_pairs.push((out_name, in_name));
        }
        let right_pairs_ref: Vec<(&str, &str)> =
            right_pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let right_mapping = AttributeMapping::by_pairs(
            output_schema.clone(),
            right_schema.clone(),
            &right_pairs_ref,
        )?;

        let spec = JoinSpec {
            output: output_schema.clone(),
            left: left_schema.clone(),
            right: right_schema.clone(),
            left_attributes,
            join_attributes,
            right_attributes,
            left_mapping,
            right_mapping,
        };

        Ok(SymmetricHashJoin {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            left_schema,
            right_schema,
            output_schema,
            key_attributes: key_attributes.iter().map(|s| s.to_string()).collect(),
            left_key_indices,
            right_key_indices,
            right_payload_indices,
            timestamp_attribute,
            left_ts_index,
            right_ts_index,
            window,
            left_outer: false,
            left_state: HashMap::new(),
            right_state: HashMap::new(),
            left_watermark: None,
            right_watermark: None,
            purged_watermark: None,
            spec,
            output_guards: Vec::new(),
            left_input_guards: Vec::new(),
            right_input_guards: Vec::new(),
        })
    }

    /// Enables left-outer semantics: unmatched left tuples are emitted with
    /// null right attributes when their window closes.
    pub fn left_outer(mut self) -> Self {
        self.left_outer = true;
        self
    }

    /// The output schema.
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }

    /// Number of buffered tuples across both hash tables.
    pub fn buffered(&self) -> usize {
        self.left_state.values().map(Vec::len).sum::<usize>()
            + self.right_state.values().map(Vec::len).sum::<usize>()
    }

    fn key_of(&self, side: JoinSide, tuple: &Tuple) -> Vec<Value> {
        let indices = match side {
            JoinSide::Left => &self.left_key_indices,
            JoinSide::Right => &self.right_key_indices,
        };
        indices.iter().map(|i| tuple.values()[*i].clone()).collect()
    }

    fn output_of(&self, left: &Tuple, right: Option<&Tuple>) -> Tuple {
        let mut values = left.values().to_vec();
        match right {
            Some(r) => {
                for &i in &self.right_payload_indices {
                    values.push(r.values()[i].clone());
                }
            }
            None => {
                values.extend(std::iter::repeat_n(Value::Null, self.right_payload_indices.len()))
            }
        }
        Tuple::new(self.output_schema.clone(), values)
    }

    fn emit_joined(&mut self, left: &Tuple, right: Option<&Tuple>, ctx: &mut OperatorContext) {
        let out = self.output_of(left, right);
        if self.output_guards.iter().any(|p| p.matches(&out)) {
            self.registry.stats_mut().tuples_suppressed += 1;
            return;
        }
        ctx.emit(0, out);
    }

    fn input_guarded(&self, side: JoinSide, tuple: &Tuple) -> bool {
        let guards = match side {
            JoinSide::Left => &self.left_input_guards,
            JoinSide::Right => &self.right_input_guards,
        };
        guards.iter().any(|p| p.matches(tuple))
    }

    fn purge_closed_windows(&mut self, ctx: &mut OperatorContext) {
        let (Some(lw), Some(rw)) = (self.left_watermark, self.right_watermark) else {
            return;
        };
        let watermark = lw.min(rw);
        if self.purged_watermark.map(|p| watermark <= p).unwrap_or(false) {
            return;
        }
        self.purged_watermark = Some(watermark);
        let window_millis = self.window.as_millis();
        let closeable = |wid: i64| {
            Timestamp::from_millis((wid + 1) * window_millis) - StreamDuration::from_millis(1)
                <= watermark
        };
        // Outer join: emit unmatched left tuples of completed windows.
        if self.left_outer {
            let mut unmatched: Vec<Tuple> = Vec::new();
            for ((wid, _), bucket) in self.left_state.iter() {
                if closeable(*wid) {
                    unmatched.extend(bucket.iter().filter(|b| !b.matched).map(|b| b.tuple.clone()));
                }
            }
            for left in unmatched {
                self.emit_joined(&left, None, ctx);
            }
        }
        let before = self.buffered();
        self.left_state.retain(|(wid, _), _| !closeable(*wid));
        self.right_state.retain(|(wid, _), _| !closeable(*wid));
        self.registry.stats_mut().state_purged += (before - self.buffered()) as u64;
        // Forward progress on the shared timestamp attribute.
        if let Ok(p) =
            Punctuation::progress(self.output_schema.clone(), &self.timestamp_attribute, watermark)
        {
            ctx.emit_punctuation(0, p);
        }
    }
}

impl Operator for SymmetricHashJoin {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        Some(if input == 0 { self.left_schema.clone() } else { self.right_schema.clone() })
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.output_schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        2
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let side = if input == 0 { JoinSide::Left } else { JoinSide::Right };
        if self.input_guarded(side, &tuple) {
            self.registry.stats_mut().tuples_suppressed += 1;
            return Ok(());
        }
        let ts = tuple.timestamp_at(match side {
            JoinSide::Left => self.left_ts_index,
            JoinSide::Right => self.right_ts_index,
        })?;
        let wid = ts.window_id(self.window);
        let key = self.key_of(side, &tuple);
        let window_key = (wid, key);

        match side {
            JoinSide::Left => {
                let mut matched = false;
                let mut outputs: Vec<Tuple> = Vec::new();
                if let Some(bucket) = self.right_state.get_mut(&window_key) {
                    for b in bucket.iter_mut() {
                        b.matched = true;
                        matched = true;
                        outputs.push(b.tuple.clone());
                    }
                }
                for right in outputs {
                    self.emit_joined(&tuple, Some(&right), ctx);
                }
                self.left_state.entry(window_key).or_default().push(Buffered { tuple, matched });
            }
            JoinSide::Right => {
                let mut outputs: Vec<Tuple> = Vec::new();
                if let Some(bucket) = self.left_state.get_mut(&window_key) {
                    for b in bucket.iter_mut() {
                        b.matched = true;
                        outputs.push(b.tuple.clone());
                    }
                }
                let matched = !outputs.is_empty();
                for left in outputs {
                    self.emit_joined(&left, Some(&tuple), ctx);
                }
                self.right_state.entry(window_key).or_default().push(Buffered { tuple, matched });
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(w) = punctuation.watermark_for(&self.timestamp_attribute) {
            if input == 0 {
                self.left_watermark = Some(self.left_watermark.map(|cur| cur.max(w)).unwrap_or(w));
            } else {
                self.right_watermark =
                    Some(self.right_watermark.map(|cur| cur.max(w)).unwrap_or(w));
            }
            self.purge_closed_windows(ctx);
        }
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.registry.stats_mut().received.record(feedback.intent());
        if feedback.intent() != FeedbackIntent::Assumed {
            let _ = self.registry.register(feedback);
            return Ok(());
        }
        let characterization = characterize_join(&self.spec, feedback.pattern())?;
        for action in &characterization.actions {
            match action {
                ExploitAction::GuardOutput(pattern) => self.output_guards.push(pattern.clone()),
                ExploitAction::GuardInput { input, pattern } => {
                    if *input == 0 {
                        self.left_input_guards.push(pattern.clone());
                    } else {
                        self.right_input_guards.push(pattern.clone());
                    }
                }
                ExploitAction::PurgeState(_) => {
                    // Purge buffered tuples that can only contribute to joined
                    // results described by the feedback, per side.
                    let (left_rewrite, _) = self.spec.left_mapping.rewrite(feedback.pattern())?;
                    let (right_rewrite, _) = self.spec.right_mapping.rewrite(feedback.pattern())?;
                    let before = self.buffered();
                    // Only purge a side if every constrained output attribute is
                    // visible on that side (otherwise matching is ambiguous).
                    let constrained = feedback.pattern().constrained_attributes();
                    let left_covers = constrained
                        .iter()
                        .all(|i| self.spec.left_mapping.covered_output_attributes().contains(i));
                    let right_covers = constrained
                        .iter()
                        .all(|i| self.spec.right_mapping.covered_output_attributes().contains(i));
                    if left_covers {
                        for bucket in self.left_state.values_mut() {
                            bucket.retain(|b| !left_rewrite.matches(&b.tuple));
                        }
                        self.left_state.retain(|_, bucket| !bucket.is_empty());
                    }
                    if right_covers {
                        for bucket in self.right_state.values_mut() {
                            bucket.retain(|b| !right_rewrite.matches(&b.tuple));
                        }
                        self.right_state.retain(|_, bucket| !bucket.is_empty());
                    }
                    self.registry.stats_mut().state_purged += (before - self.buffered()) as u64;
                }
                ExploitAction::PurgeAndGuardMatchingGroups => {}
            }
        }
        if let PropagationRule::ToInputs(targets) = &characterization.propagation {
            for (input, pattern) in targets {
                ctx.send_feedback(*input, feedback.relay(pattern.clone(), &self.name));
                self.registry.stats_mut().relayed.record(feedback.intent());
            }
        }
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        if self.left_outer {
            let unmatched: Vec<Tuple> = self
                .left_state
                .values()
                .flat_map(|bucket| bucket.iter().filter(|b| !b.matched).map(|b| b.tuple.clone()))
                .collect();
            for left in unmatched {
                self.emit_joined(&left, None, ctx);
            }
        }
        self.left_state.clear();
        self.right_state.clear();
        let _ = (&self.left_schema, &self.right_schema, &self.key_attributes);
        Ok(())
    }

    /// One entry per `(side, window, key)` hash bucket.  The entry key is the
    /// join-key values in key-attribute order — an elastic stage must shuffle
    /// on those same attributes in that order for
    /// [`route_values`](crate::elastic::route_values) to agree with the hash
    /// route.  Buckets move whole (with their outer-join match flags), so no
    /// pairing is lost or duplicated across the cut.  Watermarks are *not*
    /// exported: the importer re-learns progress from the punctuation that
    /// follows the migration marker, which can only delay purging, never
    /// purge early.
    fn export_state(&mut self) -> Vec<StateEntry> {
        let mut entries = Vec::new();
        for (side, state) in [
            (JoinSide::Left, std::mem::take(&mut self.left_state)),
            (JoinSide::Right, std::mem::take(&mut self.right_state)),
        ] {
            for ((wid, key), bucket) in state {
                entries.push(StateEntry { key, payload: Box::new((side, wid, bucket)) });
            }
        }
        entries
    }

    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        for entry in entries {
            let payload =
                entry.payload.downcast::<(JoinSide, i64, Vec<Buffered>)>().map_err(|_| {
                    EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: "imported state entry is not a join hash bucket".into(),
                    }
                })?;
            let (side, wid, bucket) = *payload;
            let state = match side {
                JoinSide::Left => &mut self.left_state,
                JoinSide::Right => &mut self.right_state,
            };
            state.entry((wid, entry.key)).or_default().extend(bucket);
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    fn restartable(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(vec![StateEntry {
            key: Vec::new(),
            payload: Box::new(JoinSnapshot {
                left_state: self.left_state.clone(),
                right_state: self.right_state.clone(),
                left_watermark: self.left_watermark,
                right_watermark: self.right_watermark,
                purged_watermark: self.purged_watermark,
                output_guards: self.output_guards.clone(),
                left_input_guards: self.left_input_guards.clone(),
                right_input_guards: self.right_input_guards.clone(),
                registry: self.registry.clone(),
            }),
        }])
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.left_state = HashMap::new();
        self.right_state = HashMap::new();
        self.left_watermark = None;
        self.right_watermark = None;
        self.purged_watermark = None;
        self.output_guards = Vec::new();
        self.left_input_guards = Vec::new();
        self.right_input_guards = Vec::new();
        self.registry = FeedbackRegistry::new(self.name.clone());
        for entry in entries {
            match entry.payload.downcast::<JoinSnapshot>() {
                Ok(snapshot) => {
                    self.left_state = snapshot.left_state;
                    self.right_state = snapshot.right_state;
                    self.left_watermark = snapshot.left_watermark;
                    self.right_watermark = snapshot.right_watermark;
                    self.purged_watermark = snapshot.purged_watermark;
                    self.output_guards = snapshot.output_guards;
                    self.left_input_guards = snapshot.left_input_guards;
                    self.right_input_guards = snapshot.right_input_guards;
                    self.registry = snapshot.registry;
                }
                Err(_) => {
                    return Err(EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: "checkpoint entry is not a join snapshot".into(),
                    })
                }
            }
        }
        Ok(())
    }
}

/// Both hash-table sides, the watermark pair, and the guard state captured
/// together at a checkpoint so a restarted [`SymmetricHashJoin`] resumes
/// with exactly the windows that were open at the epoch boundary.
struct JoinSnapshot {
    left_state: HashMap<WindowKey, Vec<Buffered>>,
    right_state: HashMap<WindowKey, Vec<Buffered>>,
    left_watermark: Option<Timestamp>,
    right_watermark: Option<Timestamp>,
    purged_watermark: Option<Timestamp>,
    output_guards: Vec<Pattern>,
    left_input_guards: Vec<Pattern>,
    right_input_guards: Vec<Pattern>,
    registry: FeedbackRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::PatternItem;
    use dsms_types::DataType;

    fn sensor_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn probe_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("avg", DataType::Float),
        ])
    }

    fn sensor(ts: i64, seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            sensor_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
        )
    }

    fn probe(ts: i64, seg: i64, avg: f64) -> Tuple {
        Tuple::new(
            probe_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(avg)],
        )
    }

    fn join() -> SymmetricHashJoin {
        SymmetricHashJoin::new(
            "JOIN",
            sensor_schema(),
            probe_schema(),
            &["segment"],
            "timestamp",
            StreamDuration::from_secs(60),
        )
        .unwrap()
    }

    fn emitted_tuples(ctx: &mut OperatorContext) -> Vec<Tuple> {
        ctx.take_emitted()
            .into_iter()
            .filter_map(|(_, item)| match item {
                StreamItem::Tuple(t) => Some(t),
                StreamItem::Punctuation(_) => None,
            })
            .collect()
    }

    #[test]
    fn output_schema_partitions_left_join_right() {
        let j = join();
        assert_eq!(j.output_schema().names(), vec!["timestamp", "segment", "speed", "avg"]);
    }

    #[test]
    fn matching_tuples_in_the_same_window_join() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        assert!(emitted_tuples(&mut ctx).is_empty(), "no probe side yet");
        j.on_tuple(1, probe(20, 3, 38.0), &mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].float("speed").unwrap(), 42.0);
        assert_eq!(out[0].float("avg").unwrap(), 38.0);
    }

    #[test]
    fn different_windows_or_keys_do_not_join() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(70, 3, 38.0), &mut ctx).unwrap(); // next window
        j.on_tuple(1, probe(20, 4, 38.0), &mut ctx).unwrap(); // other segment
        assert!(emitted_tuples(&mut ctx).is_empty());
        assert_eq!(j.buffered(), 3);
    }

    #[test]
    fn punctuation_purges_completed_windows() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(20, 3, 38.0), &mut ctx).unwrap();
        assert_eq!(j.buffered(), 2);
        let p = |s| {
            Punctuation::progress(sensor_schema(), "timestamp", Timestamp::from_secs(s)).unwrap()
        };
        j.on_punctuation(0, p(100), &mut ctx).unwrap();
        assert_eq!(j.buffered(), 2, "waiting for the other input's watermark");
        j.on_punctuation(1, p(100), &mut ctx).unwrap();
        assert_eq!(j.buffered(), 0, "window 0 purged once both inputs passed it");
    }

    #[test]
    fn left_outer_join_emits_unmatched_sensors() {
        let mut j = join().left_outer();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        j.on_tuple(0, sensor(11, 4, 55.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(20, 3, 38.0), &mut ctx).unwrap();
        let _ = emitted_tuples(&mut ctx);
        j.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1, "only the unmatched segment-4 sensor padded with nulls");
        assert_eq!(out[0].int("segment").unwrap(), 4);
        assert!(out[0].value_by_name("avg").unwrap().is_null());
    }

    #[test]
    fn join_key_feedback_purges_both_sides_and_propagates_to_both() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(12, 3, 30.0), &mut ctx).unwrap();
        j.on_tuple(0, sensor(10, 4, 50.0), &mut ctx).unwrap();
        let _ = emitted_tuples(&mut ctx);
        assert_eq!(j.buffered(), 3);

        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                j.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "MAP",
        );
        j.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(j.buffered(), 1, "segment-3 tuples purged from both hash tables");
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 2, "propagated to both inputs");
        // Guarded: new segment-3 tuples are ignored on both inputs.
        j.on_tuple(0, sensor(15, 3, 99.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(15, 3, 99.0), &mut ctx).unwrap();
        assert_eq!(j.buffered(), 1);
        assert!(emitted_tuples(&mut ctx).is_empty());
    }

    #[test]
    fn left_only_feedback_touches_only_the_left_side() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3, 60.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(10, 4, 20.0), &mut ctx).unwrap();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                j.output_schema().clone(),
                &[("speed", PatternItem::Ge(Value::Float(50.0)))],
            )
            .unwrap(),
            "MAP",
        );
        j.on_feedback(0, fb, &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1);
        assert_eq!(relayed[0].0, 0, "relayed to the left input only");
        assert_eq!(j.buffered(), 1, "fast sensor purged, probe tuple untouched");
    }

    #[test]
    fn state_export_import_round_trips_hash_buckets() {
        let mut source = join().left_outer();
        let mut ctx = OperatorContext::new();
        source.on_tuple(0, sensor(10, 3, 42.0), &mut ctx).unwrap();
        source.on_tuple(0, sensor(11, 4, 55.0), &mut ctx).unwrap();
        source.on_tuple(1, probe(20, 3, 38.0), &mut ctx).unwrap();
        let _ = emitted_tuples(&mut ctx);
        let entries = source.export_state();
        assert_eq!(entries.len(), 3, "one entry per (side, window, key) bucket");
        assert_eq!(source.buffered(), 0, "export drains both hash tables");

        let mut target = join().left_outer();
        target.import_state(entries).unwrap();
        assert_eq!(target.buffered(), 3);
        // The segment-3 pair is already matched (flags moved with the bucket),
        // so only the unmatched segment-4 sensor pads out at flush.
        target.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("segment").unwrap(), 4);
        assert!(out[0].value_by_name("avg").unwrap().is_null());
    }

    #[test]
    fn cross_side_feedback_only_guards_output() {
        let mut j = join();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                j.output_schema().clone(),
                &[
                    ("speed", PatternItem::Ge(Value::Float(50.0))),
                    ("avg", PatternItem::Ge(Value::Float(50.0))),
                ],
            )
            .unwrap(),
            "MAP",
        );
        j.on_feedback(0, fb, &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "no safe propagation");
        // A result matching both constraints is suppressed…
        j.on_tuple(0, sensor(10, 3, 60.0), &mut ctx).unwrap();
        j.on_tuple(1, probe(12, 3, 70.0), &mut ctx).unwrap();
        assert!(emitted_tuples(&mut ctx).is_empty());
        // …but a result matching only one side still appears.
        j.on_tuple(1, probe(13, 3, 10.0), &mut ctx).unwrap();
        assert_eq!(emitted_tuples(&mut ctx).len(), 1);
    }
}
