//! THRIFTY JOIN: an adaptive feedback producer (paper Section 3.3).
//!
//! When punctuation on the probe input shows that a window is complete *and
//! empty*, no tuple of the other input can join in that window, so the join
//! sends assumed feedback to the build input: "tuples of that window are
//! useless".  Antecedent operators on the build side can then stop producing
//! (cleaning, aggregating) tuples for the useless window.
//!
//! The implementation wraps [`SymmetricHashJoin`], adding per-window presence
//! tracking on the probe (right) input and feedback production when a window
//! closes empty.

use crate::join::SymmetricHashJoin;
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles, FeedbackStats};
use dsms_punctuation::{Pattern, PatternItem, Punctuation};
use dsms_types::{SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use std::collections::HashSet;

/// A symmetric hash join that tells its build input about empty probe windows.
pub struct ThriftyJoin {
    name: String,
    inner: SymmetricHashJoin,
    left_schema: SchemaRef,
    timestamp_attribute: String,
    window: StreamDuration,
    /// Window ids in which at least one probe (right) tuple was seen.
    probe_windows_seen: HashSet<i64>,
    /// Highest probe window already checked for emptiness.
    checked_up_to: Option<i64>,
    feedback_issued: u64,
}

impl ThriftyJoin {
    /// Wraps a join; the window and timestamp attribute must match the inner
    /// join's configuration (pass the same values used to build it).
    pub fn new(
        name: impl Into<String>,
        inner: SymmetricHashJoin,
        left_schema: SchemaRef,
        timestamp_attribute: impl Into<String>,
        window: StreamDuration,
    ) -> Self {
        ThriftyJoin {
            name: name.into(),
            inner,
            left_schema,
            timestamp_attribute: timestamp_attribute.into(),
            window,
            probe_windows_seen: HashSet::new(),
            checked_up_to: None,
            feedback_issued: 0,
        }
    }

    /// Number of empty-window feedback messages issued.
    pub fn feedback_issued(&self) -> u64 {
        self.feedback_issued
    }

    fn empty_window_feedback(&self, window_id: i64) -> dsms_types::TypeResult<FeedbackPunctuation> {
        let start = Timestamp::from_millis(window_id * self.window.as_millis());
        let end = Timestamp::from_millis((window_id + 1) * self.window.as_millis())
            - StreamDuration::from_millis(1);
        let pattern = Pattern::for_attributes(
            self.left_schema.clone(),
            &[(
                self.timestamp_attribute.as_str(),
                PatternItem::Between(Value::Timestamp(start), Value::Timestamp(end)),
            )],
        )?;
        Ok(FeedbackPunctuation::assumed(pattern, &self.name))
    }
}

impl Operator for ThriftyJoin {
    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles().with_producer()
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        self.inner.schema_out(output)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        2
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if input == 1 {
            if let Ok(ts) = tuple.timestamp(&self.timestamp_attribute) {
                self.probe_windows_seen.insert(ts.window_id(self.window));
            }
        }
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Probe-side progress: every window fully below the watermark that saw
        // no probe tuples is empty → issue feedback toward the build input.
        if input == 1 {
            if let Some(w) = punctuation.watermark_for(&self.timestamp_attribute) {
                let complete_up_to = w.window_id(self.window) - 1;
                let start = self.checked_up_to.map(|c| c + 1).unwrap_or(0);
                for wid in start..=complete_up_to {
                    if !self.probe_windows_seen.contains(&wid) {
                        let feedback = self.empty_window_feedback(wid)?;
                        self.feedback_issued += 1;
                        ctx.send_feedback(0, feedback);
                    }
                }
                if complete_up_to >= start {
                    self.checked_up_to = Some(complete_up_to);
                }
            }
        }
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_flush(ctx)
    }

    fn feedback_stats(&self) -> Option<FeedbackStats> {
        let mut stats = self.inner.feedback_stats().unwrap_or_default();
        stats.issued.assumed += self.feedback_issued;
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema};

    fn sensor_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn probe_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("avg", DataType::Float),
        ])
    }

    fn sensor(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            sensor_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(50.0)],
        )
    }

    fn probe(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            probe_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(40.0)],
        )
    }

    fn thrifty() -> ThriftyJoin {
        let inner = SymmetricHashJoin::new(
            "JOIN",
            sensor_schema(),
            probe_schema(),
            &["segment"],
            "timestamp",
            StreamDuration::from_secs(60),
        )
        .unwrap();
        ThriftyJoin::new(
            "THRIFTY-JOIN",
            inner,
            sensor_schema(),
            "timestamp",
            StreamDuration::from_secs(60),
        )
    }

    fn probe_progress(secs: i64) -> Punctuation {
        Punctuation::progress(probe_schema(), "timestamp", Timestamp::from_secs(secs)).unwrap()
    }

    #[test]
    fn empty_probe_windows_trigger_feedback_to_the_build_side() {
        let mut j = thrifty();
        let mut ctx = OperatorContext::new();
        // Probe data only in window 0 and window 2; window 1 (60–119 s) is empty.
        j.on_tuple(1, probe(10, 3), &mut ctx).unwrap();
        j.on_tuple(1, probe(130, 3), &mut ctx).unwrap();
        j.on_punctuation(1, probe_progress(180), &mut ctx).unwrap();
        let feedback = ctx.take_feedback();
        assert_eq!(j.feedback_issued(), 1);
        assert_eq!(feedback.len(), 1);
        assert_eq!(feedback[0].0, 0, "feedback goes to the sensor (build) input");
        assert!(feedback[0].1.describes(&sensor(70, 1)), "window-1 sensor tuples are described");
        assert!(!feedback[0].1.describes(&sensor(10, 1)));
    }

    #[test]
    fn windows_with_probe_data_do_not_trigger_feedback() {
        let mut j = thrifty();
        let mut ctx = OperatorContext::new();
        j.on_tuple(1, probe(10, 3), &mut ctx).unwrap();
        j.on_tuple(1, probe(70, 3), &mut ctx).unwrap();
        j.on_punctuation(1, probe_progress(120), &mut ctx).unwrap();
        assert_eq!(j.feedback_issued(), 0);
        assert!(ctx.take_feedback().is_empty());
    }

    #[test]
    fn each_empty_window_is_reported_once() {
        let mut j = thrifty();
        let mut ctx = OperatorContext::new();
        j.on_punctuation(1, probe_progress(120), &mut ctx).unwrap(); // windows 0 and 1 empty
        assert_eq!(j.feedback_issued(), 2);
        j.on_punctuation(1, probe_progress(125), &mut ctx).unwrap(); // nothing new completed
        assert_eq!(j.feedback_issued(), 2);
        j.on_punctuation(1, probe_progress(185), &mut ctx).unwrap(); // window 2 also empty
        assert_eq!(j.feedback_issued(), 3);
    }

    #[test]
    fn join_semantics_are_preserved() {
        let mut j = thrifty();
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, sensor(10, 3), &mut ctx).unwrap();
        j.on_tuple(1, probe(20, 3), &mut ctx).unwrap();
        let emitted: Vec<_> = ctx
            .take_emitted()
            .into_iter()
            .filter(|(_, item)| matches!(item, dsms_engine::StreamItem::Tuple(_)))
            .collect();
        assert_eq!(emitted.len(), 1);
    }
}
