//! Shared helpers for operators.

use dsms_engine::{EngineResult, Operator, OperatorContext, SourceState};
use dsms_types::{Timestamp, Tuple};
use std::time::{Duration, Instant};

/// A predicate over tuples, usable as a select condition or a split condition.
///
/// Closures are boxed so operators stay object-safe and `Send`.
pub struct TuplePredicate {
    description: String,
    f: Box<dyn Fn(&Tuple) -> bool + Send>,
}

impl TuplePredicate {
    /// Wraps a closure with a human-readable description (used in operator
    /// names and error messages).
    pub fn new(
        description: impl Into<String>,
        f: impl Fn(&Tuple) -> bool + Send + 'static,
    ) -> Self {
        TuplePredicate { description: description.into(), f: Box::new(f) }
    }

    /// A predicate that accepts every tuple.
    pub fn always() -> Self {
        TuplePredicate::new("true", |_| true)
    }

    /// Evaluates the predicate.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        (self.f)(tuple)
    }

    /// The description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl std::fmt::Debug for TuplePredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TuplePredicate({})", self.description)
    }
}

/// Spins for (at least) the given duration, simulating per-tuple processing
/// cost — used by IMPUTE's archival lookup and the data-quality filter.
/// A spin loop is used instead of `thread::sleep` because the interesting
/// costs are in the tens of microseconds to low milliseconds, where sleep
/// granularity and scheduler wake-up latency would distort the experiments.
pub fn simulate_cost(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < cost {
        std::hint::spin_loop();
    }
}

/// Combined progress-watermark tracker for N-input merge-style operators
/// (UNION, the partition fan-in MERGE): a subset of the merged *output* is
/// complete only once **every** input has declared it complete, so the
/// combined watermark is the minimum of the per-input watermarks, emitted
/// only when it advances.
///
/// Indexing is deliberately direct (panics on an out-of-range input):
/// executors only deliver punctuation on connected ports, and silently
/// folding a bad port onto another slot would corrupt the minimum.
#[derive(Debug, Clone)]
pub struct MinWatermark {
    watermarks: Vec<Option<Timestamp>>,
    /// Inputs participating in the minimum.  All-true by default; an elastic
    /// merge deactivates the slots of dormant replicas so their (absent or
    /// stale) watermarks cannot hold the combined minimum back.
    active: Vec<bool>,
    emitted: Option<Timestamp>,
}

impl MinWatermark {
    /// Creates a tracker over `inputs` input ports, all active.
    pub fn new(inputs: usize) -> Self {
        MinWatermark { watermarks: vec![None; inputs], active: vec![true; inputs], emitted: None }
    }

    /// Records watermark `w` observed on `input` and returns the new
    /// combined minimum iff it advanced past the last returned value (a
    /// per-input regression is ignored; the combined minimum never moves
    /// backwards).  Observations on inactive inputs are recorded but do not
    /// contribute to the minimum until the input is reactivated.
    pub fn observe(&mut self, input: usize, w: Timestamp) -> Option<Timestamp> {
        let slot = &mut self.watermarks[input];
        *slot = Some(slot.map(|cur| cur.max(w)).unwrap_or(w));
        if !self.active[input] {
            return None;
        }
        self.advance()
    }

    /// Switches which inputs participate in the combined minimum (elastic
    /// membership change at a migration boundary).  A newly *activated* input
    /// is seeded with the current combined minimum — it owes progress only
    /// from the cut onwards, so its empty (or stale) slot must not drag the
    /// minimum back.  Returns the new combined minimum if the change itself
    /// advanced it (e.g. scale-in deactivating the slowest input).
    ///
    /// Inputs beyond `flags.len()` are deactivated.
    pub fn set_active(&mut self, flags: &[bool]) -> Option<Timestamp> {
        let seed = self.emitted;
        for (slot, mark) in self.watermarks.iter_mut().enumerate() {
            let was = self.active[slot];
            let now = flags.get(slot).copied().unwrap_or(false);
            self.active[slot] = now;
            if now && !was {
                if let Some(seed) = seed {
                    *mark = Some(mark.map(|cur| cur.max(seed)).unwrap_or(seed));
                }
            }
        }
        self.advance()
    }

    /// Emits the combined minimum iff it advanced past the last emission.
    fn advance(&mut self) -> Option<Timestamp> {
        let combined = self.combined()?;
        match self.emitted {
            Some(prev) if combined <= prev => None,
            _ => {
                self.emitted = Some(combined);
                Some(combined)
            }
        }
    }

    /// The minimum across all *active* inputs, once each has punctuated.
    /// `None` while any active input is silent, or if none is active.
    pub fn combined(&self) -> Option<Timestamp> {
        let mut min: Option<Timestamp> = None;
        for (mark, active) in self.watermarks.iter().zip(&self.active) {
            if !active {
                continue;
            }
            match mark {
                None => return None,
                Some(w) => min = Some(min.map(|m| m.min(*w)).unwrap_or(*w)),
            }
        }
        min
    }
}

/// Wraps an operator, charging a simulated per-tuple cost before each
/// [`Operator::on_tuple`] — the knob the paper's experiments use to model
/// expensive operators (archival lookups, imputation) without real I/O.
///
/// Two cost models are provided:
///
/// * [`Costed::spinning`] — busy-waits ([`simulate_cost`]), modelling CPU
///   work.  Replicating a spinning operator only scales with physical cores.
/// * [`Costed::blocking_io`] — sleeps, modelling blocking I/O such as the
///   archive fetches of the imputation plan.  Replicas blocked on I/O
///   overlap their waits, so a partitioned stage of blocking operators
///   scales with the number of replicas even on a single core — the
///   scenario the `partition_scaling` bench measures.
///
/// The wrapper intentionally routes pages through the default per-item
/// [`Operator::on_page`] unpacking so the cost is charged per tuple; an
/// inner operator's batched `on_page` fast path is bypassed.
pub struct Costed<O> {
    inner: O,
    cost: Duration,
    blocking: bool,
}

impl<O: Operator> Costed<O> {
    /// Charges `cost` per tuple as spinning CPU work.
    pub fn spinning(inner: O, cost: Duration) -> Self {
        Costed { inner, cost, blocking: false }
    }

    /// Charges `cost` per tuple as blocking I/O (a sleep).
    pub fn blocking_io(inner: O, cost: Duration) -> Self {
        Costed { inner, cost, blocking: true }
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn charge(&self) {
        if self.blocking {
            if !self.cost.is_zero() {
                std::thread::sleep(self.cost);
            }
        } else {
            simulate_cost(self.cost);
        }
    }
}

impl<O: Operator> Operator for Costed<O> {
    fn feedback_roles(&self) -> dsms_feedback::FeedbackRoles {
        self.inner.feedback_roles()
    }

    fn schema_in(&self, input: usize) -> Option<dsms_types::SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<dsms_types::SchemaRef> {
        self.inner.schema_out(output)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn must_connect_all_outputs(&self) -> bool {
        self.inner.must_connect_all_outputs()
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.charge();
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: dsms_punctuation::Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: dsms_feedback::FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_request_results(output, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_flush(ctx)
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        self.inner.poll_source(ctx)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        self.inner.feedback_stats()
    }

    fn export_state(&mut self) -> Vec<dsms_engine::StateEntry> {
        self.inner.export_state()
    }

    fn import_state(&mut self, entries: Vec<dsms_engine::StateEntry>) -> EngineResult<()> {
        self.inner.import_state(entries)
    }

    fn elastic_stats(&self) -> Option<dsms_engine::ElasticStats> {
        self.inner.elastic_stats()
    }

    fn restartable(&self) -> bool {
        self.inner.restartable()
    }

    fn checkpoint(&self) -> EngineResult<Vec<dsms_engine::StateEntry>> {
        self.inner.checkpoint()
    }

    fn restore(&mut self, entries: Vec<dsms_engine::StateEntry>) -> EngineResult<()> {
        self.inner.restore(entries)
    }

    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        self.inner.absorb_shutdown(output, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Value};

    #[test]
    fn predicate_evaluates_and_describes() {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        let p = TuplePredicate::new("v > 5", |t| t.int("v").unwrap_or(0) > 5);
        assert!(p.eval(&Tuple::new(schema.clone(), vec![Value::Int(6)])));
        assert!(!p.eval(&Tuple::new(schema.clone(), vec![Value::Int(5)])));
        assert_eq!(p.description(), "v > 5");
        assert!(TuplePredicate::always().eval(&Tuple::new(schema, vec![Value::Int(0)])));
        assert!(format!("{p:?}").contains("v > 5"));
    }

    #[test]
    fn min_watermark_emits_the_advancing_minimum() {
        let mut tracker = MinWatermark::new(3);
        let ts = Timestamp::from_secs;
        assert_eq!(tracker.observe(0, ts(100)), None, "inputs 1 and 2 have not punctuated");
        assert_eq!(tracker.combined(), None);
        assert_eq!(tracker.observe(1, ts(80)), None);
        assert_eq!(tracker.observe(2, ts(90)), Some(ts(80)), "all inputs in: min emitted");
        // A per-input regression is absorbed; the combined minimum holds.
        assert_eq!(tracker.observe(1, ts(70)), None);
        assert_eq!(tracker.combined(), Some(ts(80)));
        // The minimum only re-emits when it advances.
        assert_eq!(tracker.observe(1, ts(85)), Some(ts(85)));
        assert_eq!(tracker.observe(1, ts(200)), Some(ts(90)), "next-slowest input caps the min");
    }

    #[test]
    fn inactive_inputs_do_not_hold_the_minimum_back() {
        let mut tracker = MinWatermark::new(4);
        let ts = Timestamp::from_secs;
        // Only inputs 0 and 1 active: the pair alone determines the minimum.
        assert_eq!(tracker.set_active(&[true, true, false, false]), None);
        assert_eq!(tracker.observe(0, ts(50)), None);
        assert_eq!(tracker.observe(1, ts(40)), Some(ts(40)), "silent dormant slots ignored");
        // A dormant input's observation is recorded but emits nothing.
        assert_eq!(tracker.observe(2, ts(10)), None);
        assert_eq!(tracker.combined(), Some(ts(40)));
    }

    #[test]
    fn activation_seeds_the_new_input_with_the_current_minimum() {
        let mut tracker = MinWatermark::new(3);
        let ts = Timestamp::from_secs;
        tracker.set_active(&[true, true, false]);
        tracker.observe(0, ts(100));
        assert_eq!(tracker.observe(1, ts(90)), Some(ts(90)));
        // Scale-out: input 2 joins with no watermark of its own.  Seeded at
        // the cut (90), it cannot drag the minimum back to "unknown".
        assert_eq!(tracker.set_active(&[true, true, true]), None);
        assert_eq!(tracker.combined(), Some(ts(90)));
        assert_eq!(tracker.observe(2, ts(95)), None, "input 1 still caps the min");
        assert_eq!(tracker.observe(1, ts(120)), Some(ts(95)));
    }

    #[test]
    fn deactivating_the_slowest_input_advances_the_minimum() {
        let mut tracker = MinWatermark::new(3);
        let ts = Timestamp::from_secs;
        tracker.observe(0, ts(100));
        tracker.observe(1, ts(30));
        assert_eq!(tracker.observe(2, ts(80)), Some(ts(30)));
        // Scale-in retires the straggler: the minimum jumps forward.
        assert_eq!(tracker.set_active(&[true, false, true]), Some(ts(80)));
    }

    #[test]
    fn costed_wrapper_delegates_and_charges() {
        struct Pass;
        impl Operator for Pass {
            fn name(&self) -> &str {
                "pass"
            }
            fn inputs(&self) -> usize {
                1
            }
            fn on_tuple(
                &mut self,
                _i: usize,
                t: Tuple,
                ctx: &mut OperatorContext,
            ) -> EngineResult<()> {
                ctx.emit(0, t);
                Ok(())
            }
        }

        let schema = Schema::shared(&[("v", DataType::Int)]);
        let mut ctx = OperatorContext::new();
        for costed in [
            Costed::spinning(Pass, Duration::from_micros(100)),
            Costed::blocking_io(Pass, Duration::from_micros(100)),
        ] {
            let mut costed = costed;
            assert_eq!(costed.name(), "pass");
            assert_eq!(costed.inputs(), 1);
            assert_eq!(costed.outputs(), 1);
            assert!(!costed.must_connect_all_outputs());
            assert!(costed.feedback_stats().is_none());
            let start = Instant::now();
            costed.on_tuple(0, Tuple::new(schema.clone(), vec![Value::Int(1)]), &mut ctx).unwrap();
            assert!(start.elapsed() >= Duration::from_micros(100), "cost charged");
            assert_eq!(ctx.take_emitted().len(), 1, "tuple delegated to the inner operator");
            costed.on_flush(&mut ctx).unwrap();
            assert_eq!(
                costed.poll_source(&mut ctx).unwrap(),
                SourceState::NotASource,
                "delegated default"
            );
            let _ = costed.inner();
        }
    }

    #[test]
    fn simulate_cost_spins_for_at_least_the_duration() {
        let start = Instant::now();
        simulate_cost(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
        // zero cost returns immediately
        simulate_cost(Duration::ZERO);
    }
}
