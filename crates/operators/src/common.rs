//! Shared helpers for operators.

use dsms_types::Tuple;
use std::time::{Duration, Instant};

/// A predicate over tuples, usable as a select condition or a split condition.
///
/// Closures are boxed so operators stay object-safe and `Send`.
pub struct TuplePredicate {
    description: String,
    f: Box<dyn Fn(&Tuple) -> bool + Send>,
}

impl TuplePredicate {
    /// Wraps a closure with a human-readable description (used in operator
    /// names and error messages).
    pub fn new(
        description: impl Into<String>,
        f: impl Fn(&Tuple) -> bool + Send + 'static,
    ) -> Self {
        TuplePredicate { description: description.into(), f: Box::new(f) }
    }

    /// A predicate that accepts every tuple.
    pub fn always() -> Self {
        TuplePredicate::new("true", |_| true)
    }

    /// Evaluates the predicate.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        (self.f)(tuple)
    }

    /// The description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl std::fmt::Debug for TuplePredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TuplePredicate({})", self.description)
    }
}

/// Spins for (at least) the given duration, simulating per-tuple processing
/// cost — used by IMPUTE's archival lookup and the data-quality filter.
/// A spin loop is used instead of `thread::sleep` because the interesting
/// costs are in the tens of microseconds to low milliseconds, where sleep
/// granularity and scheduler wake-up latency would distort the experiments.
pub fn simulate_cost(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < cost {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Value};

    #[test]
    fn predicate_evaluates_and_describes() {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        let p = TuplePredicate::new("v > 5", |t| t.int("v").unwrap_or(0) > 5);
        assert!(p.eval(&Tuple::new(schema.clone(), vec![Value::Int(6)])));
        assert!(!p.eval(&Tuple::new(schema.clone(), vec![Value::Int(5)])));
        assert_eq!(p.description(), "v > 5");
        assert!(TuplePredicate::always().eval(&Tuple::new(schema, vec![Value::Int(0)])));
        assert!(format!("{p:?}").contains("v > 5"));
    }

    #[test]
    fn simulate_cost_spins_for_at_least_the_duration() {
        let start = Instant::now();
        simulate_cost(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
        // zero cost returns immediately
        simulate_cost(Duration::ZERO);
    }
}
