//! SELECT (σ): stateless filtering.
//!
//! The paper singles SELECT out as the easiest operator to make feedback
//! aware: it maintains no internal state, so an assumed punctuation "can
//! simply be added to its select condition" (Section 4.3).  That is exactly
//! what this implementation does — incoming assumed patterns become negative
//! conjuncts of the condition — and because the input and output schemas are
//! identical, safe propagation is the identity rewrite.

use crate::common::TuplePredicate;
use dsms_engine::{
    EngineError, EngineResult, Operator, OperatorContext, Page, StateEntry, StreamItem,
};
use dsms_feedback::{
    characterize_select, BatchGuardDecision, FeedbackIntent, FeedbackPunctuation, FeedbackRegistry,
    FeedbackRoles, GuardDecision,
};
use dsms_types::{SchemaRef, Tuple};

/// A stateless selection with a feedback-extensible condition.
pub struct Select {
    name: String,
    schema: SchemaRef,
    predicate: TuplePredicate,
    registry: FeedbackRegistry,
    relay: bool,
}

impl Select {
    /// Creates a selection over `schema` keeping tuples for which `predicate`
    /// holds.
    pub fn new(name: impl Into<String>, schema: SchemaRef, predicate: TuplePredicate) -> Self {
        let name = name.into();
        Select {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            predicate,
            relay: true,
        }
    }

    /// Disables relaying feedback to the antecedent (exploit locally only).
    pub fn without_relay(mut self) -> Self {
        self.relay = false;
        self
    }

    /// The stream schema (input and output are identical).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Operator for Select {
    fn feedback_roles(&self) -> FeedbackRoles {
        if self.relay {
            FeedbackRoles::exploiter().with_relayer()
        } else {
            FeedbackRoles::exploiter()
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Assumed feedback acts as an additional (negated) conjunct.
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        if self.predicate.eval(&tuple) {
            ctx.emit(0, tuple);
        }
        Ok(())
    }

    /// Columnar kernel: classifies the whole page against the feedback
    /// guards via the page's column summaries, then evaluates the predicate
    /// over the row lane in one tight loop.
    ///
    /// * [`BatchGuardDecision::SuppressAll`] — skip every row wholesale
    ///   (punctuation still flows).
    /// * [`BatchGuardDecision::PassAll`] — evaluate only the select
    ///   predicate; no per-tuple guard probes run.
    /// * [`BatchGuardDecision::Mixed`] — fall back to the exact per-tuple
    ///   path.
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, Page, StreamItem};
    /// use dsms_feedback::FeedbackPunctuation;
    /// use dsms_operators::{Select, TuplePredicate};
    /// use dsms_punctuation::{Pattern, PatternItem};
    /// use dsms_types::{DataType, Schema, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("segment", DataType::Int)]);
    /// let mut select = Select::new("keep", schema.clone(), TuplePredicate::always());
    /// let mut ctx = OperatorContext::new();
    /// let covered = Pattern::for_attributes(
    ///     schema.clone(),
    ///     &[("segment", PatternItem::Eq(Value::Int(3)))],
    /// )
    /// .unwrap();
    /// select.on_feedback(0, FeedbackPunctuation::assumed(covered, "sink"), &mut ctx).unwrap();
    ///
    /// let row = |seg| StreamItem::Tuple(Tuple::new(schema.clone(), vec![Value::Int(seg)]));
    /// // Column summaries prove this page is entirely assumed away …
    /// select.on_page(0, Page::from_items(vec![row(3), row(3)]), &mut ctx).unwrap();
    /// assert_eq!(ctx.take_emitted().len(), 0);
    /// // … and this one entirely clear — both decided without per-tuple probes.
    /// select.on_page(0, Page::from_items(vec![row(5), row(6)]), &mut ctx).unwrap();
    /// assert_eq!(ctx.take_emitted().len(), 2);
    /// assert_eq!(select.feedback_stats().unwrap().batches_summary_conclusive, 2);
    /// ```
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        let decision = self.registry.decide_batch(page.tuple_count(), |c| page.column_summary(c));
        match decision {
            BatchGuardDecision::SuppressAll => {
                for item in page {
                    if let StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
            }
            BatchGuardDecision::PassAll => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => {
                            if self.predicate.eval(&tuple) {
                                ctx.emit(0, tuple);
                            }
                        }
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
            BatchGuardDecision::Mixed => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // The characterization confirms the response (guard + propagate); it is
        // computed so that debug assertions and tests can validate it, and to
        // mirror how a NiagaraST operator would consult its characterization.
        let characterization = characterize_select(&self.schema, feedback.pattern())?;
        debug_assert!(
            characterization.is_null() || characterization.guards_input(),
            "select characterization must guard its input"
        );
        if feedback.intent() == FeedbackIntent::Assumed && self.relay && !characterization.is_null()
        {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
            self.registry.stats_mut().relayed.record(feedback.intent());
        }
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    /// SELECT's only mutable state is its feedback registry, which the
    /// snapshot captures wholesale — a restored SELECT keeps every guard it
    /// had at the checkpoint.
    fn restartable(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(vec![StateEntry { key: Vec::new(), payload: Box::new(self.registry.clone()) }])
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.registry = FeedbackRegistry::new(self.name.clone());
        for entry in entries {
            match entry.payload.downcast::<FeedbackRegistry>() {
                Ok(registry) => self.registry = *registry,
                Err(_) => {
                    return Err(EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: "checkpoint entry is not a select registry snapshot".into(),
                    })
                }
            }
        }
        Ok(())
    }

    /// SELECT is dedupe-able: its behaviour is fully determined by its name,
    /// schema, predicate *description*, and relay flag.  The description
    /// stands in for the closure (closures cannot be compared), so two
    /// selections claiming the same description must implement the same
    /// condition — the usual contract for [`TuplePredicate::new`] callers.
    fn fingerprint(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut hasher = dsms_types::FixedHasher::new();
        "select".hash(&mut hasher);
        self.name.hash(&mut hasher);
        self.predicate.description().hash(&mut hasher);
        self.relay.hash(&mut hasher);
        for name in self.schema.names() {
            name.hash(&mut hasher);
        }
        Some(hasher.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg), Value::Float(speed)],
        )
    }

    fn fast_only() -> Select {
        Select::new(
            "fast",
            schema(),
            TuplePredicate::new("speed >= 45", |t| t.float("speed").unwrap_or(0.0) >= 45.0),
        )
    }

    #[test]
    fn select_filters_by_predicate() {
        let mut op = fast_only();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1, 60.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(1, 30.0), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn assumed_feedback_extends_the_condition_and_is_relayed() {
        let mut op = fast_only();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(ctx.take_feedback().len(), 1, "select relays assumed feedback");

        op.on_tuple(0, tuple(3, 60.0), &mut ctx).unwrap(); // suppressed by feedback
        op.on_tuple(0, tuple(4, 60.0), &mut ctx).unwrap(); // passes
        op.on_tuple(0, tuple(4, 10.0), &mut ctx).unwrap(); // fails original predicate
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        assert_eq!(op.feedback_stats().unwrap().tuples_suppressed, 1);
    }

    #[test]
    fn on_page_batch_matches_per_tuple_behaviour() {
        use dsms_punctuation::Punctuation;
        let mut op = fast_only();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        ctx.take_feedback();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(3, 60.0)), // suppressed by feedback
            StreamItem::Tuple(tuple(4, 60.0)), // passes
            StreamItem::Tuple(tuple(4, 10.0)), // fails predicate
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            ),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2, "one surviving tuple + forwarded punctuation");
        assert_eq!(op.feedback_stats().unwrap().tuples_suppressed, 1);
    }

    #[test]
    fn on_page_decides_conclusive_batches_from_summaries() {
        use dsms_punctuation::Punctuation;
        let mut op = fast_only();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        ctx.take_feedback();
        // Every row is segment 3: the summary proves the guard covers the
        // page, so it is suppressed wholesale — punctuation still flows.
        let covered = Page::from_items(vec![
            StreamItem::Tuple(tuple(3, 60.0)),
            StreamItem::Tuple(tuple(3, 80.0)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            ),
        ]);
        op.on_page(0, covered, &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1, "only the punctuation survives");
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2);
        assert_eq!(stats.batches_summary_conclusive, 1);
        // Every row is segment 5: the summary proves the guard misses, so the
        // predicate runs without any per-tuple guard probe.
        let clear = Page::from_items(vec![
            StreamItem::Tuple(tuple(5, 60.0)),
            StreamItem::Tuple(tuple(5, 10.0)),
        ]);
        op.on_page(0, clear, &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1, "predicate still filters");
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2, "no additional suppression");
        assert_eq!(stats.batches_summary_conclusive, 2);
        assert_eq!(stats.batches_summary_fallback, 0);
    }

    #[test]
    fn desired_feedback_is_not_relayed_as_assumed() {
        let mut op = fast_only();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::desired(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty());
        // Desired tuples still pass (prioritization does not drop anything).
        op.on_tuple(0, tuple(3, 60.0), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn relay_can_be_disabled() {
        let mut op = fast_only().without_relay();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty());
        op.on_tuple(0, tuple(3, 60.0), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "still exploited locally");
    }
}
