//! DUPLICATE: copy a stream to several outputs.
//!
//! The paper uses DUPLICATE in the imputation plan (Figure 4a) to send the
//! same input to the clean-path filter and the dirty-path filter.  Its
//! feedback behaviour is subtle (Section 4.1): the operator's definition
//! requires all outputs to stay identical, so exploiting an assumed
//! punctuation is only correct once *equivalent* feedback has been received
//! from **every** output; until then the correct response is the null
//! response (and no propagation).

use dsms_engine::{EngineResult, Operator, OperatorContext, Page, StreamItem};
use dsms_feedback::{
    characterize_duplicate, BatchGuardDecision, FeedbackIntent, FeedbackPunctuation,
    FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::{Pattern, Punctuation};
use dsms_types::{SchemaRef, Tuple};

/// Copies its input stream to `outputs` identical output streams.
pub struct Duplicate {
    name: String,
    schema: SchemaRef,
    outputs: usize,
    /// Assumed patterns received so far, per output port.
    assumed_per_output: Vec<Vec<Pattern>>,
    registry: FeedbackRegistry,
}

impl Duplicate {
    /// Creates a duplicate operator with the given number of outputs.
    pub fn new(name: impl Into<String>, schema: SchemaRef, outputs: usize) -> Self {
        let name = name.into();
        Duplicate {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            outputs: outputs.max(2),
            assumed_per_output: vec![Vec::new(); outputs.max(2)],
        }
    }

    /// True when an equivalent (subsuming) assumed pattern has been received
    /// on every output, so exploiting `pattern` keeps the outputs identical.
    fn assumed_on_all_outputs(&self, pattern: &Pattern) -> bool {
        self.assumed_per_output.iter().all(|patterns| patterns.iter().any(|p| p.subsumes(pattern)))
    }
}

impl Operator for Duplicate {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        self.outputs
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        // Tuple clones are O(1) (shared value buffer), and the final output
        // receives the original by move: N outputs, N-1 refcount bumps.
        for port in 0..self.outputs - 1 {
            ctx.emit(port, tuple.clone());
        }
        ctx.emit(self.outputs - 1, tuple);
        Ok(())
    }

    /// Batch fast path: a page whose column summaries prove every row clear
    /// of the active guards is copied to each output *as a page* (O(1) clones
    /// of the shared lanes), keeping upstream batching intact across the
    /// fan-out instead of exploding it into per-tuple routing.  A page proven
    /// entirely covered drops its row lane wholesale; its punctuation lane
    /// still reaches every output.  Inconclusive summaries fall back to the
    /// exact per-item path.
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        let decision = self.registry.decide_batch(page.tuple_count(), |c| page.column_summary(c));
        match decision {
            BatchGuardDecision::PassAll => {
                // Page clones share the row/punctuation lanes, so this is N-1
                // refcount bumps plus one move — identical item order on every
                // output, exactly like the per-tuple path.
                for port in 0..self.outputs - 1 {
                    ctx.emit_page(port, page.clone());
                }
                ctx.emit_page(self.outputs - 1, page);
            }
            BatchGuardDecision::SuppressAll => {
                for item in page {
                    if let StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
            }
            BatchGuardDecision::Mixed => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        for port in 0..self.outputs - 1 {
            ctx.emit_punctuation(port, punctuation.clone());
        }
        ctx.emit_punctuation(self.outputs - 1, punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if feedback.intent() != FeedbackIntent::Assumed {
            // Desired/demanded feedback is recorded but DUPLICATE itself takes
            // no action (it has no state and no production ordering freedom).
            let _ = self.registry.register(feedback);
            return Ok(());
        }
        if let Some(patterns) = self.assumed_per_output.get_mut(output) {
            patterns.push(feedback.pattern().clone());
        }
        let all = self.assumed_on_all_outputs(feedback.pattern());
        let ch = characterize_duplicate(&self.schema, all, feedback.pattern())?;
        if !ch.is_null() {
            // Every output has assumed this subset away: the guard becomes
            // active and the feedback is safe to propagate upstream.
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
            self.registry.stats_mut().relayed.record(feedback.intent());
            let _ = self.registry.register(feedback);
        } else {
            // Null response: remember the message but do not enact a guard.
            self.registry.stats_mut().received.record(feedback.intent());
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn tuple(seg: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg)])
    }

    fn seg_pattern(seg: i64) -> Pattern {
        Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))]).unwrap()
    }

    #[test]
    fn duplicate_copies_to_every_output() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1), &mut ctx).unwrap();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            &mut ctx,
        )
        .unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 4, "1 tuple + 1 punctuation on each of 2 outputs");
        let ports: Vec<usize> = emitted.iter().map(|(p, _)| *p).collect();
        assert!(ports.contains(&0) && ports.contains(&1));
    }

    #[test]
    fn feedback_from_one_output_is_a_null_response() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "left"), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "not propagated yet");
        op.on_tuple(0, tuple(3), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2, "still copied to both outputs");
    }

    #[test]
    fn feedback_from_all_outputs_enables_exploitation() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "left"), &mut ctx).unwrap();
        op.on_feedback(1, FeedbackPunctuation::assumed(seg_pattern(3), "right"), &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1, "propagated once both outputs agree");
        op.on_tuple(0, tuple(3), &mut ctx).unwrap();
        op.on_tuple(0, tuple(4), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2, "segment 3 suppressed on both outputs, segment 4 copied");
    }

    #[test]
    fn wider_feedback_on_one_output_covers_narrower_on_the_other() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        // Output 0 assumes away *everything* (wildcard pattern subsumes all).
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "left"),
            &mut ctx,
        )
        .unwrap();
        // Output 1 assumes away segment 5 only → both outputs agree on segment 5.
        op.on_feedback(1, FeedbackPunctuation::assumed(seg_pattern(5), "right"), &mut ctx).unwrap();
        op.on_tuple(0, tuple(5), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "segment 5 suppressed");
        op.on_tuple(0, tuple(6), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2, "segment 6 unaffected");
    }

    #[test]
    fn clear_pages_are_copied_to_every_output_as_pages() {
        use dsms_engine::Emission;
        let mut op = Duplicate::new("dup", schema(), 3);
        let mut ctx = OperatorContext::new();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1)),
            StreamItem::Tuple(tuple(2)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            ),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let mut pages = Vec::new();
        ctx.drain_emissions(|port, emission| match emission {
            Emission::Page(p) => pages.push((port, p)),
            Emission::Item(item) => panic!("expected whole pages, got item {item:?}"),
        });
        let ports: Vec<usize> = pages.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2], "one intact page per output");
        for (_, p) in &pages {
            assert_eq!(p.tuple_count(), 2);
            assert_eq!(p.punctuation_count(), 1, "punctuation still reaches every copy");
        }
    }

    #[test]
    fn covered_pages_drop_rows_but_copy_punctuation_to_all_outputs() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        // Unanimous assumed feedback on segment 3 activates the guard.
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "left"), &mut ctx).unwrap();
        op.on_feedback(1, FeedbackPunctuation::assumed(seg_pattern(3), "right"), &mut ctx).unwrap();
        let _ = ctx.take_feedback();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(3)),
            StreamItem::Tuple(tuple(3)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            ),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2, "only the punctuation survives, copied to both outputs");
        assert!(emitted.iter().all(|(_, i)| matches!(i, StreamItem::Punctuation(_))));
    }

    #[test]
    fn mixed_pages_fall_back_to_the_exact_per_item_path() {
        let mut op = Duplicate::new("dup", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "left"), &mut ctx).unwrap();
        op.on_feedback(1, FeedbackPunctuation::assumed(seg_pattern(3), "right"), &mut ctx).unwrap();
        let _ = ctx.take_feedback();
        // Segments 3 and 4 on one page: summaries span the guard, so the
        // per-tuple path must suppress 3 and copy 4.
        let page = Page::from_items(vec![StreamItem::Tuple(tuple(3)), StreamItem::Tuple(tuple(4))]);
        op.on_page(0, page, &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2, "segment 4 copied to both outputs, segment 3 suppressed");
        assert!(emitted.iter().all(|(_, i)| i.as_tuple().unwrap().int("segment").unwrap() == 4));
    }

    #[test]
    fn at_least_two_outputs() {
        let op = Duplicate::new("dup", schema(), 0);
        assert_eq!(op.outputs(), 2);
    }
}
