//! Windowed, grouped aggregates (COUNT, SUM, AVG, MAX, MIN).
//!
//! The aggregate follows the WID / OOP evaluation strategy: every input tuple
//! is assigned to a tumbling window by its timestamp, partial aggregates are
//! kept per `(window, group)` pair, and **embedded punctuation** — not arrival
//! order — decides when a window is complete, its result emitted and its state
//! purged.
//!
//! Feedback behaviour implements Table 1 of the paper (generalized by the
//! aggregate's monotonicity, see `dsms_feedback::characterization`) and the
//! three optimization schemes of Experiment 2:
//!
//! * [`FeedbackMode::Ignore`] — F0: feedback-unaware baseline;
//! * [`FeedbackMode::GuardOutput`] — F1: mount a guard on the output of the
//!   aggregate;
//! * [`FeedbackMode::Exploit`] — F2: additionally guard the input and purge
//!   state, avoiding aggregation work for groups known to be of no interest;
//! * [`FeedbackMode::ExploitAndPropagate`] — F3: additionally relay the
//!   feedback to the antecedent (the data-quality filter in Figure 4b).
//!
//! Demanded punctuation (`![p]`) unblocks the aggregate: it immediately emits
//! the current partial aggregates for matching groups (a partial result is
//! better than no result within the issuer's margin of action).

use dsms_engine::{EngineError, EngineResult, Operator, OperatorContext, StateEntry};
use dsms_feedback::{
    characterize_aggregate, AggregateSpec, AttributeMapping, ExploitAction, FeedbackIntent,
    FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, Monotonicity, PropagationRule,
};
use dsms_punctuation::{CompiledPattern, Pattern, PatternItem, Punctuation, SummaryMatch};
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// The aggregate function computed per window and group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateFunction {
    /// COUNT of tuples.
    Count,
    /// SUM of the named numeric attribute.
    Sum(String),
    /// AVG of the named numeric attribute.
    Avg(String),
    /// MAX of the named numeric attribute.
    Max(String),
    /// MIN of the named numeric attribute.
    Min(String),
}

impl AggregateFunction {
    /// The output attribute name for this aggregate.
    pub fn output_name(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::Sum(_) => "sum",
            AggregateFunction::Avg(_) => "avg",
            AggregateFunction::Max(_) => "max",
            AggregateFunction::Min(_) => "min",
        }
    }

    /// The input attribute aggregated over, if any.
    pub fn input_attribute(&self) -> Option<&str> {
        match self {
            AggregateFunction::Count => None,
            AggregateFunction::Sum(a)
            | AggregateFunction::Avg(a)
            | AggregateFunction::Max(a)
            | AggregateFunction::Min(a) => Some(a),
        }
    }

    /// Output type of the aggregate value.
    pub fn output_type(&self) -> DataType {
        match self {
            AggregateFunction::Count => DataType::Int,
            _ => DataType::Float,
        }
    }

    /// Monotonicity of the partial aggregate as tuples are folded in, which
    /// drives the feedback characterization (paper Section 3.5).
    pub fn monotonicity(&self) -> Monotonicity {
        match self {
            AggregateFunction::Count | AggregateFunction::Max(_) => Monotonicity::NonDecreasing,
            AggregateFunction::Min(_) => Monotonicity::NonIncreasing,
            AggregateFunction::Sum(_) | AggregateFunction::Avg(_) => Monotonicity::None,
        }
    }
}

/// How the aggregate responds to assumed feedback — the F0–F3 schemes of
/// Experiment 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMode {
    /// F0: ignore feedback entirely.
    Ignore,
    /// F1: guard the output only.
    GuardOutput,
    /// F2: guard input, purge state, guard output.
    Exploit,
    /// F3: F2 plus relay the feedback to the antecedent.
    ExploitAndPropagate,
}

#[derive(Debug, Clone)]
enum Accumulator {
    Count(u64),
    Sum(f64),
    Avg { sum: f64, count: u64 },
    Max(f64),
    Min(f64),
}

impl Accumulator {
    fn new(function: &AggregateFunction) -> Self {
        match function {
            AggregateFunction::Count => Accumulator::Count(0),
            AggregateFunction::Sum(_) => Accumulator::Sum(0.0),
            AggregateFunction::Avg(_) => Accumulator::Avg { sum: 0.0, count: 0 },
            AggregateFunction::Max(_) => Accumulator::Max(f64::NEG_INFINITY),
            AggregateFunction::Min(_) => Accumulator::Min(f64::INFINITY),
        }
    }

    fn fold(&mut self, value: Option<f64>) {
        match self {
            Accumulator::Count(c) => *c += 1,
            Accumulator::Sum(s) => *s += value.unwrap_or(0.0),
            Accumulator::Avg { sum, count } => {
                if let Some(v) = value {
                    *sum += v;
                    *count += 1;
                }
            }
            Accumulator::Max(m) => {
                if let Some(v) = value {
                    *m = m.max(v);
                }
            }
            Accumulator::Min(m) => {
                if let Some(v) = value {
                    *m = m.min(v);
                }
            }
        }
    }

    fn value(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int(*c as i64),
            Accumulator::Sum(s) => Value::Float(*s),
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            Accumulator::Max(m) => {
                if m.is_finite() {
                    Value::Float(*m)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(m) => {
                if m.is_finite() {
                    Value::Float(*m)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Key of one partial aggregate: the window id plus the group-by values.
type StateKey = (i64, Vec<Value>);

/// A tumbling-window grouped aggregate with Table-1 feedback behaviour.
pub struct WindowAggregate {
    name: String,
    input_schema: SchemaRef,
    output_schema: SchemaRef,
    timestamp_attribute: String,
    /// Index of `timestamp_attribute` in the input schema, resolved once so
    /// per-tuple windowing is a slice access instead of a name lookup.
    timestamp_index: usize,
    window: StreamDuration,
    group_attributes: Vec<String>,
    group_indices: Vec<usize>,
    function: AggregateFunction,
    value_index: Option<usize>,
    feedback_mode: FeedbackMode,
    spec: AggregateSpec,
    state: BTreeMap<StateKey, Accumulator>,
    /// Output guards (patterns over the output schema).
    output_guards: Vec<Pattern>,
    /// Input guards (patterns over the input schema).
    input_guards: Vec<Pattern>,
    /// The same input guards compiled for batch-level summary evaluation,
    /// kept index-parallel with `input_guards`.
    input_guards_compiled: Vec<CompiledPattern>,
    /// Group keys suppressed by PurgeAndGuardMatchingGroups.
    guarded_groups: HashSet<Vec<Value>>,
    registry: FeedbackRegistry,
    emitted_watermark: Option<Timestamp>,
}

impl WindowAggregate {
    /// Creates a tumbling-window aggregate.
    ///
    /// Output schema: `(window: timestamp, <group attributes…>, <aggregate>)`,
    /// where `window` is the start of the tumbling window.
    pub fn new(
        name: impl Into<String>,
        input_schema: SchemaRef,
        timestamp_attribute: impl Into<String>,
        window: StreamDuration,
        group_attributes: &[&str],
        function: AggregateFunction,
    ) -> dsms_types::TypeResult<Self> {
        let name = name.into();
        let timestamp_attribute = timestamp_attribute.into();
        let timestamp_index = input_schema.index_of(&timestamp_attribute)?;
        let group_indices: Vec<usize> =
            group_attributes.iter().map(|a| input_schema.index_of(a)).collect::<Result<_, _>>()?;
        let value_index = match function.input_attribute() {
            Some(attr) => Some(input_schema.index_of(attr)?),
            None => None,
        };
        let mut fields = vec![dsms_types::Field::new("window", DataType::Timestamp)];
        for (i, attr) in group_attributes.iter().enumerate() {
            fields.push(dsms_types::Field::new(
                *attr,
                input_schema.field(group_indices[i])?.data_type(),
            ));
        }
        fields.push(dsms_types::Field::new(function.output_name(), function.output_type()));
        let output_schema: SchemaRef = Arc::new(Schema::try_new(fields)?);

        // Mapping output → input: the window attribute maps onto the
        // timestamp attribute (coarsened), group attributes map by name.
        let mut pairs: Vec<(&str, &str)> = vec![("window", timestamp_attribute.as_str())];
        for attr in group_attributes {
            pairs.push((attr, attr));
        }
        let input_mapping =
            AttributeMapping::by_pairs(output_schema.clone(), input_schema.clone(), &pairs)?;

        let spec = AggregateSpec {
            output: output_schema.clone(),
            input: input_schema.clone(),
            group_attributes: (1..=group_attributes.len()).collect(),
            aggregate_attribute: group_attributes.len() + 1,
            input_mapping,
            monotonicity: function.monotonicity(),
        };

        Ok(WindowAggregate {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            input_schema,
            output_schema,
            timestamp_attribute,
            timestamp_index,
            window,
            group_attributes: group_attributes.iter().map(|s| s.to_string()).collect(),
            group_indices,
            function,
            value_index,
            feedback_mode: FeedbackMode::ExploitAndPropagate,
            spec,
            state: BTreeMap::new(),
            output_guards: Vec::new(),
            input_guards: Vec::new(),
            input_guards_compiled: Vec::new(),
            guarded_groups: HashSet::new(),
            emitted_watermark: None,
        })
    }

    /// Sets the feedback mode (F0–F3).
    pub fn with_feedback_mode(mut self, mode: FeedbackMode) -> Self {
        self.feedback_mode = mode;
        self
    }

    /// The output schema.
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }

    /// Number of open `(window, group)` partial aggregates.
    pub fn open_groups(&self) -> usize {
        self.state.len()
    }

    fn output_tuple(&self, key: &StateKey, acc: &Accumulator) -> Tuple {
        let mut values = Vec::with_capacity(self.output_schema.arity());
        values.push(Value::Timestamp(Timestamp::from_millis(key.0 * self.window.as_millis())));
        values.extend(key.1.iter().cloned());
        values.push(acc.value());
        Tuple::new(self.output_schema.clone(), values)
    }

    fn output_guarded(&self, tuple: &Tuple) -> bool {
        self.output_guards.iter().any(|p| p.matches(tuple))
    }

    fn input_guarded(&self, tuple: &Tuple, group: &[Value]) -> bool {
        self.guarded_groups.contains(group) || self.input_guards.iter().any(|p| p.matches(tuple))
    }

    /// Folds one tuple into its `(window, group)` partial aggregate.  Guard
    /// checks have already happened (or were proven unnecessary for the whole
    /// batch).
    fn accumulate(&mut self, tuple: &Tuple, group: Vec<Value>) -> EngineResult<()> {
        let ts = tuple.timestamp_at(self.timestamp_index)?;
        let wid = ts.window_id(self.window);
        let value = self.value_index.and_then(|i| tuple.values()[i].numeric());
        let acc =
            self.state.entry((wid, group)).or_insert_with(|| Accumulator::new(&self.function));
        acc.fold(value);
        Ok(())
    }

    /// True when the purged-group guard set provably misses every row of the
    /// page: the single group column's summary range excludes every guarded
    /// group key.  Conservative — multi-attribute groups and pages with null
    /// group values return `false` (per-tuple fallback).
    fn groups_provably_unguarded(&self, page: &dsms_engine::Page) -> bool {
        if self.guarded_groups.is_empty() {
            return true;
        }
        if self.group_indices.len() != 1 {
            return false;
        }
        let Some(summary) = page.column_summary(self.group_indices[0]) else {
            return false;
        };
        if summary.has_nulls() {
            return false;
        }
        let (Some(min), Some(max)) = (summary.min(), summary.max()) else {
            return false;
        };
        self.guarded_groups.iter().all(|g| g.first().is_some_and(|v| v < min || v > max))
    }

    fn emit_window(&self, key: &StateKey, acc: &Accumulator, ctx: &mut OperatorContext) -> bool {
        let out = self.output_tuple(key, acc);
        if self.output_guarded(&out) {
            return false;
        }
        ctx.emit(0, out);
        true
    }

    /// Closes every window whose end is at or before the watermark.
    fn close_windows_up_to(&mut self, watermark: Timestamp, ctx: &mut OperatorContext) {
        let closeable: Vec<StateKey> = self
            .state
            .keys()
            .filter(|(wid, _)| {
                let window_end = Timestamp::from_millis((wid + 1) * self.window.as_millis())
                    - StreamDuration::from_millis(1);
                window_end <= watermark
            })
            .cloned()
            .collect();
        let mut suppressed = 0u64;
        for key in closeable {
            if let Some(acc) = self.state.remove(&key) {
                if !self.emit_window(&key, &acc, ctx) {
                    suppressed += 1;
                }
            }
        }
        self.registry.stats_mut().tuples_suppressed += suppressed;
        // Forward progress: everything up to the watermark is complete on the
        // output's window attribute too.
        let should_emit = match self.emitted_watermark {
            None => true,
            Some(prev) => watermark > prev,
        };
        if should_emit {
            self.emitted_watermark = Some(watermark);
            if let Ok(p) = Punctuation::progress(self.output_schema.clone(), "window", watermark) {
                ctx.emit_punctuation(0, p);
            }
        }
    }
}

impl Operator for WindowAggregate {
    fn feedback_roles(&self) -> FeedbackRoles {
        match self.feedback_mode {
            FeedbackMode::Ignore => FeedbackRoles::NONE,
            FeedbackMode::GuardOutput | FeedbackMode::Exploit => FeedbackRoles::exploiter(),
            FeedbackMode::ExploitAndPropagate => FeedbackRoles::exploiter().with_relayer(),
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.input_schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.output_schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let group: Vec<Value> =
            self.group_indices.iter().map(|i| tuple.values()[*i].clone()).collect();
        if self.feedback_mode != FeedbackMode::Ignore && self.input_guarded(&tuple, &group) {
            self.registry.stats_mut().tuples_suppressed += 1;
            return Ok(());
        }
        self.accumulate(&tuple, group)
    }

    /// Columnar kernel: classifies the whole page against the input guards
    /// (both pattern guards and purged-group guards) via column summaries.
    /// A page the guards provably cover is suppressed wholesale; a page they
    /// provably miss folds into the window state without any per-tuple guard
    /// probe; anything inconclusive falls back to the exact per-tuple path.
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, Page, StreamItem};
    /// use dsms_feedback::FeedbackPunctuation;
    /// use dsms_operators::{AggregateFunction, WindowAggregate};
    /// use dsms_punctuation::{Pattern, PatternItem};
    /// use dsms_types::{DataType, Schema, StreamDuration, Timestamp, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[
    ///     ("timestamp", DataType::Timestamp),
    ///     ("segment", DataType::Int),
    ///     ("speed", DataType::Float),
    /// ]);
    /// let mut avg = WindowAggregate::new(
    ///     "AVERAGE",
    ///     schema.clone(),
    ///     "timestamp",
    ///     StreamDuration::from_secs(60),
    ///     &["segment"],
    ///     AggregateFunction::Avg("speed".into()),
    /// )
    /// .unwrap();
    /// let mut ctx = OperatorContext::new();
    /// // An assumed guard over the output schema purges and guards segment 3.
    /// let guard = Pattern::for_attributes(
    ///     avg.output_schema().clone(),
    ///     &[("segment", PatternItem::Eq(Value::Int(3)))],
    /// )
    /// .unwrap();
    /// avg.on_feedback(0, FeedbackPunctuation::assumed(guard, "MAP"), &mut ctx).unwrap();
    ///
    /// let row = |seg, speed| {
    ///     StreamItem::Tuple(Tuple::new(
    ///         schema.clone(),
    ///         vec![Value::Timestamp(Timestamp::from_secs(10)), Value::Int(seg), Value::Float(speed)],
    ///     ))
    /// };
    /// // The group column's summary proves this page is entirely guarded …
    /// avg.on_page(0, Page::from_items(vec![row(3, 40.0), row(3, 50.0)]), &mut ctx).unwrap();
    /// assert_eq!(avg.open_groups(), 0);
    /// // … and this one entirely clear: folded with no per-tuple probes.
    /// avg.on_page(0, Page::from_items(vec![row(5, 40.0), row(6, 60.0)]), &mut ctx).unwrap();
    /// assert_eq!(avg.open_groups(), 2);
    /// assert_eq!(avg.feedback_stats().unwrap().batches_summary_conclusive, 2);
    /// ```
    fn on_page(
        &mut self,
        input: usize,
        page: dsms_engine::Page,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let unguarded = self.feedback_mode == FeedbackMode::Ignore
            || (self.input_guards.is_empty() && self.guarded_groups.is_empty());
        if unguarded && page.tuple_count() > 0 {
            // No guards mounted: fold the row lane directly, mirroring the
            // registry's no-guard short-circuit (no batch counters).
            for item in page {
                match item {
                    dsms_engine::StreamItem::Tuple(tuple) => {
                        let group: Vec<Value> =
                            self.group_indices.iter().map(|i| tuple.values()[*i].clone()).collect();
                        self.accumulate(&tuple, group)?;
                    }
                    dsms_engine::StreamItem::Punctuation(punctuation) => {
                        self.on_punctuation(input, punctuation, ctx)?
                    }
                }
            }
            return Ok(());
        }
        if !unguarded && page.tuple_count() > 0 {
            let mut covered = false;
            let mut every_guard_misses = true;
            for guard in &self.input_guards_compiled {
                match guard.matches_summaries(|c| page.column_summary(c)) {
                    SummaryMatch::All => {
                        covered = true;
                        break;
                    }
                    SummaryMatch::None => {}
                    SummaryMatch::Unknown => every_guard_misses = false,
                }
            }
            if covered {
                // Every row matches an input guard: suppress the data lane.
                let stats = self.registry.stats_mut();
                stats.tuples_suppressed += page.tuple_count() as u64;
                stats.batches_summary_conclusive += 1;
                for item in page {
                    if let dsms_engine::StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
                return Ok(());
            }
            if every_guard_misses && self.groups_provably_unguarded(&page) {
                self.registry.stats_mut().batches_summary_conclusive += 1;
                for item in page {
                    match item {
                        dsms_engine::StreamItem::Tuple(tuple) => {
                            let group: Vec<Value> = self
                                .group_indices
                                .iter()
                                .map(|i| tuple.values()[*i].clone())
                                .collect();
                            self.accumulate(&tuple, group)?;
                        }
                        dsms_engine::StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
                return Ok(());
            }
            self.registry.stats_mut().batches_summary_fallback += 1;
        }
        for item in page {
            match item {
                dsms_engine::StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                dsms_engine::StreamItem::Punctuation(punctuation) => {
                    self.on_punctuation(input, punctuation, ctx)?
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(watermark) = punctuation.watermark_for(&self.timestamp_attribute) {
            self.close_windows_up_to(watermark, ctx);
        }
        // Group-complete punctuation on a grouping attribute closes that
        // group's windows (all of them — no more tuples for the group).
        for (i, attr) in self.group_attributes.clone().iter().enumerate() {
            if let Some(group_value) = punctuation.completed_group(attr) {
                let closeable: Vec<StateKey> = self
                    .state
                    .keys()
                    .filter(|(_, g)| g.get(i) == Some(&group_value))
                    .cloned()
                    .collect();
                for key in closeable {
                    if let Some(acc) = self.state.remove(&key) {
                        self.emit_window(&key, &acc, ctx);
                    }
                }
            }
        }
        // Punctuation also expires feedback guards it subsumes.
        self.registry.expire_with(&punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.feedbackmode_is_ignore() {
            return Ok(());
        }
        self.registry.stats_mut().received.record(feedback.intent());
        match feedback.intent() {
            FeedbackIntent::Assumed => self.exploit_assumed(&feedback, ctx)?,
            FeedbackIntent::Desired => {
                // Prioritization inside a blocking aggregate means closing the
                // desired groups as early as possible; we record the pattern so
                // demanded/desired-aware consumers can be served first, but the
                // aggregate's result set is unchanged.
                let _ = self.registry.register(feedback);
            }
            FeedbackIntent::Demanded => {
                // Emit partial results for matching groups right now.
                let keys: Vec<StateKey> = self.state.keys().cloned().collect();
                for key in keys {
                    if let Some(acc) = self.state.get(&key) {
                        let out = self.output_tuple(&key, acc);
                        if feedback.pattern().matches(&out) && !self.output_guarded(&out) {
                            ctx.emit(0, out);
                            self.registry.stats_mut().partial_results += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_request_results(
        &mut self,
        _output: usize,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Poll-based result production (paper Example 4): emit current partial
        // aggregates without purging state.
        let keys: Vec<StateKey> = self.state.keys().cloned().collect();
        for key in keys {
            if let Some(acc) = self.state.get(&key) {
                let out = self.output_tuple(&key, acc);
                if !self.output_guarded(&out) {
                    ctx.emit(0, out);
                    self.registry.stats_mut().partial_results += 1;
                }
            }
        }
        Ok(())
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        let remaining: Vec<(StateKey, Accumulator)> =
            std::mem::take(&mut self.state).into_iter().collect();
        for (key, acc) in remaining {
            self.emit_window(&key, &acc, ctx);
        }
        Ok(())
    }

    /// One entry per open `(window, group)` partial aggregate.  The entry key
    /// is the group values in group-attribute order — an elastic stage must
    /// therefore shuffle on those same attributes in that same order for
    /// [`route_values`](crate::elastic::route_values) to agree with the hash
    /// route.  Exporting drains the state: partials move whole, never split.
    fn export_state(&mut self) -> Vec<StateEntry> {
        std::mem::take(&mut self.state)
            .into_iter()
            .map(|((wid, group), acc)| StateEntry { key: group, payload: Box::new((wid, acc)) })
            .collect()
    }

    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        for entry in entries {
            let payload = entry.payload.downcast::<(i64, Accumulator)>().map_err(|_| {
                EngineError::OperatorFailed {
                    operator: self.name.clone(),
                    detail: "imported state entry is not a window aggregate partial".into(),
                }
            })?;
            let (wid, acc) = *payload;
            // Routing keeps partitions disjoint and export drains local state,
            // so an entry never lands on an existing key.
            self.state.insert((wid, entry.key), acc);
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    fn restartable(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(vec![StateEntry {
            key: Vec::new(),
            payload: Box::new(AggregateSnapshot {
                state: self.state.clone(),
                output_guards: self.output_guards.clone(),
                input_guards: self.input_guards.clone(),
                input_guards_compiled: self.input_guards_compiled.clone(),
                guarded_groups: self.guarded_groups.clone(),
                registry: self.registry.clone(),
                emitted_watermark: self.emitted_watermark,
            }),
        }])
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.state = BTreeMap::new();
        self.output_guards = Vec::new();
        self.input_guards = Vec::new();
        self.input_guards_compiled = Vec::new();
        self.guarded_groups = HashSet::new();
        self.registry = FeedbackRegistry::new(self.name.clone());
        self.emitted_watermark = None;
        for entry in entries {
            match entry.payload.downcast::<AggregateSnapshot>() {
                Ok(snapshot) => {
                    self.state = snapshot.state;
                    self.output_guards = snapshot.output_guards;
                    self.input_guards = snapshot.input_guards;
                    self.input_guards_compiled = snapshot.input_guards_compiled;
                    self.guarded_groups = snapshot.guarded_groups;
                    self.registry = snapshot.registry;
                    self.emitted_watermark = snapshot.emitted_watermark;
                }
                Err(_) => {
                    return Err(EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: "checkpoint entry is not a window aggregate snapshot".into(),
                    })
                }
            }
        }
        Ok(())
    }
}

/// Open partials, guard state, and the emission watermark captured together
/// at a checkpoint so a restarted [`WindowAggregate`] neither re-emits nor
/// loses a window.
struct AggregateSnapshot {
    state: BTreeMap<StateKey, Accumulator>,
    output_guards: Vec<Pattern>,
    input_guards: Vec<Pattern>,
    input_guards_compiled: Vec<CompiledPattern>,
    guarded_groups: HashSet<Vec<Value>>,
    registry: FeedbackRegistry,
    emitted_watermark: Option<Timestamp>,
}

impl WindowAggregate {
    fn feedbackmode_is_ignore(&self) -> bool {
        self.feedback_mode == FeedbackMode::Ignore
    }

    fn exploit_assumed(
        &mut self,
        feedback: &FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // F1 restricts the response to mounting a guard on the aggregate's
        // output, regardless of what the full characterization would allow.
        if self.feedback_mode == FeedbackMode::GuardOutput {
            self.output_guards.push(feedback.pattern().clone());
            let _ = self.registry.register(feedback.clone());
            return Ok(());
        }
        let characterization = characterize_aggregate(&self.spec, feedback.pattern())?;
        let guard_output_only = false;
        for action in &characterization.actions {
            match action {
                ExploitAction::GuardOutput(pattern) => self.output_guards.push(pattern.clone()),
                ExploitAction::GuardInput { pattern, .. } => {
                    if !guard_output_only {
                        self.input_guards_compiled.push(pattern.compile());
                        self.input_guards.push(pattern.clone());
                    }
                }
                ExploitAction::PurgeState(pattern) => {
                    if !guard_output_only {
                        let before = self.state.len();
                        let keys: Vec<StateKey> = self.state.keys().cloned().collect();
                        for key in keys {
                            if let Some(acc) = self.state.get(&key) {
                                let out = self.output_tuple(&key, acc);
                                if pattern.matches(&out) {
                                    self.state.remove(&key);
                                }
                            }
                        }
                        self.registry.stats_mut().state_purged +=
                            (before - self.state.len()) as u64;
                    }
                }
                ExploitAction::PurgeAndGuardMatchingGroups => {
                    if !guard_output_only {
                        let keys: Vec<StateKey> = self.state.keys().cloned().collect();
                        let mut purged = 0u64;
                        for key in keys {
                            if let Some(acc) = self.state.get(&key) {
                                let out = self.output_tuple(&key, acc);
                                if feedback.pattern().matches(&out) {
                                    self.guarded_groups.insert(key.1.clone());
                                    self.state.remove(&key);
                                    purged += 1;
                                }
                            }
                        }
                        self.registry.stats_mut().state_purged += purged;
                    }
                }
            }
        }
        // F3: relay to the antecedent following the characterization.
        if self.feedback_mode == FeedbackMode::ExploitAndPropagate {
            match &characterization.propagation {
                PropagationRule::ToInputs(targets) => {
                    for (input, pattern) in targets {
                        ctx.send_feedback(*input, feedback.relay(pattern.clone(), &self.name));
                        self.registry.stats_mut().relayed.record(feedback.intent());
                    }
                }
                PropagationRule::GroupsFromState => {
                    // Propagate the guarded groups in terms of the input schema,
                    // only expressible when there is exactly one group attribute.
                    if self.group_attributes.len() == 1 && !self.guarded_groups.is_empty() {
                        let keys: Vec<Value> =
                            self.guarded_groups.iter().filter_map(|g| g.first().cloned()).collect();
                        let pattern = Pattern::for_attributes(
                            self.input_schema.clone(),
                            &[(self.group_attributes[0].as_str(), PatternItem::InSet(keys))],
                        )?;
                        ctx.send_feedback(0, feedback.relay(pattern, &self.name));
                        self.registry.stats_mut().relayed.record(feedback.intent());
                    }
                }
                PropagationRule::None => {}
            }
        }
        let _ = self.registry.register(feedback.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(ts: i64, seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
        )
    }

    fn avg_per_segment() -> WindowAggregate {
        WindowAggregate::new(
            "AVERAGE",
            schema(),
            "timestamp",
            StreamDuration::from_secs(60),
            &["segment"],
            AggregateFunction::Avg("speed".into()),
        )
        .unwrap()
    }

    fn progress(ts: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(ts)).unwrap()
    }

    fn emitted_tuples(ctx: &mut OperatorContext) -> Vec<Tuple> {
        ctx.take_emitted()
            .into_iter()
            .filter_map(|(_, item)| match item {
                StreamItem::Tuple(t) => Some(t),
                StreamItem::Punctuation(_) => None,
            })
            .collect()
    }

    #[test]
    fn punctuation_closes_windows_and_purges_state() {
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(20, 1, 60.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(70, 1, 30.0), &mut ctx).unwrap(); // next window
        assert_eq!(op.open_groups(), 2);
        assert!(emitted_tuples(&mut ctx).is_empty(), "blocking until punctuation");

        op.on_punctuation(0, progress(59), &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 2, "a tuple at 59.5s could still arrive for window 0");
        op.on_punctuation(0, progress(60), &mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].float("avg").unwrap(), 50.0);
        assert_eq!(op.open_groups(), 1, "window 0 purged, window 1 still open");
    }

    #[test]
    fn flush_emits_remaining_windows() {
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(10, 2, 80.0), &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 2);
        assert_eq!(op.open_groups(), 0);
    }

    #[test]
    fn count_and_max_and_min_and_sum_compute_correct_values() {
        for (function, expected) in [
            (AggregateFunction::Count, Value::Int(3)),
            (AggregateFunction::Sum("speed".into()), Value::Float(150.0)),
            (AggregateFunction::Max("speed".into()), Value::Float(70.0)),
            (AggregateFunction::Min("speed".into()), Value::Float(30.0)),
            (AggregateFunction::Avg("speed".into()), Value::Float(50.0)),
        ] {
            let mut op = WindowAggregate::new(
                "agg",
                schema(),
                "timestamp",
                StreamDuration::from_secs(60),
                &["segment"],
                function.clone(),
            )
            .unwrap();
            let mut ctx = OperatorContext::new();
            op.on_tuple(0, tuple(1, 1, 50.0), &mut ctx).unwrap();
            op.on_tuple(0, tuple(2, 1, 30.0), &mut ctx).unwrap();
            op.on_tuple(0, tuple(3, 1, 70.0), &mut ctx).unwrap();
            op.on_flush(&mut ctx).unwrap();
            let out = emitted_tuples(&mut ctx);
            assert_eq!(out.len(), 1, "{function:?}");
            assert_eq!(out[0].values()[2], expected, "{function:?}");
        }
    }

    #[test]
    fn group_feedback_purges_guards_and_propagates() {
        // Table 1 row ¬[g, *] with g = segment 3.
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 3, 40.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(10, 4, 40.0), &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 2);

        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 1, "segment 3 state purged");
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1, "propagated to the antecedent");
        assert_eq!(relayed[0].1.pattern().to_string(), "[*, 3, *]");

        // New tuples for segment 3 are guarded on the input.
        op.on_tuple(0, tuple(20, 3, 99.0), &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 1, "group not recreated");
        op.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("segment").unwrap(), 4);
    }

    #[test]
    fn f1_guard_output_mode_keeps_aggregating_but_suppresses_results() {
        let mut op = avg_per_segment().with_feedback_mode(FeedbackMode::GuardOutput);
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "F1 does not propagate");
        op.on_tuple(0, tuple(10, 3, 40.0), &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 1, "F1 still aggregates the group");
        op.on_flush(&mut ctx).unwrap();
        assert!(emitted_tuples(&mut ctx).is_empty(), "but its result is suppressed");
    }

    #[test]
    fn f0_ignore_mode_is_feedback_unaware() {
        let mut op = avg_per_segment().with_feedback_mode(FeedbackMode::Ignore);
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        op.on_tuple(0, tuple(10, 3, 40.0), &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        assert_eq!(emitted_tuples(&mut ctx).len(), 1, "feedback ignored");
    }

    #[test]
    fn value_feedback_on_avg_only_guards_output() {
        // Section 3.5: AVERAGE at 51 may still drop below 50 — no purge allowed.
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 51.0), &mut ctx).unwrap();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("avg", PatternItem::Ge(Value::Float(50.0)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 1, "no purge for non-monotone aggregate");
        // More input drags the average below 50 → result must appear.
        op.on_tuple(0, tuple(20, 1, 9.0), &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].float("avg").unwrap(), 30.0);
    }

    #[test]
    fn value_feedback_on_max_purges_matching_windows() {
        let mut op = WindowAggregate::new(
            "MAX",
            schema(),
            "timestamp",
            StreamDuration::from_secs(60),
            &["segment"],
            AggregateFunction::Max("speed".into()),
        )
        .unwrap();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 55.0), &mut ctx).unwrap(); // partial max 55 ≥ 50
        op.on_tuple(0, tuple(10, 2, 20.0), &mut ctx).unwrap(); // partial max 20
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("max", PatternItem::Ge(Value::Float(50.0)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 1, "matching window closed");
        // Tuples for the purged group are guarded; the surviving group closes
        // below the threshold and is emitted.
        op.on_tuple(0, tuple(20, 1, 10.0), &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("segment").unwrap(), 2);
    }

    #[test]
    fn demanded_feedback_emits_partial_results() {
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(11, 2, 80.0), &mut ctx).unwrap();
        let fb = FeedbackPunctuation::demanded(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(1)))],
            )
            .unwrap(),
            "client",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1, "partial result for the demanded segment only");
        assert_eq!(out[0].float("avg").unwrap(), 40.0);
        assert_eq!(op.open_groups(), 2, "state is kept; partials are extra");
    }

    #[test]
    fn request_results_emits_everything_partial() {
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(11, 2, 80.0), &mut ctx).unwrap();
        op.on_request_results(0, &mut ctx).unwrap();
        assert_eq!(emitted_tuples(&mut ctx).len(), 2);
    }

    #[test]
    fn on_page_classifies_batches_against_input_guards() {
        use dsms_engine::Page;
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        // Mount a group guard on segment 3 (purges state, guards input).
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "MAP",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        ctx.take_feedback();
        // A page entirely of segment 3 is suppressed wholesale: no state.
        let covered = Page::from_items(vec![
            StreamItem::Tuple(tuple(10, 3, 40.0)),
            StreamItem::Tuple(tuple(11, 3, 50.0)),
        ]);
        op.on_page(0, covered, &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 0);
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2);
        assert_eq!(stats.batches_summary_conclusive, 1);
        // A page provably clear of the guard folds without per-tuple probes.
        let clear = Page::from_items(vec![
            StreamItem::Tuple(tuple(10, 5, 40.0)),
            StreamItem::Tuple(tuple(11, 6, 60.0)),
        ]);
        op.on_page(0, clear, &mut ctx).unwrap();
        assert_eq!(op.open_groups(), 2);
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2, "nothing new suppressed");
        assert_eq!(stats.batches_summary_conclusive, 2);
        // A straddling page falls back to the exact per-tuple path.
        let straddling = Page::from_items(vec![
            StreamItem::Tuple(tuple(12, 3, 40.0)),
            StreamItem::Tuple(tuple(12, 5, 80.0)),
        ]);
        op.on_page(0, straddling, &mut ctx).unwrap();
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 3, "per-tuple fallback suppressed segment 3");
        assert_eq!(stats.batches_summary_fallback, 1);
    }

    #[test]
    fn state_export_import_round_trips_partial_aggregates() {
        let mut source = avg_per_segment();
        let mut ctx = OperatorContext::new();
        source.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        source.on_tuple(0, tuple(20, 1, 60.0), &mut ctx).unwrap();
        source.on_tuple(0, tuple(70, 2, 30.0), &mut ctx).unwrap();
        let entries = source.export_state();
        assert_eq!(entries.len(), 2, "one entry per open (window, group)");
        assert_eq!(source.open_groups(), 0, "export drains the state");

        // Split the entries by hash route and reinstall on two fresh replicas.
        let mut replicas = [avg_per_segment(), avg_per_segment()];
        for entry in entries {
            let route = crate::elastic::route_values(&entry.key, 2);
            replicas[route].import_state(vec![entry]).unwrap();
        }
        let mut merged: Vec<Tuple> = Vec::new();
        for replica in &mut replicas {
            replica.on_flush(&mut ctx).unwrap();
            merged.extend(emitted_tuples(&mut ctx));
        }
        merged.sort_by_key(|t| t.int("segment").unwrap());
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].float("avg").unwrap(), 50.0, "segment 1 partial moved whole");
        assert_eq!(merged[1].float("avg").unwrap(), 30.0);
    }

    #[test]
    fn importing_foreign_state_fails_loudly() {
        let mut op = avg_per_segment();
        let entry = StateEntry { key: vec![Value::Int(1)], payload: Box::new("not a partial") };
        assert!(op.import_state(vec![entry]).is_err());
    }

    #[test]
    fn output_punctuation_is_emitted_on_window_close() {
        let mut op = avg_per_segment();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(10, 1, 40.0), &mut ctx).unwrap();
        op.on_punctuation(0, progress(59), &mut ctx).unwrap();
        let punct_count = ctx
            .take_emitted()
            .iter()
            .filter(|(_, item)| matches!(item, StreamItem::Punctuation(_)))
            .count();
        assert_eq!(punct_count, 1);
    }
}
