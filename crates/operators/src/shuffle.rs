//! SHUFFLE: hash-partition a stream across N replica outputs.
//!
//! The data-parallel half of a partitioned stage (Röger & Mayer's operator
//! replication): every tuple is routed to output `hash(key) mod N`, so all
//! tuples sharing a key land on the same replica and a stateful operator
//! partitioned on its group key computes exactly what its single-replica
//! version would.
//!
//! Control flows treat the fan-out differently from data:
//!
//! * **Embedded punctuation is broadcast** to all N outputs.  A punctuation
//!   asserts completeness of a subset of the whole stream; each partition is
//!   a subset of that stream, so the assertion holds on every partition and
//!   every replica needs it to close windows.
//! * **Feedback punctuation is lattice-merged.**  A tuple routes to exactly
//!   one replica and the pattern language cannot express the hash route, so
//!   feedback from one replica must not cross toward the source alone: the
//!   shuffle runs each assertion through a [`FeedbackMerge`] and relays
//!   upstream only
//!   once **every** replica has asserted it (exactly, or as a disorder-bound
//!   meet).  The released subset is also mounted as an input guard, so the
//!   shuffle stops routing tuples the whole replica group has disclaimed.

use crate::elastic::ElasticController;
use dsms_engine::{EngineError, EngineResult, Operator, OperatorContext, StateEntry, StreamItem};
use dsms_feedback::{
    BatchGuardDecision, FeedbackMerge, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles,
    GuardDecision,
};
use dsms_punctuation::{Punctuation, StageDirective};
use dsms_types::{FixedHasher, SchemaRef, Tuple};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A resize handshake in flight: the shuffle has cut the stream with Migrate
/// markers and is buffering its input until every replica acknowledges.
struct PendingResize {
    epoch: u64,
    target: usize,
    acks: Vec<bool>,
    buffer: Vec<StreamItem>,
}

/// Elastic-mode state: the stage coordinator role of the shuffle (see
/// [`crate::elastic`] for the protocol).
struct ElasticShuffle {
    controller: Arc<ElasticController>,
    /// Current routing width: tuples route to outputs `0..active`.
    active: usize,
    pending: Option<PendingResize>,
    /// Highest epoch a handshake was started for (dedupes relayed copies of
    /// the same Resize directive).
    last_epoch: u64,
    /// End-of-stream reached: no new handshake may start.
    flushed: bool,
}

/// Hash-partitions one input stream across `partitions` outputs on a key.
pub struct Shuffle {
    name: String,
    schema: SchemaRef,
    key: Vec<String>,
    key_indices: Vec<usize>,
    partitions: usize,
    merge: FeedbackMerge,
    registry: FeedbackRegistry,
    elastic: Option<ElasticShuffle>,
}

impl Shuffle {
    /// Creates a shuffle routing on the named key attributes.  Fails if a key
    /// attribute does not exist in `schema` or if `key` is empty.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        key: &[&str],
        partitions: usize,
    ) -> EngineResult<Self> {
        let name = name.into();
        if key.is_empty() {
            return Err(EngineError::InvalidPlan {
                detail: format!("shuffle `{name}` needs at least one key attribute"),
            });
        }
        let key_indices =
            key.iter().map(|attr| schema.index_of(attr)).collect::<Result<Vec<_>, _>>().map_err(
                |err| EngineError::InvalidPlan { detail: format!("shuffle `{name}` key: {err}") },
            )?;
        let partitions = partitions.max(1);
        Ok(Shuffle {
            merge: FeedbackMerge::new(partitions),
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            key: key.iter().map(|k| k.to_string()).collect(),
            key_indices,
            partitions,
            elastic: None,
        })
    }

    /// Makes the shuffle the coordinator of an elastic stage: `partitions`
    /// becomes the *maximum* width, routing starts at `initial` active
    /// replicas (clamped to `1..=partitions`), and resize directives arriving
    /// as feedback drive the migration handshake (see [`crate::elastic`]).
    /// Dormant replicas stay connected but receive only migration markers.
    pub fn with_elastic(mut self, controller: Arc<ElasticController>, initial: usize) -> Self {
        let active = initial.clamp(1, self.partitions);
        self.merge.set_active(&crate::elastic::membership(active, self.partitions));
        self.elastic = Some(ElasticShuffle {
            controller,
            active,
            pending: None,
            last_epoch: 0,
            flushed: false,
        });
        self
    }

    /// The number of replicas currently receiving data (`partitions` when the
    /// shuffle is not elastic).
    pub fn active(&self) -> usize {
        self.elastic.as_ref().map(|e| e.active).unwrap_or(self.partitions)
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The key attributes routing is hashed on.
    pub fn key(&self) -> &[String] {
        &self.key
    }

    /// Number of partitions (equals the number of output ports).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The output port (partition) the given tuple routes to.  Genuinely
    /// deterministic across runs, machines, *and* Rust releases: routing uses
    /// the crate-owned fixed-seed [`FixedHasher`], not the std
    /// `DefaultHasher` (whose algorithm and keys carry no cross-release
    /// stability guarantee).  The hasher has no per-instance key schedule,
    /// so the per-tuple construction here is free.  Fails loudly on a tuple
    /// narrower than the construction-time schema — silently hashing fewer
    /// key values would break the same-key-same-replica guarantee the whole
    /// rewrite rests on.
    pub fn partition_of(&self, tuple: &Tuple) -> EngineResult<usize> {
        Ok((self.key_hash(tuple)? % self.partitions as u64) as usize)
    }

    /// The fixed-seed hash of the tuple's key values, in key order.
    fn key_hash(&self, tuple: &Tuple) -> EngineResult<u64> {
        let mut hasher = FixedHasher::new();
        for &index in &self.key_indices {
            tuple.value(index).map_err(EngineError::from)?.hash(&mut hasher);
        }
        Ok(hasher.finish())
    }

    /// The output port the tuple routes to *right now*: the key hash reduced
    /// modulo the active width.  Identical to [`Shuffle::partition_of`] when
    /// the shuffle is not elastic (or running at full width).
    fn route_of(&self, tuple: &Tuple) -> EngineResult<usize> {
        Ok((self.key_hash(tuple)? % self.active() as u64) as usize)
    }

    /// Reacts to a stage directive arriving on the feedback channel: Resize
    /// opens a handshake (Migrate markers out, input buffering on), Ack
    /// progress-tracks it, and the last Ack commits.
    fn on_stage_directive(
        &mut self,
        directive: StageDirective,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let Shuffle { elastic, partitions, schema, .. } = self;
        let Some(elastic) = elastic.as_mut() else {
            return Ok(());
        };
        match directive {
            StageDirective::Resize { epoch, partitions: requested } => {
                if elastic.flushed || elastic.pending.is_some() || epoch <= elastic.last_epoch {
                    return Ok(());
                }
                elastic.last_epoch = epoch;
                let target = requested.clamp(1, *partitions);
                if target == elastic.active {
                    return Ok(());
                }
                elastic.pending = Some(PendingResize {
                    epoch,
                    target,
                    acks: vec![false; *partitions],
                    buffer: Vec::new(),
                });
                // The cut: every replica (dormant ones included) sees the
                // marker after all earlier routed tuples.
                for port in 0..*partitions {
                    ctx.emit_punctuation(
                        port,
                        Punctuation::directive(
                            schema.clone(),
                            StageDirective::Migrate { epoch, partitions: target },
                        ),
                    );
                }
            }
            StageDirective::Ack { epoch, replica } => {
                let Some(pending) = elastic.pending.as_mut() else {
                    return Ok(());
                };
                if pending.epoch != epoch || replica >= pending.acks.len() {
                    return Ok(());
                }
                pending.acks[replica] = true;
                if pending.acks.iter().all(|acked| *acked) {
                    let target = pending.target;
                    self.finish_resize(target, false, ctx)?;
                }
            }
            // Migrate and Commit are data-channel markers the shuffle emits,
            // never receives.
            StageDirective::Migrate { .. } | StageDirective::Commit { .. } => {}
        }
        Ok(())
    }

    /// Ends the in-flight handshake at `width` (the target on commit, the
    /// old width on an end-of-stream cancel): emits Commit markers, replays
    /// the buffered input under the new routing, and switches the feedback
    /// lattice's membership.
    fn finish_resize(
        &mut self,
        width: usize,
        cancelled: bool,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let (epoch, buffer) = {
            let elastic = self.elastic.as_mut().expect("finish_resize requires elastic mode");
            let pending = elastic.pending.take().expect("a handshake is in flight");
            elastic.active = width;
            (pending.epoch, pending.buffer)
        };
        for port in 0..self.partitions {
            ctx.emit_punctuation(
                port,
                Punctuation::directive(
                    self.schema.clone(),
                    StageDirective::Commit { epoch, partitions: width },
                ),
            );
        }
        // Replay the input held back during the handshake: per-key order is
        // preserved (the buffer is FIFO), only the route changes.
        for item in buffer {
            match item {
                StreamItem::Tuple(tuple) => {
                    let route = self.route_of(&tuple)?;
                    ctx.emit(route, tuple);
                }
                StreamItem::Punctuation(punctuation) => {
                    for port in 0..width {
                        ctx.emit_punctuation(port, punctuation.clone());
                    }
                }
            }
        }
        // Unanimity is now over the new replica set; release any lattice
        // rounds a retired replica was blocking.
        let released = self.merge.set_active(&crate::elastic::membership(width, self.partitions));
        for merged in released {
            self.release_merged(merged, ctx);
        }
        let controller = &self.elastic.as_ref().expect("elastic mode").controller;
        if cancelled {
            controller.record_cancel();
        } else {
            controller.record_resize(epoch, width);
        }
        Ok(())
    }

    /// Relays a unanimously asserted subset upstream and guards the input
    /// with it.
    fn release_merged(&mut self, merged: FeedbackPunctuation, ctx: &mut OperatorContext) {
        self.registry.stats_mut().relayed.record(merged.intent());
        let relayed = merged.relay(merged.pattern().clone(), &self.name);
        let _ = self.registry.register(merged);
        ctx.send_feedback(0, relayed);
    }
}

impl Operator for Shuffle {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        self.partitions
    }

    fn must_connect_all_outputs(&self) -> bool {
        // An unconnected partition would silently drop its slice of the hash
        // space; `QueryPlan::validate` turns that into a plan error.
        true
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        if let Some(elastic) = self.elastic.as_mut() {
            elastic.controller.report_load(ctx.queue_depth());
            if let Some(pending) = elastic.pending.as_mut() {
                pending.buffer.push(StreamItem::Tuple(tuple));
                return Ok(());
            }
        }
        let route = self.route_of(&tuple)?;
        ctx.emit(route, tuple);
        Ok(())
    }

    /// Columnar kernel: hash-routing reads only the key columns, so the
    /// whole page is first classified against the input guards via column
    /// summaries; a guard-free (or provably clear) page then routes its row
    /// lane in one tight loop with no per-tuple guard probes.  Routing itself
    /// stays per-row [`Shuffle::partition_of`] — the pinned routing digest
    /// must not change.
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, Page, StreamItem};
    /// use dsms_feedback::FeedbackPunctuation;
    /// use dsms_operators::Shuffle;
    /// use dsms_punctuation::{Pattern, PatternItem};
    /// use dsms_types::{DataType, Schema, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("segment", DataType::Int)]);
    /// let mut shuffle = Shuffle::new("route", schema.clone(), &["segment"], 2).unwrap();
    /// let mut ctx = OperatorContext::new();
    /// // A shuffle guard activates only once *every* partition asserts it.
    /// for port in 0..2 {
    ///     let guard = Pattern::for_attributes(
    ///         schema.clone(),
    ///         &[("segment", PatternItem::Eq(Value::Int(5)))],
    ///     )
    ///     .unwrap();
    ///     shuffle.on_feedback(port, FeedbackPunctuation::assumed(guard, "sink"), &mut ctx).unwrap();
    /// }
    ///
    /// let row = |seg| StreamItem::Tuple(Tuple::new(schema.clone(), vec![Value::Int(seg)]));
    /// // A page entirely of segment 5 is dropped before any hashing.
    /// shuffle.on_page(0, Page::from_items(vec![row(5), row(5)]), &mut ctx).unwrap();
    /// assert_eq!(ctx.take_emitted().len(), 0);
    /// // A provably clear page routes each row via `partition_of`.
    /// shuffle.on_page(0, Page::from_items(vec![row(7), row(8)]), &mut ctx).unwrap();
    /// for (port, item) in ctx.take_emitted() {
    ///     assert_eq!(port, shuffle.partition_of(item.as_tuple().unwrap()).unwrap());
    /// }
    /// ```
    fn on_page(
        &mut self,
        input: usize,
        page: dsms_engine::Page,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(elastic) = self.elastic.as_mut() {
            elastic.controller.report_load(ctx.queue_depth());
            if elastic.pending.is_some() {
                // Mid-handshake: everything funnels through the buffering
                // per-item paths (migration is short; the columnar fast path
                // resumes at commit).
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
                return Ok(());
            }
        }
        let decision = self.registry.decide_batch(page.tuple_count(), |c| page.column_summary(c));
        match decision {
            BatchGuardDecision::SuppressAll => {
                for item in page {
                    if let StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
            }
            BatchGuardDecision::PassAll => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => {
                            let route = self.route_of(&tuple)?;
                            ctx.emit(route, tuple);
                        }
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
            BatchGuardDecision::Mixed => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(elastic) = self.elastic.as_mut() {
            if let Some(pending) = elastic.pending.as_mut() {
                // Hold punctuation back with the tuples so the replayed
                // stream preserves its original interleaving.
                pending.buffer.push(StreamItem::Punctuation(punctuation));
                return Ok(());
            }
            // Elastic mode fans punctuation out per active port: a dormant
            // replica receives no assertions, so the merge's membership-aware
            // watermark must not wait on it.
            for port in 0..elastic.active {
                ctx.emit_punctuation(port, punctuation.clone());
            }
            return Ok(());
        }
        ctx.broadcast_punctuation(punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(directive) = feedback.stage_directive() {
            // Stage directives steer the handshake; they never enter the
            // assertion lattice (a wildcard "vote" from the controller would
            // corrupt unanimity rounds).
            return self.on_stage_directive(directive, ctx);
        }
        if let Some(merged) = self.merge.assert_from(output, feedback) {
            self.release_merged(merged, ctx);
        }
        Ok(())
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        // End-of-stream inside a handshake: cancel rather than commit.  The
        // Commit marker re-installs the *old* width, the replay uses the old
        // routing, and every parked group reclaims to its exporter — the run
        // is indistinguishable from one where the resize never happened.
        let cancel_at = self.elastic.as_mut().and_then(|elastic| {
            elastic.flushed = true;
            elastic.pending.is_some().then_some(elastic.active)
        });
        if let Some(old_width) = cancel_at {
            self.finish_resize(old_width, true, ctx)?;
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    fn elastic_stats(&self) -> Option<dsms_engine::ElasticStats> {
        self.elastic.as_ref().map(|elastic| elastic.controller.stats())
    }

    /// Restartable only in fixed-width mode: an elastic shuffle's resize
    /// handshake mutates the shared [`ElasticController`], so replaying the
    /// directives that drove it would double-apply membership changes.
    fn restartable(&self) -> bool {
        self.elastic.is_none()
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(vec![StateEntry {
            key: Vec::new(),
            payload: Box::new(ShuffleSnapshot {
                merge: self.merge.clone(),
                registry: self.registry.clone(),
            }),
        }])
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.merge = FeedbackMerge::new(self.partitions);
        self.registry = FeedbackRegistry::new(self.name.clone());
        for entry in entries {
            match entry.payload.downcast::<ShuffleSnapshot>() {
                Ok(snapshot) => {
                    self.merge = snapshot.merge;
                    self.registry = snapshot.registry;
                }
                Err(_) => {
                    return Err(EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: "checkpoint entry is not a shuffle snapshot".into(),
                    })
                }
            }
        }
        Ok(())
    }
}

/// The feedback lattice and guard state captured at a checkpoint so a
/// restarted fixed-width [`Shuffle`] keeps the replica assertions it had
/// already collected.
struct ShuffleSnapshot {
    merge: FeedbackMerge,
    registry: FeedbackRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(50.0)],
        )
    }

    fn segment_eq(seg: i64) -> FeedbackPunctuation {
        FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))])
                .unwrap(),
            "replica",
        )
    }

    #[test]
    fn routing_is_deterministic_and_key_consistent() {
        let op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        for seg in 0..32 {
            let p = op.partition_of(&tuple(0, seg)).unwrap();
            assert!(p < 4);
            assert_eq!(p, op.partition_of(&tuple(999, seg)).unwrap(), "same key, same partition");
        }
        let spread: std::collections::HashSet<usize> =
            (0..32).map(|seg| op.partition_of(&tuple(0, seg)).unwrap()).collect();
        assert!(spread.len() > 1, "keys spread across partitions");
    }

    #[test]
    fn routing_digest_is_pinned() {
        // The hash route is an observable contract: replica state layout and
        // recovery both depend on `partition_of` never silently changing.
        // This vector was computed from the FixedHasher algorithm spec (seed,
        // Fx accumulate, Murmur3 finalize); it must be identical on every
        // machine, run, and Rust release.  If it changes, the routing hash
        // changed — that is a breaking change to partitioned state, not a
        // constant to refresh casually.
        let op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        let route: Vec<usize> =
            (0..32).map(|seg| op.partition_of(&tuple(0, seg)).unwrap()).collect();
        assert_eq!(
            route,
            vec![
                1, 1, 3, 1, 1, 3, 2, 2, 0, 2, 2, 1, 3, 0, 0, 2, 2, 3, 0, 1, 1, 2, 1, 0, 1, 1, 0, 0,
                3, 3, 1, 2
            ]
        );
    }

    #[test]
    fn tuples_follow_the_hash_route() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 3).unwrap();
        assert_eq!(op.outputs(), 3);
        assert!(op.must_connect_all_outputs());
        let mut ctx = OperatorContext::new();
        for seg in 0..30 {
            op.on_tuple(0, tuple(seg, seg), &mut ctx).unwrap();
        }
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 30, "every tuple routed exactly once");
        for (port, item) in emitted {
            let t = item.as_tuple().expect("data, not punctuation");
            assert_eq!(port, op.partition_of(t).unwrap());
        }
    }

    #[test]
    fn punctuation_is_broadcast_not_routed() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        let mut ctx = OperatorContext::new();
        let p = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(60)).unwrap();
        op.on_punctuation(0, p.clone(), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "not a per-port emission");
        let broadcast = ctx.take_broadcast_punctuations();
        assert_eq!(broadcast.len(), 1);
        assert_eq!(broadcast[0].watermark_for("timestamp"), p.watermark_for("timestamp"));
    }

    #[test]
    fn feedback_crosses_only_on_unanimity_and_guards_the_input() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 3).unwrap();
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, segment_eq(5), &mut ctx).unwrap();
        op.on_feedback(2, segment_eq(5), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "two of three replicas is not unanimity");
        // The subset is not yet guarded: segment-5 tuples still route.
        op.on_tuple(0, tuple(0, 5), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);

        op.on_feedback(1, segment_eq(5), &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1, "third replica completes the merge");
        assert_eq!(relayed[0].0, 0, "relayed on the single input port");
        assert_eq!(relayed[0].1.issuer(), "shuffle");

        // Now guarded: the whole replica group disclaimed segment 5.
        op.on_tuple(0, tuple(1, 5), &mut ctx).unwrap();
        op.on_tuple(0, tuple(1, 6), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].1.as_tuple().unwrap().int("segment").unwrap(), 6);
        assert_eq!(op.feedback_stats().unwrap().tuples_suppressed, 1);
    }

    #[test]
    fn on_page_routes_clear_batches_and_drops_covered_ones() {
        use dsms_engine::Page;
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 3).unwrap();
        let mut ctx = OperatorContext::new();
        // Mount a unanimous guard on segment 5.
        for port in 0..3 {
            op.on_feedback(port, segment_eq(5), &mut ctx).unwrap();
        }
        ctx.take_feedback();
        // A page entirely of segment 5 is dropped wholesale; the punctuation
        // is still broadcast.
        let covered = Page::from_items(vec![
            StreamItem::Tuple(tuple(0, 5)),
            StreamItem::Tuple(tuple(1, 5)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(60)).unwrap(),
            ),
        ]);
        op.on_page(0, covered, &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
        assert_eq!(ctx.take_broadcast_punctuations().len(), 1);
        // A page provably clear of the guard routes every row on the same
        // route `partition_of` computes.
        let clear = Page::from_items(vec![
            StreamItem::Tuple(tuple(0, 6)),
            StreamItem::Tuple(tuple(1, 7)),
            StreamItem::Tuple(tuple(2, 8)),
        ]);
        op.on_page(0, clear, &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 3);
        for (port, item) in emitted {
            assert_eq!(port, op.partition_of(item.as_tuple().unwrap()).unwrap());
        }
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2);
        assert_eq!(stats.batches_summary_conclusive, 2);
    }

    #[test]
    fn construction_rejects_bad_keys() {
        assert!(Shuffle::new("s", schema(), &[], 2).is_err(), "empty key");
        assert!(Shuffle::new("s", schema(), &["no_such"], 2).is_err(), "unknown attribute");
        let s = Shuffle::new("s", schema(), &["segment"], 0).unwrap();
        assert_eq!(s.partitions(), 1, "partition count clamped to 1");
        assert_eq!(s.key(), &["segment".to_string()]);
        assert_eq!(s.schema().arity(), 3);
    }
}
