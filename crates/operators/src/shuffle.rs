//! SHUFFLE: hash-partition a stream across N replica outputs.
//!
//! The data-parallel half of a partitioned stage (Röger & Mayer's operator
//! replication): every tuple is routed to output `hash(key) mod N`, so all
//! tuples sharing a key land on the same replica and a stateful operator
//! partitioned on its group key computes exactly what its single-replica
//! version would.
//!
//! Control flows treat the fan-out differently from data:
//!
//! * **Embedded punctuation is broadcast** to all N outputs.  A punctuation
//!   asserts completeness of a subset of the whole stream; each partition is
//!   a subset of that stream, so the assertion holds on every partition and
//!   every replica needs it to close windows.
//! * **Feedback punctuation is lattice-merged.**  A tuple routes to exactly
//!   one replica and the pattern language cannot express the hash route, so
//!   feedback from one replica must not cross toward the source alone: the
//!   shuffle runs each assertion through a [`FeedbackMerge`] and relays
//!   upstream only
//!   once **every** replica has asserted it (exactly, or as a disorder-bound
//!   meet).  The released subset is also mounted as an input guard, so the
//!   shuffle stops routing tuples the whole replica group has disclaimed.

use dsms_engine::{EngineError, EngineResult, Operator, OperatorContext};
use dsms_feedback::{
    FeedbackMerge, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{FixedHasher, SchemaRef, Tuple};
use std::hash::{Hash, Hasher};

/// Hash-partitions one input stream across `partitions` outputs on a key.
pub struct Shuffle {
    name: String,
    schema: SchemaRef,
    key: Vec<String>,
    key_indices: Vec<usize>,
    partitions: usize,
    merge: FeedbackMerge,
    registry: FeedbackRegistry,
}

impl Shuffle {
    /// Creates a shuffle routing on the named key attributes.  Fails if a key
    /// attribute does not exist in `schema` or if `key` is empty.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        key: &[&str],
        partitions: usize,
    ) -> EngineResult<Self> {
        let name = name.into();
        if key.is_empty() {
            return Err(EngineError::InvalidPlan {
                detail: format!("shuffle `{name}` needs at least one key attribute"),
            });
        }
        let key_indices =
            key.iter().map(|attr| schema.index_of(attr)).collect::<Result<Vec<_>, _>>().map_err(
                |err| EngineError::InvalidPlan { detail: format!("shuffle `{name}` key: {err}") },
            )?;
        let partitions = partitions.max(1);
        Ok(Shuffle {
            merge: FeedbackMerge::new(partitions),
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            key: key.iter().map(|k| k.to_string()).collect(),
            key_indices,
            partitions,
        })
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The key attributes routing is hashed on.
    pub fn key(&self) -> &[String] {
        &self.key
    }

    /// Number of partitions (equals the number of output ports).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The output port (partition) the given tuple routes to.  Genuinely
    /// deterministic across runs, machines, *and* Rust releases: routing uses
    /// the crate-owned fixed-seed [`FixedHasher`], not the std
    /// `DefaultHasher` (whose algorithm and keys carry no cross-release
    /// stability guarantee).  The hasher has no per-instance key schedule,
    /// so the per-tuple construction here is free.  Fails loudly on a tuple
    /// narrower than the construction-time schema — silently hashing fewer
    /// key values would break the same-key-same-replica guarantee the whole
    /// rewrite rests on.
    pub fn partition_of(&self, tuple: &Tuple) -> EngineResult<usize> {
        let mut hasher = FixedHasher::new();
        for &index in &self.key_indices {
            tuple.value(index).map_err(EngineError::from)?.hash(&mut hasher);
        }
        Ok((hasher.finish() % self.partitions as u64) as usize)
    }
}

impl Operator for Shuffle {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        self.partitions
    }

    fn must_connect_all_outputs(&self) -> bool {
        // An unconnected partition would silently drop its slice of the hash
        // space; `QueryPlan::validate` turns that into a plan error.
        true
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        let partition = self.partition_of(&tuple)?;
        ctx.emit(partition, tuple);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        ctx.broadcast_punctuation(punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(merged) = self.merge.assert_from(output, feedback) {
            self.registry.stats_mut().relayed.record(merged.intent());
            let relayed = merged.relay(merged.pattern().clone(), &self.name);
            // Guard our own input with the unanimously asserted subset, then
            // relay it toward the source.
            let _ = self.registry.register(merged);
            ctx.send_feedback(0, relayed);
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(50.0)],
        )
    }

    fn segment_eq(seg: i64) -> FeedbackPunctuation {
        FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))])
                .unwrap(),
            "replica",
        )
    }

    #[test]
    fn routing_is_deterministic_and_key_consistent() {
        let op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        for seg in 0..32 {
            let p = op.partition_of(&tuple(0, seg)).unwrap();
            assert!(p < 4);
            assert_eq!(p, op.partition_of(&tuple(999, seg)).unwrap(), "same key, same partition");
        }
        let spread: std::collections::HashSet<usize> =
            (0..32).map(|seg| op.partition_of(&tuple(0, seg)).unwrap()).collect();
        assert!(spread.len() > 1, "keys spread across partitions");
    }

    #[test]
    fn routing_digest_is_pinned() {
        // The hash route is an observable contract: replica state layout and
        // recovery both depend on `partition_of` never silently changing.
        // This vector was computed from the FixedHasher algorithm spec (seed,
        // Fx accumulate, Murmur3 finalize); it must be identical on every
        // machine, run, and Rust release.  If it changes, the routing hash
        // changed — that is a breaking change to partitioned state, not a
        // constant to refresh casually.
        let op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        let route: Vec<usize> =
            (0..32).map(|seg| op.partition_of(&tuple(0, seg)).unwrap()).collect();
        assert_eq!(
            route,
            vec![
                1, 1, 3, 1, 1, 3, 2, 2, 0, 2, 2, 1, 3, 0, 0, 2, 2, 3, 0, 1, 1, 2, 1, 0, 1, 1, 0, 0,
                3, 3, 1, 2
            ]
        );
    }

    #[test]
    fn tuples_follow_the_hash_route() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 3).unwrap();
        assert_eq!(op.outputs(), 3);
        assert!(op.must_connect_all_outputs());
        let mut ctx = OperatorContext::new();
        for seg in 0..30 {
            op.on_tuple(0, tuple(seg, seg), &mut ctx).unwrap();
        }
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 30, "every tuple routed exactly once");
        for (port, item) in emitted {
            let t = item.as_tuple().expect("data, not punctuation");
            assert_eq!(port, op.partition_of(t).unwrap());
        }
    }

    #[test]
    fn punctuation_is_broadcast_not_routed() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 4).unwrap();
        let mut ctx = OperatorContext::new();
        let p = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(60)).unwrap();
        op.on_punctuation(0, p.clone(), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "not a per-port emission");
        let broadcast = ctx.take_broadcast_punctuations();
        assert_eq!(broadcast.len(), 1);
        assert_eq!(broadcast[0].watermark_for("timestamp"), p.watermark_for("timestamp"));
    }

    #[test]
    fn feedback_crosses_only_on_unanimity_and_guards_the_input() {
        let mut op = Shuffle::new("shuffle", schema(), &["segment"], 3).unwrap();
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, segment_eq(5), &mut ctx).unwrap();
        op.on_feedback(2, segment_eq(5), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "two of three replicas is not unanimity");
        // The subset is not yet guarded: segment-5 tuples still route.
        op.on_tuple(0, tuple(0, 5), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);

        op.on_feedback(1, segment_eq(5), &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1, "third replica completes the merge");
        assert_eq!(relayed[0].0, 0, "relayed on the single input port");
        assert_eq!(relayed[0].1.issuer(), "shuffle");

        // Now guarded: the whole replica group disclaimed segment 5.
        op.on_tuple(0, tuple(1, 5), &mut ctx).unwrap();
        op.on_tuple(0, tuple(1, 6), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].1.as_tuple().unwrap().int("segment").unwrap(), 6);
        assert_eq!(op.feedback_stats().unwrap().tuples_suppressed, 1);
    }

    #[test]
    fn construction_rejects_bad_keys() {
        assert!(Shuffle::new("s", schema(), &[], 2).is_err(), "empty key");
        assert!(Shuffle::new("s", schema(), &["no_such"], 2).is_err(), "unknown attribute");
        let s = Shuffle::new("s", schema(), &["segment"], 0).unwrap();
        assert_eq!(s.partitions(), 1, "partition count clamped to 1");
        assert_eq!(s.key(), &["segment".to_string()]);
        assert_eq!(s.schema().arity(), 3);
    }
}
