//! IMPATIENT JOIN: a producer of *desired* punctuation (paper Section 3.4).
//!
//! The impatient join is eager to produce results: whenever it holds
//! build-side data (e.g. scarce probe-vehicle readings) for some key in the
//! current window, it tells the other input "I have vehicle data for segment
//! #3 and period #7 — send me matching tuples first", expressed as desired
//! punctuation `?[period, segment, *]`.  Prioritizing those tuples upstream
//! does not change the query result, only the production order — exactly the
//! semantics of desired feedback.

use crate::join::SymmetricHashJoin;
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles, FeedbackStats};
use dsms_punctuation::{Pattern, PatternItem, Punctuation};
use dsms_types::{SchemaRef, Tuple, Value};
use std::collections::HashSet;

/// A symmetric hash join that requests prioritized delivery of probe tuples
/// matching keys it already holds on the build side.
pub struct ImpatientJoin {
    name: String,
    inner: SymmetricHashJoin,
    probe_schema: SchemaRef,
    key_attribute: String,
    /// Index of `key_attribute` in the build side's (input 0) schema,
    /// resolved once at construction so the per-tuple key extraction is a
    /// slice access instead of a name lookup.
    build_key_index: Option<usize>,
    /// Keys already requested, so each is asked for at most once.
    requested: HashSet<Value>,
    /// How many new keys to accumulate before sending one desired punctuation.
    batch: usize,
    pending: Vec<Value>,
    desired_issued: u64,
}

impl ImpatientJoin {
    /// Wraps a join.  `key_attribute` is the join key to request by; the
    /// desired punctuation is expressed over `probe_schema` (the schema of
    /// input 1, the prioritized side).
    pub fn new(
        name: impl Into<String>,
        inner: SymmetricHashJoin,
        probe_schema: SchemaRef,
        key_attribute: impl Into<String>,
    ) -> Self {
        let key_attribute = key_attribute.into();
        let build_key_index =
            inner.schema_in(0).and_then(|schema| schema.index_of(&key_attribute).ok());
        ImpatientJoin {
            name: name.into(),
            inner,
            probe_schema,
            key_attribute,
            build_key_index,
            requested: HashSet::new(),
            batch: 1,
            pending: Vec::new(),
            desired_issued: 0,
        }
    }

    /// Sets how many new build keys are batched into one desired punctuation.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Number of desired punctuations issued.
    pub fn desired_issued(&self) -> u64 {
        self.desired_issued
    }

    fn flush_pending(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let keys = std::mem::take(&mut self.pending);
        let pattern = Pattern::for_attributes(
            self.probe_schema.clone(),
            &[(self.key_attribute.as_str(), PatternItem::InSet(keys))],
        )?;
        self.desired_issued += 1;
        ctx.send_feedback(1, FeedbackPunctuation::desired(pattern, &self.name));
        Ok(())
    }
}

impl Operator for ImpatientJoin {
    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles().with_producer()
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        self.inner.schema_out(output)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        2
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if input == 0 {
            // Build side: note the key (by precomputed index) and, once a
            // batch has accumulated, ask the probe side to prioritize those
            // keys.
            if let Some(key) = self.build_key_index.and_then(|i| tuple.values().get(i)).cloned() {
                if !key.is_null() && self.requested.insert(key.clone()) {
                    self.pending.push(key);
                    if self.pending.len() >= self.batch {
                        self.flush_pending(ctx)?;
                    }
                }
            }
        }
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // A window boundary is a natural point to flush a partial batch.
        self.flush_pending(ctx)?;
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.flush_pending(ctx)?;
        self.inner.on_flush(ctx)
    }

    fn feedback_stats(&self) -> Option<FeedbackStats> {
        let mut stats = self.inner.feedback_stats().unwrap_or_default();
        stats.issued.desired += self.desired_issued;
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_feedback::FeedbackIntent;
    use dsms_types::{DataType, Schema, StreamDuration, Timestamp};

    fn vehicle_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn sensor_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("volume", DataType::Float),
        ])
    }

    fn vehicle(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            vehicle_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(55.0)],
        )
    }

    fn impatient(batch: usize) -> ImpatientJoin {
        let inner = SymmetricHashJoin::new(
            "JOIN",
            vehicle_schema(),
            sensor_schema(),
            &["segment"],
            "timestamp",
            StreamDuration::from_secs(60),
        )
        .unwrap();
        ImpatientJoin::new("IMPATIENT-JOIN", inner, sensor_schema(), "segment").with_batch(batch)
    }

    #[test]
    fn build_side_keys_become_desired_punctuation() {
        let mut j = impatient(1);
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, vehicle(10, 3), &mut ctx).unwrap();
        let feedback = ctx.take_feedback();
        assert_eq!(feedback.len(), 1);
        assert_eq!(feedback[0].0, 1, "sent to the sensor (probe) input");
        assert_eq!(feedback[0].1.intent(), FeedbackIntent::Desired);
        let sensor3 = Tuple::new(
            sensor_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(1)), Value::Int(3), Value::Float(1.0)],
        );
        assert!(feedback[0].1.describes(&sensor3));
    }

    #[test]
    fn each_key_is_requested_once() {
        let mut j = impatient(1);
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, vehicle(10, 3), &mut ctx).unwrap();
        j.on_tuple(0, vehicle(11, 3), &mut ctx).unwrap();
        j.on_tuple(0, vehicle(12, 5), &mut ctx).unwrap();
        assert_eq!(ctx.take_feedback().len(), 2, "segments 3 and 5, each once");
        assert_eq!(j.desired_issued(), 2);
    }

    #[test]
    fn batching_accumulates_keys() {
        let mut j = impatient(3);
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, vehicle(10, 1), &mut ctx).unwrap();
        j.on_tuple(0, vehicle(11, 2), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "batch of 3 not reached");
        j.on_tuple(0, vehicle(12, 3), &mut ctx).unwrap();
        let feedback = ctx.take_feedback();
        assert_eq!(feedback.len(), 1);
        for seg in [1, 2, 3] {
            let t = Tuple::new(
                sensor_schema(),
                vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg), Value::Float(0.0)],
            );
            assert!(feedback[0].1.describes(&t));
        }
    }

    #[test]
    fn flush_sends_partial_batches() {
        let mut j = impatient(10);
        let mut ctx = OperatorContext::new();
        j.on_tuple(0, vehicle(10, 1), &mut ctx).unwrap();
        j.on_flush(&mut ctx).unwrap();
        assert_eq!(ctx.take_feedback().len(), 1);
    }
}
