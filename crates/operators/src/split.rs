//! SPLIT: content-based routing into two disjoint streams.
//!
//! The imputation plan (paper Example 3 / Figure 4a) filters the input into
//! two disjoint streams — tuples that need imputation (σC) and tuples that are
//! already clean (σ¬C).  `Split` implements that pair of filters as a single
//! two-output operator: output 0 receives tuples satisfying the condition,
//! output 1 the rest.  Punctuation is forwarded to *both* outputs, since a
//! subset declared complete in the input is complete in each routed stream.

use crate::common::TuplePredicate;
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles};
use dsms_punctuation::{Pattern, Punctuation};
use dsms_types::{SchemaRef, Tuple};

/// Routes tuples matching a condition to output 0 and the rest to output 1.
pub struct Split {
    name: String,
    schema: SchemaRef,
    condition: TuplePredicate,
    /// Assumed patterns received per output; a tuple routed to an output whose
    /// feedback describes it can be dropped (the consumer has assumed it away),
    /// which is stronger than DUPLICATE because the outputs are disjoint.
    assumed_per_output: Vec<Vec<Pattern>>,
    registry: FeedbackRegistry,
}

impl Split {
    /// Creates a split over `schema` with the given routing condition.
    pub fn new(name: impl Into<String>, schema: SchemaRef, condition: TuplePredicate) -> Self {
        let name = name.into();
        Split {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            condition,
            assumed_per_output: vec![Vec::new(), Vec::new()],
        }
    }

    /// The stream schema (identical on the input and both outputs).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn suppressed(&self, output: usize, tuple: &Tuple) -> bool {
        self.assumed_per_output[output].iter().any(|p| p.matches(tuple))
    }
}

impl Operator for Split {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        2
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let output = if self.condition.eval(&tuple) { 0 } else { 1 };
        if self.suppressed(output, &tuple) {
            self.registry.stats_mut().tuples_suppressed += 1;
            return Ok(());
        }
        ctx.emit(output, tuple);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        ctx.emit_punctuation(0, punctuation.clone());
        ctx.emit_punctuation(1, punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.registry.stats_mut().received.record(feedback.intent());
        if feedback.intent() != FeedbackIntent::Assumed {
            return Ok(());
        }
        if let Some(patterns) = self.assumed_per_output.get_mut(output) {
            patterns.push(feedback.pattern().clone());
        }
        // Unlike DUPLICATE, the split's outputs partition the input, so the
        // subset assumed away by one output is only producible on that output;
        // exploitation (dropping it before routing) is correct immediately.
        // Propagation upstream, however, is only safe when *both* outputs have
        // assumed it away — otherwise the antecedent would also stop producing
        // the other output's copy... which does not exist.  It is therefore
        // safe to propagate the *conjunction* of the feedback with the routing
        // condition; we conservatively propagate only when both outputs have
        // assumed the same subset (mirroring DUPLICATE) to avoid encoding the
        // routing predicate as a pattern.
        let on_both = self
            .assumed_per_output
            .iter()
            .all(|patterns| patterns.iter().any(|p| p.subsumes(feedback.pattern())));
        if on_both {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
            self.registry.stats_mut().relayed.record(feedback.intent());
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("speed", DataType::Float)])
    }

    fn dirty_tuple(ts: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Null])
    }

    fn clean_tuple(ts: i64, speed: f64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Float(speed)])
    }

    fn needs_imputation() -> Split {
        Split::new("split", schema(), TuplePredicate::new("speed is null", |t| t.has_null()))
    }

    #[test]
    fn split_routes_by_condition() {
        let mut op = needs_imputation();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, dirty_tuple(1), &mut ctx).unwrap();
        op.on_tuple(0, clean_tuple(2, 55.0), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].0, 0, "dirty tuple routed to the imputation path");
        assert_eq!(emitted[1].0, 1, "clean tuple routed to the clean path");
    }

    #[test]
    fn punctuation_goes_to_both_outputs() {
        let mut op = needs_imputation();
        let mut ctx = OperatorContext::new();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(1)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2);
        assert_ne!(emitted[0].0, emitted[1].0);
    }

    #[test]
    fn feedback_from_one_output_suppresses_only_that_route() {
        let mut op = needs_imputation();
        let mut ctx = OperatorContext::new();
        // The imputation path (output 0) assumes away everything before t=100.
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                schema(),
                &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(100))))],
            )
            .unwrap(),
            "IMPUTE",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "only one output has assumed the subset");

        op.on_tuple(0, dirty_tuple(50), &mut ctx).unwrap(); // suppressed (imputation path)
        op.on_tuple(0, clean_tuple(50, 60.0), &mut ctx).unwrap(); // clean path unaffected
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].0, 1);
        assert_eq!(op.feedback_stats().unwrap().tuples_suppressed, 1);
    }

    #[test]
    fn feedback_from_both_outputs_is_relayed() {
        let mut op = needs_imputation();
        let mut ctx = OperatorContext::new();
        let pattern = Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(100))))],
        )
        .unwrap();
        op.on_feedback(0, FeedbackPunctuation::assumed(pattern.clone(), "IMPUTE"), &mut ctx)
            .unwrap();
        op.on_feedback(1, FeedbackPunctuation::assumed(pattern, "PACE"), &mut ctx).unwrap();
        assert_eq!(ctx.take_feedback().len(), 1);
    }
}
