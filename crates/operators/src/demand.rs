//! ON-DEMAND result production (paper Example 4).
//!
//! In poll-based result production, a user or application requests results
//! when it wants them; results do not have to be produced when nobody is
//! looking.  The [`OnDemandGate`] sits just below the client: it buffers
//! results, releases them only when a result request (or demanded
//! punctuation) arrives from downstream, and *propagates the request through
//! the query tree* so antecedent operators (e.g. blocking aggregates) can also
//! produce what they have.

use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};
use std::collections::VecDeque;

/// A gate that holds results until they are requested.
pub struct OnDemandGate {
    name: String,
    schema: SchemaRef,
    buffer: VecDeque<Tuple>,
    /// Upper bound on buffered results; oldest results are dropped beyond it
    /// (the client was not interested in them while they were fresh).
    buffer_capacity: usize,
    dropped: u64,
    served_requests: u64,
    registry: FeedbackRegistry,
}

impl OnDemandGate {
    /// Creates a gate holding at most `buffer_capacity` pending results.
    pub fn new(name: impl Into<String>, schema: SchemaRef, buffer_capacity: usize) -> Self {
        let name = name.into();
        OnDemandGate {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            buffer: VecDeque::new(),
            buffer_capacity: buffer_capacity.max(1),
            dropped: 0,
            served_requests: 0,
        }
    }

    /// Number of buffered results dropped because nobody asked in time.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of result requests served.
    pub fn served_requests(&self) -> u64 {
        self.served_requests
    }

    /// Number of results currently pending.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn release_matching(
        &mut self,
        filter: Option<&FeedbackPunctuation>,
        ctx: &mut OperatorContext,
    ) {
        let mut kept = VecDeque::new();
        while let Some(t) = self.buffer.pop_front() {
            let release = filter.map(|f| f.describes(&t)).unwrap_or(true);
            if release {
                ctx.emit(0, t);
            } else {
                kept.push_back(t);
            }
        }
        self.buffer = kept;
    }
}

impl Operator for OnDemandGate {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.buffer.push_back(tuple);
        while self.buffer.len() > self.buffer_capacity {
            self.buffer.pop_front();
            self.dropped += 1;
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Punctuation still flows so downstream progress tracking works even
        // while results are withheld.
        ctx.emit_punctuation(0, punctuation);
        Ok(())
    }

    fn on_request_results(
        &mut self,
        _output: usize,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.served_requests += 1;
        self.release_matching(None, ctx);
        // Propagate the request through the query tree (Example 4): antecedent
        // operators such as blocking aggregates may emit partial results.
        ctx.request_results(0);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        match feedback.intent() {
            FeedbackIntent::Demanded => {
                // "I need this subset now": release matching buffered results
                // and pass the demand upstream.
                self.served_requests += 1;
                self.registry.stats_mut().partial_results += 1;
                self.release_matching(Some(&feedback), ctx);
                ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
            }
            FeedbackIntent::Assumed => {
                // Remove described results from the pending buffer and relay.
                let before = self.buffer.len();
                self.buffer.retain(|t| !feedback.describes(t));
                self.registry.stats_mut().tuples_suppressed += (before - self.buffer.len()) as u64;
                ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
                let _ = self.registry.register(feedback);
            }
            FeedbackIntent::Desired => {
                let _ = self.registry.register(feedback);
            }
        }
        Ok(())
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        // End of query: whatever is still pending is delivered.
        self.release_matching(None, ctx);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn tuple(seg: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg)])
    }

    fn emitted_tuples(ctx: &mut OperatorContext) -> Vec<Tuple> {
        ctx.take_emitted()
            .into_iter()
            .filter_map(|(_, item)| match item {
                StreamItem::Tuple(t) => Some(t),
                StreamItem::Punctuation(_) => None,
            })
            .collect()
    }

    #[test]
    fn results_are_withheld_until_requested() {
        let mut gate = OnDemandGate::new("gate", schema(), 100);
        let mut ctx = OperatorContext::new();
        gate.on_tuple(0, tuple(1), &mut ctx).unwrap();
        gate.on_tuple(0, tuple(2), &mut ctx).unwrap();
        assert!(emitted_tuples(&mut ctx).is_empty());
        assert_eq!(gate.pending(), 2);

        gate.on_request_results(0, &mut ctx).unwrap();
        assert_eq!(emitted_tuples(&mut ctx).len(), 2);
        assert_eq!(ctx.take_result_requests(), vec![0], "request propagated upstream");
        assert_eq!(gate.pending(), 0);
        assert_eq!(gate.served_requests(), 1);
    }

    #[test]
    fn demanded_feedback_releases_matching_subset_only() {
        let mut gate = OnDemandGate::new("gate", schema(), 100);
        let mut ctx = OperatorContext::new();
        for seg in [1, 2, 3] {
            gate.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        let demand = FeedbackPunctuation::demanded(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(2)))])
                .unwrap(),
            "client",
        );
        gate.on_feedback(0, demand, &mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("segment").unwrap(), 2);
        assert_eq!(gate.pending(), 2);
        assert_eq!(ctx.take_feedback().len(), 1, "demand relayed upstream");
    }

    #[test]
    fn assumed_feedback_drops_pending_results() {
        let mut gate = OnDemandGate::new("gate", schema(), 100);
        let mut ctx = OperatorContext::new();
        for seg in [1, 2, 3] {
            gate.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "client",
        );
        gate.on_feedback(0, fb, &mut ctx).unwrap();
        assert_eq!(gate.pending(), 2);
        gate.on_flush(&mut ctx).unwrap();
        assert_eq!(emitted_tuples(&mut ctx).len(), 2);
    }

    #[test]
    fn capacity_bound_drops_oldest_results() {
        let mut gate = OnDemandGate::new("gate", schema(), 2);
        let mut ctx = OperatorContext::new();
        for seg in [1, 2, 3, 4] {
            gate.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        assert_eq!(gate.pending(), 2);
        assert_eq!(gate.dropped(), 2);
        gate.on_request_results(0, &mut ctx).unwrap();
        let out = emitted_tuples(&mut ctx);
        assert_eq!(out.iter().map(|t| t.int("segment").unwrap()).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn punctuation_flows_through_the_gate() {
        let mut gate = OnDemandGate::new("gate", schema(), 10);
        let mut ctx = OperatorContext::new();
        gate.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(1)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }
}
