//! Shared fan-out for multi-query execution.
//!
//! [`SharedFanout`] sits at the point where a shared subplan — a long-lived
//! source, optionally followed by a deduplicated `select`/`project` prefix —
//! splits into the private suffixes of N standing queries.  It differs from
//! [`Duplicate`](crate::Duplicate) in three ways that matter for a
//! multi-query manager:
//!
//! * **Per-port feedback isolation.**  DUPLICATE's definition requires all
//!   outputs to stay identical, so it may only exploit feedback asserted by
//!   *every* output.  A fan-out's outputs feed *independent* queries, so each
//!   output port keeps its own scoped
//!   [`FeedbackRegistry`]: a guard asserted
//!   by query A suppresses tuples on A's branch immediately and never
//!   affects a sibling's branch.
//! * **Lattice-combined upstream relay.**  Source-bound feedback still only
//!   crosses the fan-out when every *active* sharer agrees, via the same
//!   [`FeedbackMerge`] lattice the partitioned path uses — the shared prefix
//!   and the source serve everyone, so slowing or filtering them is only
//!   safe under unanimity.
//! * **Attach/detach at punctuation boundaries.**  Output ports can be
//!   attached and detached while the stream runs.  Directives are posted
//!   through a shared [`FanoutController`] (mirroring the elastic stage's
//!   [`ElasticController`](crate::ElasticController)) and committed at the
//!   next punctuation boundary — the same punctuation-aligned consistent cut
//!   the elastic Migrate/Ack/Commit handshake uses — so a newly attached
//!   query starts with a punctuation-delimited suffix of the stream and a
//!   detached query stops without disturbing its siblings' output.
//!
//! The data kernel is DUPLICATE's zero-copy columnar kernel: a page whose
//! column summaries prove every attached port clear of its guards is
//! forwarded as a page — N−1 refcount bumps plus one move, never a tuple
//! copy.

use dsms_engine::{EngineResult, Operator, OperatorContext, Page, StreamItem};
use dsms_feedback::{
    BatchGuardDecision, FeedbackMerge, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles,
    FeedbackStats, GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};
use parking_lot::Mutex;
use std::sync::Arc;

/// A pending attach or detach posted through a [`FanoutController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutDirective {
    /// The output port (query slot) the directive applies to.
    pub port: usize,
    /// `true` to attach the port, `false` to detach it.
    pub attach: bool,
    /// Commit once this many punctuations have been seen; `None` commits at
    /// the next punctuation boundary (runtime hot attach/detach).
    pub at_boundary: Option<u64>,
}

/// A committed membership change, recorded for the manager to reconcile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutCommit {
    /// The output port whose membership changed.
    pub port: usize,
    /// The port's new state.
    pub attached: bool,
    /// The punctuation count at which the change committed.
    pub boundary: u64,
}

/// Shared coordination handle between a [`SharedFanout`] and the manager
/// driving it, mirroring the elastic stage's controller: the manager posts
/// directives, the fan-out acknowledges them as [`FanoutCommit`]s at
/// punctuation boundaries.
#[derive(Default)]
pub struct FanoutController {
    directives: Mutex<Vec<FanoutDirective>>,
    commits: Mutex<Vec<FanoutCommit>>,
}

impl FanoutController {
    /// Creates a controller behind an [`Arc`] for sharing with the fan-out.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Posts an attach for `port`, committing at the next punctuation.
    pub fn attach(&self, port: usize) {
        self.post(FanoutDirective { port, attach: true, at_boundary: None });
    }

    /// Posts a detach for `port`, committing at the next punctuation.
    pub fn detach(&self, port: usize) {
        self.post(FanoutDirective { port, attach: false, at_boundary: None });
    }

    /// Posts an attach for `port` committing once `boundary` punctuations
    /// have been seen (a deterministic schedule, used by parity tests).
    pub fn attach_at(&self, port: usize, boundary: u64) {
        self.post(FanoutDirective { port, attach: true, at_boundary: Some(boundary) });
    }

    /// Posts a detach for `port` committing once `boundary` punctuations
    /// have been seen.
    pub fn detach_at(&self, port: usize, boundary: u64) {
        self.post(FanoutDirective { port, attach: false, at_boundary: Some(boundary) });
    }

    /// Posts a raw directive.
    pub fn post(&self, directive: FanoutDirective) {
        self.directives.lock().push(directive);
    }

    /// The membership changes committed so far, in commit order.
    pub fn commits(&self) -> Vec<FanoutCommit> {
        self.commits.lock().clone()
    }

    fn drain_directives(&self) -> Vec<FanoutDirective> {
        std::mem::take(&mut *self.directives.lock())
    }

    fn record_commit(&self, commit: FanoutCommit) {
        self.commits.lock().push(commit);
    }
}

/// Fans a shared stream out to `outputs` independent query branches with
/// per-port feedback isolation, lattice-combined upstream feedback, and
/// boundary-aligned attach/detach.  See the module docs for the contract.
pub struct SharedFanout {
    name: String,
    schema: SchemaRef,
    outputs: usize,
    /// Current membership: `attached[port]` ⇔ the port receives data.
    attached: Vec<bool>,
    /// Directives polled from the controller but not yet committed.
    pending: Vec<FanoutDirective>,
    /// Per-output scoped guard registries (query-local feedback).
    registries: Vec<FeedbackRegistry>,
    /// Unanimity lattice for source-bound feedback (one replica per port).
    merge: FeedbackMerge,
    controller: Option<Arc<FanoutController>>,
    /// Punctuations seen so far (the boundary clock directives commit on).
    boundaries: u64,
    /// Operator-level counters not attributable to one port (relays).
    stats: FeedbackStats,
    /// Pages forwarded intact to every attached port (the zero-copy path).
    pages_shared: u64,
}

impl SharedFanout {
    /// Creates a fan-out with the given number of output ports, all attached.
    pub fn new(name: impl Into<String>, schema: SchemaRef, outputs: usize) -> Self {
        let name = name.into();
        let outputs = outputs.max(1);
        SharedFanout {
            registries: (0..outputs).map(|p| FeedbackRegistry::scoped(name.clone(), p)).collect(),
            merge: FeedbackMerge::new(outputs),
            name,
            schema,
            outputs,
            attached: vec![true; outputs],
            pending: Vec::new(),
            controller: None,
            boundaries: 0,
            stats: FeedbackStats::default(),
            pages_shared: 0,
        }
    }

    /// Attaches the controller through which a manager posts attach/detach
    /// directives and reads back their commits.
    pub fn with_controller(mut self, controller: Arc<FanoutController>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Sets the initial membership (missing trailing flags leave their ports
    /// attached).  Dormant ports receive nothing until an attach directive
    /// commits; the unanimity lattice is told the membership so dormant
    /// sharers do not block feedback from the active ones.
    pub fn with_initial(mut self, attached: &[bool]) -> Self {
        for (port, flag) in attached.iter().enumerate().take(self.outputs) {
            self.attached[port] = *flag;
        }
        let _ = self.merge.set_active(&self.attached);
        self
    }

    /// Pages forwarded intact (refcount bumps, no copies) to every attached
    /// port so far.
    pub fn pages_shared(&self) -> u64 {
        self.pages_shared
    }

    /// Punctuation boundaries seen so far.
    pub fn boundaries(&self) -> u64 {
        self.boundaries
    }

    fn poll_directives(&mut self) {
        if let Some(controller) = &self.controller {
            self.pending.extend(controller.drain_directives());
        }
    }

    /// Commits every pending directive whose boundary has been reached,
    /// re-evaluating the unanimity lattice under the new membership and
    /// relaying any feedback the change released.
    fn commit_eligible(&mut self, ctx: &mut OperatorContext) {
        let boundaries = self.boundaries;
        let mut changed = false;
        let mut index = 0;
        while index < self.pending.len() {
            let directive = self.pending[index];
            if directive.at_boundary.is_none_or(|b| boundaries >= b) {
                self.pending.remove(index);
                if directive.port < self.outputs
                    && self.attached[directive.port] != directive.attach
                {
                    self.attached[directive.port] = directive.attach;
                    changed = true;
                    if let Some(controller) = &self.controller {
                        controller.record_commit(FanoutCommit {
                            port: directive.port,
                            attached: directive.attach,
                            boundary: boundaries,
                        });
                    }
                }
            } else {
                index += 1;
            }
        }
        if changed {
            // Membership changed: rounds that were waiting on a detached
            // sharer may now be unanimous among the remaining active ones.
            let released = self.merge.set_active(&self.attached.clone());
            for feedback in released {
                self.relay_upstream(feedback, ctx);
            }
        }
    }

    fn relay_upstream(&mut self, feedback: FeedbackPunctuation, ctx: &mut OperatorContext) {
        let relayed = feedback.relay(feedback.pattern().clone(), &self.name);
        self.stats.relayed.record(feedback.intent());
        ctx.send_feedback(0, relayed);
    }
}

impl Operator for SharedFanout {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        self.outputs
    }

    /// Every port is a standing query; a dangling port would silently discard
    /// that query's whole result.
    fn must_connect_all_outputs(&self) -> bool {
        true
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Per-port guards: a sharer's assumed feedback suppresses the tuple
        // on that sharer's branch only.
        let mut targets = Vec::with_capacity(self.outputs);
        for port in 0..self.outputs {
            if self.attached[port]
                && self.registries[port].decide(&tuple) != GuardDecision::Suppress
            {
                targets.push(port);
            }
        }
        if let Some((&last, rest)) = targets.split_last() {
            for &port in rest {
                ctx.emit(port, tuple.clone());
            }
            ctx.emit(last, tuple);
        }
        Ok(())
    }

    /// Batch fast path — DUPLICATE's zero-copy kernel, per attached port:
    /// when no directive is pending and every attached port's column-summary
    /// check says [`BatchGuardDecision::PassAll`], the page is forwarded
    /// intact to each attached port (N−1 refcount bumps plus one move).
    /// Anything else falls back to the exact per-item path, which also
    /// drives the boundary clock through [`SharedFanout::on_punctuation`].
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.poll_directives();
        if self.pending.is_empty() {
            let rows = page.tuple_count();
            let all_pass = (0..self.outputs).filter(|&p| self.attached[p]).all(|port| {
                self.registries[port].decide_batch(rows, |c| page.column_summary(c))
                    == BatchGuardDecision::PassAll
            });
            if all_pass {
                self.boundaries += page.punctuation_count() as u64;
                let targets: Vec<usize> = (0..self.outputs).filter(|&p| self.attached[p]).collect();
                if let Some((&last, rest)) = targets.split_last() {
                    for &port in rest {
                        ctx.emit_page(port, page.clone());
                    }
                    ctx.emit_page(last, page);
                    self.pages_shared += 1;
                }
                return Ok(());
            }
        }
        for item in page {
            match item {
                StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                StreamItem::Punctuation(punctuation) => {
                    self.on_punctuation(input, punctuation, ctx)?
                }
            }
        }
        Ok(())
    }

    /// Punctuations advance the boundary clock and are the consistent cut at
    /// which pending attach/detach directives commit: a port attached here
    /// receives this punctuation and everything after it, and nothing
    /// before.
    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.boundaries += 1;
        self.poll_directives();
        self.commit_eligible(ctx);
        for port in 0..self.outputs {
            if self.attached[port] {
                self.registries[port].expire_with(&punctuation);
                ctx.emit_punctuation(port, punctuation.clone());
            }
        }
        Ok(())
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if output >= self.outputs {
            return Ok(());
        }
        // Query-local exploitation: the guard lives in this port's scoped
        // registry and never touches a sibling's branch.
        let _ = self.registries[output].register(feedback.clone());
        // Source-bound relay: only a unanimous assertion of the active
        // sharers crosses toward the shared prefix and the source.
        if let Some(merged) = self.merge.assert_from(output, feedback) {
            self.relay_upstream(merged, ctx);
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<FeedbackStats> {
        let mut total = self.stats.clone();
        for registry in &self.registries {
            total.merge(registry.stats());
        }
        Some(total)
    }

    /// A shutdown arriving from one sharer detaches that port only — the
    /// siblings keep the shared scan.  The detach is recorded like any other
    /// membership commit, and feedback rounds that were waiting on the dead
    /// port's vote are re-evaluated and relayed.  Only when the *last*
    /// attached sharer leaves does the shutdown propagate upstream, so a
    /// shared scan with no remaining consumers still tears down.
    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        if output < self.outputs && self.attached[output] {
            self.attached[output] = false;
            if let Some(controller) = &self.controller {
                controller.record_commit(FanoutCommit {
                    port: output,
                    attached: false,
                    boundary: self.boundaries,
                });
            }
            let released = self.merge.set_active(&self.attached.clone());
            for feedback in released {
                self.relay_upstream(feedback, ctx);
            }
        }
        self.attached.iter().any(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn tuple(seg: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg)])
    }

    fn punct(secs: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(secs)).unwrap()
    }

    fn seg_pattern(seg: i64) -> Pattern {
        Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))]).unwrap()
    }

    #[test]
    fn copies_to_every_attached_port() {
        let mut op = SharedFanout::new("fanout", schema(), 3);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 3);
    }

    #[test]
    fn one_ports_guard_suppresses_only_that_port() {
        let mut op = SharedFanout::new("fanout", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "qa"), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "not unanimous: nothing crosses upstream");
        op.on_tuple(0, tuple(3), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1, "suppressed on port 0 only");
        assert_eq!(emitted[0].0, 1);
    }

    #[test]
    fn unanimous_feedback_is_relayed_upstream_once() {
        let mut op = SharedFanout::new("fanout", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "qa"), &mut ctx).unwrap();
        op.on_feedback(1, FeedbackPunctuation::assumed(seg_pattern(3), "qb"), &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1);
        assert_eq!(relayed[0].0, 0, "sent upstream on the input port");
    }

    #[test]
    fn clear_pages_are_forwarded_intact() {
        use dsms_engine::Emission;
        let mut op = SharedFanout::new("fanout", schema(), 2);
        let mut ctx = OperatorContext::new();
        let page =
            Page::from_items(vec![StreamItem::Tuple(tuple(1)), StreamItem::Punctuation(punct(0))]);
        op.on_page(0, page, &mut ctx).unwrap();
        let mut pages = 0;
        ctx.drain_emissions(|_, emission| {
            if matches!(emission, Emission::Page(_)) {
                pages += 1;
            }
        });
        assert_eq!(pages, 2, "one intact page per attached port");
        assert_eq!(op.pages_shared(), 1);
        assert_eq!(op.boundaries(), 1, "the page's punctuation advanced the boundary clock");
    }

    #[test]
    fn attach_commits_at_the_next_boundary() {
        let controller = FanoutController::shared();
        let mut op = SharedFanout::new("fanout", schema(), 2)
            .with_controller(controller.clone())
            .with_initial(&[true, false]);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1, "dormant port receives nothing");
        controller.attach(1);
        op.on_tuple(0, tuple(2), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1, "attach waits for the punctuation boundary");
        op.on_punctuation(0, punct(1), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2, "the committing punctuation reaches the new port");
        op.on_tuple(0, tuple(3), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2, "both ports attached now");
        let commits = controller.commits();
        assert_eq!(commits.len(), 1);
        assert!(commits[0].attached && commits[0].port == 1);
    }

    #[test]
    fn scripted_detach_commits_at_its_boundary() {
        let controller = FanoutController::shared();
        let mut op = SharedFanout::new("fanout", schema(), 2).with_controller(controller.clone());
        controller.detach_at(1, 2);
        let mut ctx = OperatorContext::new();
        op.on_punctuation(0, punct(1), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2, "boundary 1 < 2: still attached");
        op.on_punctuation(0, punct(2), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1, "committed: the detached port misses the cut");
        op.on_tuple(0, tuple(1), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
        assert_eq!(
            controller.commits(),
            vec![FanoutCommit { port: 1, attached: false, boundary: 2 }]
        );
    }

    #[test]
    fn detach_releases_rounds_waiting_on_the_leaver() {
        let controller = FanoutController::shared();
        let mut op = SharedFanout::new("fanout", schema(), 2).with_controller(controller.clone());
        let mut ctx = OperatorContext::new();
        // Port 0 asserts; port 1 never does, then detaches.
        op.on_feedback(0, FeedbackPunctuation::assumed(seg_pattern(3), "qa"), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty());
        controller.detach(1);
        op.on_punctuation(0, punct(1), &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1, "unanimity over the remaining active sharer releases");
    }
}
