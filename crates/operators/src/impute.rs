//! IMPUTE: expensive estimation of missing sensor readings.
//!
//! In the paper's imputation scenario (Example 3 / Experiment 1), sensors fail
//! intermittently and report null values; IMPUTE replaces each missing value
//! with an estimate obtained from an *archival lookup* — in the original
//! system, one database query per dirty tuple.  That lookup is what makes the
//! imputed path an order of magnitude slower than the clean path and causes
//! the divergence of Figure 5.
//!
//! The paper's artifact (a database of historical Portland loop-detector data)
//! is not available, so [`ArchivalStore`] simulates it: a deterministic
//! in-memory history keyed by the tuple's key attribute, plus a configurable
//! per-lookup cost.  Only the *relative* cost of the imputed path matters for
//! the experiment's shape, which the calibrated synthetic lookup preserves
//! (see DESIGN.md, substitutions).
//!
//! IMPUTE is the paper's canonical feedback **exploiter**: when PACE sends
//! assumed punctuation saying tuples below a timestamp cutoff are no longer
//! needed, IMPUTE guards its input and skips the expensive lookup for them
//! (purging them from its pending work).

use crate::common::simulate_cost;
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision};
use dsms_punctuation::Punctuation;
use dsms_types::{Tuple, Value};
use std::collections::HashMap;
use std::time::Duration;

/// A simulated archival store: per-key historical averages with a configurable
/// per-lookup cost.
#[derive(Debug, Clone)]
pub struct ArchivalStore {
    history: HashMap<i64, f64>,
    default_estimate: f64,
    lookup_cost: Duration,
    lookups: u64,
}

impl ArchivalStore {
    /// Creates a store with the given per-lookup cost and a default estimate
    /// used for keys with no history.
    pub fn synthetic(lookup_cost: Duration, default_estimate: f64) -> Self {
        ArchivalStore { history: HashMap::new(), default_estimate, lookup_cost, lookups: 0 }
    }

    /// Registers a historical average for a key.
    pub fn with_history(mut self, key: i64, value: f64) -> Self {
        self.history.insert(key, value);
        self
    }

    /// Performs one archival lookup, paying the configured cost.
    pub fn lookup(&mut self, key: i64) -> f64 {
        simulate_cost(self.lookup_cost);
        self.lookups += 1;
        *self.history.get(&key).unwrap_or(&self.default_estimate)
    }

    /// Number of lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// The configured per-lookup cost.
    pub fn lookup_cost(&self) -> Duration {
        self.lookup_cost
    }
}

/// Replaces missing values with archival estimates; exploits assumed feedback
/// by skipping tuples the downstream has declared useless.
pub struct Impute {
    name: String,
    value_attribute: String,
    key_attribute: String,
    store: ArchivalStore,
    registry: FeedbackRegistry,
    imputed: u64,
    skipped_by_feedback: u64,
    passed_through: u64,
}

impl Impute {
    /// Creates an IMPUTE operator filling `value_attribute` using history
    /// keyed by `key_attribute`.
    pub fn new(
        name: impl Into<String>,
        value_attribute: impl Into<String>,
        key_attribute: impl Into<String>,
        store: ArchivalStore,
    ) -> Self {
        let name = name.into();
        Impute {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            value_attribute: value_attribute.into(),
            key_attribute: key_attribute.into(),
            store,
            imputed: 0,
            skipped_by_feedback: 0,
            passed_through: 0,
        }
    }

    /// Number of tuples actually imputed (expensive lookups performed).
    pub fn imputed(&self) -> u64 {
        self.imputed
    }

    /// Number of tuples skipped because feedback declared them useless.
    pub fn skipped_by_feedback(&self) -> u64 {
        self.skipped_by_feedback
    }
}

impl Operator for Impute {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Exploit assumed feedback *before* paying for the lookup: tuples the
        // downstream has declared useless are purged from the pending work.
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            self.skipped_by_feedback += 1;
            return Ok(());
        }
        let value_idx = tuple.schema().index_of(&self.value_attribute)?;
        if !tuple.value(value_idx)?.is_null() {
            // Already clean: nothing to impute.
            self.passed_through += 1;
            ctx.emit(0, tuple);
            return Ok(());
        }
        let key = tuple.int(&self.key_attribute).unwrap_or(0);
        let estimate = self.store.lookup(key);
        self.imputed += 1;
        let repaired = tuple.with_value(value_idx, Value::Float(estimate))?;
        ctx.emit(0, repaired);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Embedded punctuation both flows through and expires feedback guards
        // whose subsets it subsumes (Section 4.4).
        self.registry.expire_with(&punctuation);
        ctx.emit_punctuation(0, punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // IMPUTE exploits but does not relay: its antecedent is the dirty-path
        // filter whose output is consumed only by IMPUTE, so local guarding
        // already realizes the full saving; propagation happens at plan level
        // through Split when both paths agree.
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("detector", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn dirty(ts: i64, detector: i64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(detector), Value::Null],
        )
    }

    fn clean(ts: i64, detector: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::Timestamp(Timestamp::from_secs(ts)),
                Value::Int(detector),
                Value::Float(speed),
            ],
        )
    }

    fn impute() -> Impute {
        let store = ArchivalStore::synthetic(Duration::ZERO, 50.0).with_history(7, 61.5);
        Impute::new("IMPUTE", "speed", "detector", store)
    }

    #[test]
    fn missing_values_are_filled_from_history() {
        let mut op = impute();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, dirty(1, 7), &mut ctx).unwrap();
        op.on_tuple(0, dirty(2, 99), &mut ctx).unwrap(); // no history → default
        let out = ctx.take_emitted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.as_tuple().unwrap().float("speed").unwrap(), 61.5);
        assert_eq!(out[1].1.as_tuple().unwrap().float("speed").unwrap(), 50.0);
        assert_eq!(op.imputed(), 2);
    }

    #[test]
    fn clean_tuples_pass_without_lookup() {
        let mut op = impute();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, clean(1, 7, 42.0), &mut ctx).unwrap();
        assert_eq!(op.imputed(), 0);
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn assumed_feedback_skips_expensive_lookups() {
        let mut op = impute();
        let mut ctx = OperatorContext::new();
        // PACE says: tuples before t=100 are no longer needed.
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(
                    schema(),
                    &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(100))))],
                )
                .unwrap(),
                "PACE",
            ),
            &mut ctx,
        )
        .unwrap();
        op.on_tuple(0, dirty(50, 7), &mut ctx).unwrap(); // skipped
        op.on_tuple(0, dirty(150, 7), &mut ctx).unwrap(); // imputed
        assert_eq!(op.skipped_by_feedback(), 1);
        assert_eq!(op.imputed(), 1);
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn lookup_cost_is_paid_per_imputed_tuple() {
        let store = ArchivalStore::synthetic(Duration::from_micros(300), 10.0);
        let mut op = Impute::new("IMPUTE", "speed", "detector", store);
        let mut ctx = OperatorContext::new();
        let start = std::time::Instant::now();
        for i in 0..5 {
            op.on_tuple(0, dirty(i, 1), &mut ctx).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_micros(1_500));
        assert_eq!(op.imputed(), 5);
    }

    #[test]
    fn punctuation_flows_through_and_expires_guards() {
        let mut op = impute();
        let mut ctx = OperatorContext::new();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(10)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn archival_store_counts_lookups() {
        let mut store = ArchivalStore::synthetic(Duration::ZERO, 1.0).with_history(3, 9.0);
        assert_eq!(store.lookup(3), 9.0);
        assert_eq!(store.lookup(4), 1.0);
        assert_eq!(store.lookups(), 2);
        assert_eq!(store.lookup_cost(), Duration::ZERO);
    }
}
