//! Data-quality filter (σQ in the speed-map plan, Figure 4b).
//!
//! The quality filter sits at the bottom of the speed-map query: it validates
//! raw detector readings (range checks, timestamp sanity) before they are
//! aggregated, paying a per-tuple validation cost.  It is the operator that
//! benefits from *propagated* feedback in scheme F3 of Experiment 2: once the
//! AVERAGE operator relays "segments outside the viewport are of no interest",
//! the filter can skip validating those tuples entirely.

use crate::common::{simulate_cost, TuplePredicate};
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{
    FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};
use std::time::Duration;

/// A validating filter with configurable per-tuple cost and feedback support.
pub struct QualityFilter {
    name: String,
    schema: SchemaRef,
    check: TuplePredicate,
    check_cost: Duration,
    feedback_enabled: bool,
    relay: bool,
    validated: u64,
    rejected: u64,
    registry: FeedbackRegistry,
}

impl QualityFilter {
    /// Creates a quality filter keeping tuples for which `check` holds,
    /// spending `check_cost` of work per validated tuple.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        check: TuplePredicate,
        check_cost: Duration,
    ) -> Self {
        let name = name.into();
        QualityFilter {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            check,
            check_cost,
            feedback_enabled: true,
            relay: true,
            validated: 0,
            rejected: 0,
        }
    }

    /// Disables feedback exploitation (the F0–F2 configurations of
    /// Experiment 2, where the filter never hears about the viewport).
    pub fn without_feedback(mut self) -> Self {
        self.feedback_enabled = false;
        self
    }

    /// Disables relaying feedback further upstream.
    pub fn without_relay(mut self) -> Self {
        self.relay = false;
        self
    }

    /// Number of tuples that went through the (costly) validation.
    pub fn validated(&self) -> u64 {
        self.validated
    }

    /// Number of tuples rejected by the quality check.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Operator for QualityFilter {
    fn feedback_roles(&self) -> FeedbackRoles {
        if !self.feedback_enabled {
            FeedbackRoles::NONE
        } else if self.relay {
            FeedbackRoles::exploiter().with_relayer()
        } else {
            FeedbackRoles::exploiter()
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Exploit feedback *before* paying the validation cost.
        if self.feedback_enabled && self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        simulate_cost(self.check_cost);
        self.validated += 1;
        if self.check.eval(&tuple) {
            ctx.emit(0, tuple);
        } else {
            self.rejected += 1;
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.registry.expire_with(&punctuation);
        ctx.emit_punctuation(0, punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if !self.feedback_enabled {
            return Ok(());
        }
        if feedback.intent() == FeedbackIntent::Assumed && self.relay {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), &self.name));
            self.registry.stats_mut().relayed.record(feedback.intent());
        }
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg), Value::Float(speed)],
        )
    }

    fn filter() -> QualityFilter {
        QualityFilter::new(
            "QUALITY",
            schema(),
            TuplePredicate::new("0 <= speed <= 120", |t| {
                let v = t.float("speed").unwrap_or(-1.0);
                (0.0..=120.0).contains(&v)
            }),
            Duration::ZERO,
        )
    }

    #[test]
    fn quality_check_rejects_out_of_range_readings() {
        let mut op = filter();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1, 55.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(1, 250.0), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
        assert_eq!(op.validated(), 2);
        assert_eq!(op.rejected(), 1);
    }

    #[test]
    fn feedback_skips_validation_for_described_tuples() {
        let mut op = filter();
        let mut ctx = OperatorContext::new();
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(7)))])
                    .unwrap(),
                "AVERAGE",
            ),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.take_feedback().len(), 1, "relayed further upstream");
        op.on_tuple(0, tuple(7, 55.0), &mut ctx).unwrap();
        op.on_tuple(0, tuple(8, 55.0), &mut ctx).unwrap();
        assert_eq!(op.validated(), 1, "segment 7 skipped without validation cost");
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn disabled_feedback_ignores_messages() {
        let mut op = filter().without_feedback();
        let mut ctx = OperatorContext::new();
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "AVERAGE"),
            &mut ctx,
        )
        .unwrap();
        assert!(ctx.take_feedback().is_empty());
        op.on_tuple(0, tuple(7, 55.0), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn relay_can_be_disabled_independently() {
        let mut op = filter().without_relay();
        let mut ctx = OperatorContext::new();
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(7)))])
                    .unwrap(),
                "AVERAGE",
            ),
            &mut ctx,
        )
        .unwrap();
        assert!(ctx.take_feedback().is_empty());
        op.on_tuple(0, tuple(7, 55.0), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "still exploited locally");
    }

    #[test]
    fn punctuation_flows_through() {
        let mut op = filter();
        let mut ctx = OperatorContext::new();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(1)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
    }
}
