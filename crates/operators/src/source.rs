//! Stream sources.
//!
//! Sources adapt finite, pre-generated workloads (from `dsms-workloads`) or
//! arbitrary iterators into the engine's pull-stepped source protocol.  They
//! inject embedded progress punctuation on a timestamp attribute at a
//! configurable period, mirroring how NiagaraST's stream scans punctuate on
//! application time, and they are feedback-aware: assumed feedback received
//! from downstream suppresses matching tuples *at the source*, the cheapest
//! possible exploitation.

use dsms_engine::{EngineError, EngineResult, Operator, OperatorContext, SourceState, StateEntry};
use dsms_feedback::{
    BatchGuardDecision, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{ColumnSummary, SchemaRef, StreamDuration, Timestamp, Tuple};

/// A source that replays a pre-materialized vector of tuples in order,
/// punctuating progress on a timestamp attribute.
pub struct VecSource {
    name: String,
    tuples: std::vec::IntoIter<Tuple>,
    timestamp_attribute: Option<String>,
    /// Index of `timestamp_attribute`, resolved from the first tuple's schema
    /// so the per-tuple punctuation check is a slice access, not a name
    /// lookup.
    timestamp_index: Option<usize>,
    punctuation_period: StreamDuration,
    last_punctuated: Option<Timestamp>,
    batch_size: usize,
    /// Whether each poll batch is first classified wholesale against the
    /// feedback guards via column summaries (see `poll_source`).
    batch_guards: bool,
    registry: FeedbackRegistry,
    exhausted: bool,
}

impl VecSource {
    /// Creates a source named `name` replaying `tuples`.
    ///
    /// All tuples must share one schema — [`Operator::schema_out`] declares
    /// the first tuple's schema, and the builder checks every downstream edge
    /// against it, so a stray differently-schemed tuple would flow unchecked.
    pub fn new(name: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        let name = name.into();
        debug_assert!(
            tuples.windows(2).all(|w| w[0].schema() == w[1].schema()),
            "VecSource `{name}`: all replayed tuples must share one schema"
        );
        VecSource {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            tuples: tuples.into_iter(),
            timestamp_attribute: None,
            timestamp_index: None,
            punctuation_period: StreamDuration::from_secs(60),
            last_punctuated: None,
            batch_size: 64,
            batch_guards: true,
            exhausted: false,
        }
    }

    /// Enables progress punctuation on `attribute` every `period` of stream
    /// time.  Tuples are assumed to be timestamp-ordered on that attribute
    /// (the punctuation asserts completeness of everything at or before the
    /// previous period boundary).
    pub fn with_punctuation(
        mut self,
        attribute: impl Into<String>,
        period: StreamDuration,
    ) -> Self {
        self.timestamp_attribute = Some(attribute.into());
        self.punctuation_period = period;
        self
    }

    /// Sets how many tuples are emitted per `poll_source` call.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Enables or disables batch-level guard evaluation (default enabled):
    /// when enabled, each poll batch is classified wholesale against the
    /// feedback guards from per-column summaries, and per-tuple guard checks
    /// run only when the summaries are inconclusive.  Disabling forces the
    /// per-tuple path for every batch — useful as a scalar baseline in
    /// benches and parity tests.
    pub fn with_batch_guards(mut self, enabled: bool) -> Self {
        self.batch_guards = enabled;
        self
    }

    fn maybe_punctuate(&mut self, tuple: &Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
        if self.timestamp_attribute.is_none() {
            return Ok(());
        }
        let index = match self.timestamp_index {
            Some(index) => index,
            None => {
                let attr = self.timestamp_attribute.as_deref().expect("checked above");
                let index = tuple.schema().index_of(attr).map_err(EngineError::from)?;
                self.timestamp_index = Some(index);
                index
            }
        };
        let ts = tuple.timestamp_at(index)?;
        let attr = self.timestamp_attribute.as_deref().expect("checked above");
        let boundary = ts.align_down(self.punctuation_period);
        let due = match self.last_punctuated {
            None => true,
            Some(prev) => boundary > prev,
        };
        if due && boundary > Timestamp::MIN {
            // Everything strictly before the boundary is complete.
            let watermark = boundary - StreamDuration::from_millis(1);
            if watermark >= Timestamp::EPOCH || self.last_punctuated.is_none() {
                let p = Punctuation::progress(tuple.schema().clone(), attr, watermark)?;
                ctx.emit_punctuation(0, p);
                self.last_punctuated = Some(boundary);
            }
        }
        Ok(())
    }
}

impl Operator for VecSource {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter()
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        // All replayed tuples share one schema; peek at the first remaining.
        self.tuples.as_slice().first().map(|t| t.schema().clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        0
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        _tuple: Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Lenient registration: the source does not know the downstream
        // punctuation scheme; guards naturally stop mattering once the stream
        // moves past them.
        let _ = self.registry.register(feedback);
        Ok(())
    }

    /// Emits one batch of tuples.  With batch guards enabled (the default),
    /// the whole batch is first classified against the feedback guards from
    /// per-column summaries of the *pending* tuples: a conclusive verdict
    /// skips every per-tuple guard check in the batch (the common case when
    /// guards constrain ranges the stream has moved past, or never enters);
    /// only inconclusive batches fall back to per-tuple `decide`.
    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        if self.exhausted {
            return Ok(SourceState::Exhausted);
        }
        if self.tuples.as_slice().is_empty() {
            self.exhausted = true;
            return Ok(SourceState::Exhausted);
        }
        let batch = self.batch_size.min(self.tuples.as_slice().len());
        let decision = if self.batch_guards {
            // Disjoint field borrows: the registry mutates stats while the
            // summaries read the not-yet-drained tail of the replay vector.
            let registry = &mut self.registry;
            let pending = &self.tuples.as_slice()[..batch];
            registry.decide_batch(batch, |c| ColumnSummary::over_column(pending, c))
        } else {
            BatchGuardDecision::Mixed
        };
        // Batch-level punctuation check, same spirit as the batch guard:
        // tuples are timestamp-ordered (a documented precondition of
        // `with_punctuation`), so if even the *last* tuple of the batch stays
        // within the already-punctuated period, no tuple in the batch can be
        // due — the per-tuple boundary check is skipped wholesale.
        let punctuation_skip = self.batch_guards
            && match (&self.timestamp_attribute, self.timestamp_index, self.last_punctuated) {
                (None, _, _) => true,
                (Some(_), Some(index), Some(prev)) => self.tuples.as_slice()[batch - 1]
                    .timestamp_at(index)
                    .map(|ts| ts.align_down(self.punctuation_period) <= prev)
                    .unwrap_or(false),
                _ => false,
            };
        match decision {
            BatchGuardDecision::PassAll => {
                for _ in 0..batch {
                    let tuple = self.tuples.next().expect("batch is within bounds");
                    if !punctuation_skip {
                        self.maybe_punctuate(&tuple, ctx)?;
                    }
                    ctx.emit(0, tuple);
                }
            }
            BatchGuardDecision::SuppressAll => {
                // Punctuation still derives from suppressed tuples: progress
                // is a property of the stream, not of what survives guards.
                if !punctuation_skip {
                    for _ in 0..batch {
                        let tuple = self.tuples.next().expect("batch is within bounds");
                        self.maybe_punctuate(&tuple, ctx)?;
                    }
                } else {
                    for _ in 0..batch {
                        self.tuples.next().expect("batch is within bounds");
                    }
                }
            }
            BatchGuardDecision::Mixed => {
                for _ in 0..batch {
                    let tuple = self.tuples.next().expect("batch is within bounds");
                    if !punctuation_skip {
                        self.maybe_punctuate(&tuple, ctx)?;
                    }
                    if self.registry.decide(&tuple) == GuardDecision::Suppress {
                        continue;
                    }
                    ctx.emit(0, tuple);
                }
            }
        }
        if self.tuples.as_slice().is_empty() {
            self.exhausted = true;
            return Ok(SourceState::Exhausted);
        }
        Ok(SourceState::Producing)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    fn restartable(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(vec![StateEntry {
            key: Vec::new(),
            payload: Box::new(VecSourceSnapshot {
                tuples: self.tuples.clone(),
                timestamp_index: self.timestamp_index,
                last_punctuated: self.last_punctuated,
                exhausted: self.exhausted,
                registry: self.registry.clone(),
            }),
        }])
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        // The supervisor primes an initial checkpoint before the first poll,
        // so a restore without a snapshot means the replay position is lost.
        let entry = entries.into_iter().next().ok_or_else(|| EngineError::OperatorFailed {
            operator: self.name.clone(),
            detail: "source restore requires a replay-position snapshot".into(),
        })?;
        match entry.payload.downcast::<VecSourceSnapshot>() {
            Ok(snapshot) => {
                self.tuples = snapshot.tuples;
                self.timestamp_index = snapshot.timestamp_index;
                self.last_punctuated = snapshot.last_punctuated;
                self.exhausted = snapshot.exhausted;
                self.registry = snapshot.registry;
                Ok(())
            }
            Err(_) => Err(EngineError::OperatorFailed {
                operator: self.name.clone(),
                detail: "checkpoint entry is not a source snapshot".into(),
            }),
        }
    }
}

/// Replay position and guard state captured at a checkpoint so a restarted
/// [`VecSource`] resumes exactly where the epoch boundary left it.
struct VecSourceSnapshot {
    tuples: std::vec::IntoIter<Tuple>,
    timestamp_index: Option<usize>,
    last_punctuated: Option<Timestamp>,
    exhausted: bool,
    registry: FeedbackRegistry,
}

/// A source driven by an arbitrary iterator of [`Tuple`]s (possibly lazily
/// generated), with the same punctuation and feedback behaviour as
/// [`VecSource`], plus optional *real-time pacing*: with a pacing factor set,
/// the source releases tuples so that stream time advances at
/// `speedup × wall-clock time`, which is how live sources behave and what the
/// divergence dynamics of Experiment 1 depend on.
pub struct GeneratorSource {
    name: String,
    generator: Box<dyn Iterator<Item = Tuple> + Send>,
    timestamp_attribute: Option<String>,
    /// Index of `timestamp_attribute`, resolved from the first tuple's schema
    /// (see `VecSource::timestamp_index`).
    timestamp_index: Option<usize>,
    punctuation_period: StreamDuration,
    last_punctuated: Option<Timestamp>,
    batch_size: usize,
    registry: FeedbackRegistry,
    exhausted: bool,
    /// Stream seconds per wall-clock second (None = replay as fast as possible).
    pacing_speedup: Option<f64>,
    pacing_origin: Option<(std::time::Instant, Timestamp)>,
    pending: Option<Tuple>,
}

impl GeneratorSource {
    /// Creates a source pulling tuples from the iterator.
    pub fn new(
        name: impl Into<String>,
        generator: impl Iterator<Item = Tuple> + Send + 'static,
    ) -> Self {
        let name = name.into();
        GeneratorSource {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            generator: Box::new(generator),
            timestamp_attribute: None,
            timestamp_index: None,
            punctuation_period: StreamDuration::from_secs(60),
            last_punctuated: None,
            batch_size: 64,
            exhausted: false,
            pacing_speedup: None,
            pacing_origin: None,
            pending: None,
        }
    }

    /// Enables progress punctuation on `attribute` every `period`.
    pub fn with_punctuation(
        mut self,
        attribute: impl Into<String>,
        period: StreamDuration,
    ) -> Self {
        self.timestamp_attribute = Some(attribute.into());
        self.punctuation_period = period;
        self
    }

    /// Sets how many tuples are emitted per `poll_source` call.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Enables real-time pacing: stream time advances at `speedup` stream
    /// seconds per wall-clock second (requires punctuation/pacing to know the
    /// timestamp attribute via [`with_punctuation`](Self::with_punctuation)).
    pub fn with_pacing(mut self, speedup: f64) -> Self {
        self.pacing_speedup = Some(speedup.max(f64::MIN_POSITIVE));
        self
    }

    /// Returns how long the release of a tuple timestamped `ts` should still
    /// be delayed under the pacing policy.
    fn pacing_delay(&mut self, ts: Timestamp) -> Option<std::time::Duration> {
        let speedup = self.pacing_speedup?;
        let (origin_wall, origin_ts) =
            *self.pacing_origin.get_or_insert_with(|| (std::time::Instant::now(), ts));
        let stream_elapsed_ms = (ts - origin_ts).as_millis().max(0) as f64;
        let target =
            origin_wall + std::time::Duration::from_secs_f64(stream_elapsed_ms / 1_000.0 / speedup);
        let now = std::time::Instant::now();
        if now < target {
            Some(target - now)
        } else {
            None
        }
    }
}

impl Operator for GeneratorSource {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        0
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        _tuple: Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        if self.exhausted {
            return Ok(SourceState::Exhausted);
        }
        for _ in 0..self.batch_size {
            match self.pending.take().or_else(|| self.generator.next()) {
                Some(tuple) => {
                    if self.timestamp_attribute.is_some() {
                        let index = match self.timestamp_index {
                            Some(index) => index,
                            None => {
                                let attr =
                                    self.timestamp_attribute.as_deref().expect("checked above");
                                let index =
                                    tuple.schema().index_of(attr).map_err(EngineError::from)?;
                                self.timestamp_index = Some(index);
                                index
                            }
                        };
                        let ts = tuple.timestamp_at(index)?;
                        if let Some(delay) = self.pacing_delay(ts) {
                            // Not yet due: hold the tuple, yield briefly so the
                            // executor keeps servicing control messages, and
                            // retry on the next poll.
                            self.pending = Some(tuple);
                            std::thread::sleep(delay.min(std::time::Duration::from_millis(1)));
                            return Ok(SourceState::Producing);
                        }
                        let boundary = ts.align_down(self.punctuation_period);
                        let due = match self.last_punctuated {
                            None => true,
                            Some(prev) => boundary > prev,
                        };
                        if due {
                            let attr = self.timestamp_attribute.as_deref().expect("checked above");
                            let watermark = boundary - StreamDuration::from_millis(1);
                            let p = Punctuation::progress(tuple.schema().clone(), attr, watermark)?;
                            ctx.emit_punctuation(0, p);
                            self.last_punctuated = Some(boundary);
                        }
                    }
                    if self.registry.decide(&tuple) == GuardDecision::Suppress {
                        continue;
                    }
                    ctx.emit(0, tuple);
                }
                None => {
                    self.exhausted = true;
                    return Ok(SourceState::Exhausted);
                }
            }
        }
        Ok(SourceState::Producing)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, SchemaRef, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn tuple(ts_secs: i64, seg: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts_secs)), Value::Int(seg)])
    }

    fn drain(source: &mut dyn Operator) -> (Vec<Tuple>, usize) {
        let mut ctx = OperatorContext::new();
        let mut tuples = Vec::new();
        let mut punctuations = 0;
        loop {
            let state = source.poll_source(&mut ctx).unwrap();
            for (_, item) in ctx.take_emitted() {
                match item {
                    dsms_engine::StreamItem::Tuple(t) => tuples.push(t),
                    dsms_engine::StreamItem::Punctuation(_) => punctuations += 1,
                }
            }
            if state == SourceState::Exhausted {
                break;
            }
        }
        (tuples, punctuations)
    }

    #[test]
    fn vec_source_replays_everything_in_order() {
        let data: Vec<Tuple> = (0..100).map(|i| tuple(i, i % 9)).collect();
        let mut src = VecSource::new("sensors", data.clone()).with_batch_size(7);
        let (tuples, _) = drain(&mut src);
        assert_eq!(tuples, data);
    }

    #[test]
    fn vec_source_punctuates_on_period_boundaries() {
        let data: Vec<Tuple> = (0..240).map(|i| tuple(i, 0)).collect(); // 4 minutes of seconds
        let mut src = VecSource::new("sensors", data)
            .with_punctuation("timestamp", StreamDuration::from_secs(60))
            .with_batch_size(10);
        let (tuples, punctuations) = drain(&mut src);
        assert_eq!(tuples.len(), 240);
        assert!(punctuations >= 3, "one punctuation per minute boundary (got {punctuations})");
    }

    #[test]
    fn assumed_feedback_suppresses_matching_tuples_at_the_source() {
        let data: Vec<Tuple> = (0..100).map(|i| tuple(i, i % 9)).collect();
        let mut src = VecSource::new("sensors", data);
        let mut ctx = OperatorContext::new();
        // Downstream assumes away segment 3 before the replay starts.
        src.on_feedback(
            0,
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                    .unwrap(),
                "sink",
            ),
            &mut ctx,
        )
        .unwrap();
        let (tuples, _) = drain(&mut src);
        assert!(tuples.iter().all(|t| t.int("segment").unwrap() != 3));
        assert_eq!(
            tuples.len(),
            100 - 11,
            "segments 0..9 cycle over 100 tuples; 11 fall on segment 3"
        );
        assert_eq!(src.feedback_stats().unwrap().tuples_suppressed, 11);
    }

    #[test]
    fn batch_guards_match_the_scalar_path_and_count_conclusive_batches() {
        // Segment stays constant per batch, so every batch is conclusive:
        // the segment-3 batches suppress wholesale, the rest pass wholesale.
        let data: Vec<Tuple> = (0..96).map(|i| tuple(i, i / 16)).collect(); // 16-tuple runs of segments 0..=5
        let guard = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap(),
            "sink",
        );
        let mut batched = VecSource::new("sensors", data.clone()).with_batch_size(16);
        let mut scalar =
            VecSource::new("sensors", data).with_batch_size(16).with_batch_guards(false);
        let mut ctx = OperatorContext::new();
        batched.on_feedback(0, guard.clone(), &mut ctx).unwrap();
        scalar.on_feedback(0, guard, &mut ctx).unwrap();
        let (batched_tuples, _) = drain(&mut batched);
        let (scalar_tuples, _) = drain(&mut scalar);
        assert_eq!(batched_tuples, scalar_tuples, "summaries change nothing observable");
        assert_eq!(batched_tuples.len(), 80);
        let batched_stats = batched.feedback_stats().unwrap();
        let scalar_stats = scalar.feedback_stats().unwrap();
        assert_eq!(batched_stats.tuples_suppressed, 16);
        assert_eq!(scalar_stats.tuples_suppressed, 16);
        assert_eq!(batched_stats.batches_summary_conclusive, 6, "every batch was conclusive");
        assert_eq!(batched_stats.batches_summary_fallback, 0);
        assert_eq!(scalar_stats.batches_summary_conclusive, 0, "scalar path never classifies");
    }

    #[test]
    fn generator_source_is_equivalent_to_vec_source() {
        let data: Vec<Tuple> = (0..50).map(|i| tuple(i, i)).collect();
        let mut gen_src = GeneratorSource::new("gen", data.clone().into_iter())
            .with_punctuation("timestamp", StreamDuration::from_secs(10))
            .with_batch_size(3);
        let (tuples, punctuations) = drain(&mut gen_src);
        assert_eq!(tuples, data);
        assert!(punctuations > 0);
    }

    #[test]
    fn exhausted_source_stays_exhausted() {
        let mut src = VecSource::new("s", vec![tuple(0, 0)]);
        let mut ctx = OperatorContext::new();
        while src.poll_source(&mut ctx).unwrap() != SourceState::Exhausted {}
        assert_eq!(src.poll_source(&mut ctx).unwrap(), SourceState::Exhausted);
    }
}
