//! MERGE: order-insensitive union of N replica streams.
//!
//! The collect side of a partitioned stage: the hash route guarantees that
//! any one group's tuples all arrive on the same input, so interleaving the
//! inputs in arrival order reproduces the single-replica output as a
//! multiset.  Punctuation follows the classic merge rule (a subset of the
//! output is complete only once **every** input has declared it complete, so
//! the merge emits the minimum of the per-input watermarks, as
//! [`Union`](crate::union::Union) does).
//!
//! The merge point is where cross-partition feedback semantics live on the
//! downstream side:
//!
//! * Feedback received from the merge's consumer is **broadcast** upstream to
//!   all N inputs — the merged stream is the union of the replica streams, so
//!   a subset disclaimed (or desired, or demanded) downstream applies to each
//!   replica equally.
//! * With a [disorder-bound policy](dsms_feedback::ExplicitPolicy) attached,
//!   the merge also *originates* feedback (paper Section 3.3, explicit
//!   source): replicas drain at different speeds, so a tuple can reach the
//!   merge long after faster replicas moved the high-watermark past it.  When
//!   an arrival violates the bound it is dropped and `¬[attribute < cutoff]`
//!   is broadcast to every replica — the paper's PACE behaviour lifted to the
//!   partition fan-in, and the counterpart of the shuffle's lattice merge on
//!   the upstream side.

use crate::common::MinWatermark;
use crate::elastic::{membership, ElasticController, ElasticPolicy};
use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{
    ExplicitPolicy, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::{Pattern, Punctuation, StageDirective};
use dsms_types::{SchemaRef, StreamDuration, Timestamp, Tuple};
use std::sync::Arc;

/// Decision side of an elastic stage (see [`crate::elastic`]): the merge
/// watches the stage's load signal at punctuation boundaries, issues `Resize`
/// directives upstream as feedback, and tracks `Commit` markers to learn when
/// the new membership is in effect on every input.
struct ElasticMerge {
    controller: Arc<ElasticController>,
    policy: ElasticPolicy,
    /// Replicas currently routed to (always the prefix `0..active`).
    active: usize,
    /// Punctuation boundaries seen on input 0 — the scripted policy's clock.
    punct_seen: u64,
    /// Next resize epoch to issue (monotone, starts at 1).
    next_epoch: u64,
    /// A resize is in flight: no new decision until its commit lands.
    in_flight: bool,
    /// Which inputs have delivered the in-flight epoch's `Commit` marker.
    commits: Vec<bool>,
    commit_epoch: Option<u64>,
    commit_width: usize,
}

/// Merges `inputs` replica streams of identical schema into one, with
/// cross-partition feedback handling (see the module docs).
pub struct Merge {
    name: String,
    schema: SchemaRef,
    inputs: usize,
    /// The attribute progress punctuation is tracked on (if any).
    progress_attribute: Option<String>,
    /// Combined per-input progress watermark (min across inputs).
    progress: MinWatermark,
    /// Optional disorder bound making the merge a feedback *source*.
    disorder: Option<ExplicitPolicy>,
    high_watermark: Option<Timestamp>,
    last_feedback_cutoff: Option<Timestamp>,
    feedback_granularity: StreamDuration,
    late_dropped: u64,
    registry: FeedbackRegistry,
    /// Elastic-stage decision state (None for a fixed-width merge).
    elastic: Option<ElasticMerge>,
}

impl Merge {
    /// Creates a merge over `inputs` replica streams of the given schema
    /// (clamped to at least 2 inputs).
    pub fn new(name: impl Into<String>, schema: SchemaRef, inputs: usize) -> Self {
        let name = name.into();
        let inputs = inputs.max(2);
        Merge {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            inputs,
            progress_attribute: None,
            progress: MinWatermark::new(inputs),
            disorder: None,
            high_watermark: None,
            last_feedback_cutoff: None,
            feedback_granularity: StreamDuration::from_secs(0),
            late_dropped: 0,
            elastic: None,
        }
    }

    /// Makes this merge the decision point of an elastic stage: at each
    /// punctuation boundary it consults `policy` against the stage's load
    /// signal, issues `Resize` feedback upstream, and switches its watermark
    /// membership only once every input has delivered the `Commit` marker.
    /// `initial` is the starting replica count (clamped to `1..=inputs`) and
    /// must match the shuffle's.
    pub fn with_elastic(
        mut self,
        controller: Arc<ElasticController>,
        policy: ElasticPolicy,
        initial: usize,
    ) -> Self {
        let active = initial.clamp(1, self.inputs);
        let _ = self.progress.set_active(&membership(active, self.inputs));
        self.elastic = Some(ElasticMerge {
            controller,
            policy,
            active,
            punct_seen: 0,
            next_epoch: 1,
            in_flight: false,
            commits: vec![false; self.inputs],
            commit_epoch: None,
            commit_width: active,
        });
        self
    }

    /// The number of replicas currently routed to (equals `inputs()` for a
    /// fixed-width merge).
    pub fn active(&self) -> usize {
        self.elastic.as_ref().map(|e| e.active).unwrap_or(self.inputs)
    }

    /// Enables combined progress-punctuation handling on the named timestamp
    /// attribute: the merge emits progress punctuation at the minimum of its
    /// inputs' watermarks.
    pub fn with_progress_on(mut self, attribute: impl Into<String>) -> Self {
        self.progress_attribute = Some(attribute.into());
        self
    }

    /// Attaches a disorder-bound policy: arrivals older than
    /// `high_watermark − tolerance` are dropped and the too-late subset is
    /// broadcast as assumed feedback to **every** input.  At most one
    /// feedback message is issued per `granularity` of cutoff advance, so a
    /// burst of late tuples does not flood the control channels.
    pub fn with_disorder_policy(
        mut self,
        policy: ExplicitPolicy,
        granularity: StreamDuration,
    ) -> Self {
        self.disorder = Some(policy);
        self.feedback_granularity = granularity;
        self
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Tuples dropped for violating the disorder bound.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Applies the disorder policy to one arrival.  Returns `true` when the
    /// tuple is too late and was handled (dropped, feedback possibly sent).
    fn enforce_disorder(&mut self, tuple: &Tuple, ctx: &mut OperatorContext) -> EngineResult<bool> {
        let Some(policy) = self.disorder.as_ref() else {
            return Ok(false);
        };
        let ts = tuple.timestamp(&policy.attribute)?;
        let hw = self.high_watermark.map(|w| w.max(ts)).unwrap_or(ts);
        self.high_watermark = Some(hw);
        if !policy.violated(hw, ts) {
            return Ok(false);
        }
        self.late_dropped += 1;
        let cutoff = policy.cutoff(hw);
        let due = match self.last_feedback_cutoff {
            None => true,
            Some(prev) => cutoff - prev >= self.feedback_granularity,
        };
        if due {
            self.last_feedback_cutoff = Some(cutoff);
            let feedback = policy.feedback(self.schema.clone(), hw, &self.name)?;
            self.registry.stats_mut().issued.record(feedback.intent());
            ctx.broadcast_feedback(feedback);
        }
        Ok(true)
    }

    /// Handles an elastic-stage marker arriving embedded in a replica stream.
    /// `Migrate` is absorbed (it only matters to the replicas); `Commit` is
    /// counted per input, and once every input has delivered the marker the
    /// merge switches its watermark membership to the committed width — not
    /// before, because a retiring replica may still have tuples in flight
    /// ahead of its marker.
    fn on_stage_marker(
        &mut self,
        input: usize,
        directive: StageDirective,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let Some(elastic) = self.elastic.as_mut() else {
            return Ok(());
        };
        if let StageDirective::Commit { epoch, partitions } = directive {
            if elastic.commit_epoch != Some(epoch) {
                elastic.commit_epoch = Some(epoch);
                elastic.commits = vec![false; self.inputs];
                elastic.commit_width = partitions;
            }
            if let Some(seen) = elastic.commits.get_mut(input) {
                *seen = true;
            }
            if elastic.commits.iter().all(|&seen| seen) {
                elastic.active = elastic.commit_width.clamp(1, self.inputs);
                elastic.in_flight = false;
                elastic.commit_epoch = None;
                let released = self.progress.set_active(&membership(elastic.active, self.inputs));
                // Dropping the slowest (now dormant) input may advance the
                // combined watermark immediately.
                if let (Some(attr), Some(combined)) = (&self.progress_attribute, released) {
                    ctx.emit_punctuation(
                        0,
                        Punctuation::progress(self.schema.clone(), attr, combined)?,
                    );
                }
            }
        }
        Ok(())
    }

    /// Consults the elastic policy at a punctuation boundary on input 0 and,
    /// when it decides on a new width, issues the `Resize` directive upstream
    /// as desired feedback.  At most one resize is in flight at a time.
    fn maybe_resize(&mut self, input: usize, ctx: &mut OperatorContext) {
        let Some(elastic) = self.elastic.as_mut() else {
            return;
        };
        if input != 0 || elastic.in_flight {
            return;
        }
        elastic.punct_seen += 1;
        let load = elastic.controller.load();
        let Some(target) = elastic.policy.decide(elastic.punct_seen, load, elastic.active) else {
            return;
        };
        let target = target.clamp(1, self.inputs);
        if target == elastic.active {
            return;
        }
        let epoch = elastic.next_epoch;
        elastic.next_epoch += 1;
        elastic.in_flight = true;
        let feedback =
            FeedbackPunctuation::desired(Pattern::all_wildcards(self.schema.clone()), &self.name)
                .with_directive(StageDirective::Resize { epoch, partitions: target });
        self.registry.stats_mut().issued.record(feedback.intent());
        ctx.send_feedback(0, feedback);
    }
}

impl Operator for Merge {
    fn feedback_roles(&self) -> FeedbackRoles {
        if self.disorder.is_some() || self.elastic.is_some() {
            FeedbackRoles::relayer().with_producer()
        } else {
            FeedbackRoles::relayer()
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        self.inputs
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        if self.enforce_disorder(&tuple, ctx)? {
            return Ok(());
        }
        ctx.emit(0, tuple);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(directive) = punctuation.stage_directive() {
            return self.on_stage_marker(input, directive, ctx);
        }
        if let Some(attr) = &self.progress_attribute {
            if let Some(w) = punctuation.watermark_for(attr) {
                if let Some(combined) = self.progress.observe(input, w) {
                    ctx.emit_punctuation(
                        0,
                        Punctuation::progress(self.schema.clone(), attr, combined)?,
                    );
                }
            }
        }
        // Without progress tracking a per-input punctuation cannot be
        // forwarded (the other replicas may still produce matching tuples),
        // so it is absorbed — but it still clocks the elastic policy.
        self.maybe_resize(input, ctx);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // The merged stream is the union of the replica streams, so any
        // feedback from the consumer applies to every replica: broadcast the
        // relay upstream on all inputs.
        self.registry.stats_mut().relayed.record(feedback.intent());
        ctx.broadcast_feedback(feedback.relay(feedback.pattern().clone(), &self.name));
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    fn progress(ts: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(ts)).unwrap()
    }

    #[test]
    fn merge_interleaves_inputs_in_arrival_order() {
        let mut op = Merge::new("merge", schema(), 3);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1, 10), &mut ctx).unwrap();
        op.on_tuple(2, tuple(2, 20), &mut ctx).unwrap();
        op.on_tuple(1, tuple(3, 30), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 3);
        assert!(emitted.iter().all(|(port, _)| *port == 0));
    }

    #[test]
    fn progress_punctuation_is_the_minimum_across_inputs() {
        let mut op = Merge::new("merge", schema(), 2).with_progress_on("timestamp");
        let mut ctx = OperatorContext::new();
        op.on_punctuation(0, progress(100), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "second input has not punctuated");
        op.on_punctuation(1, progress(70), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        match &emitted[0].1 {
            StreamItem::Punctuation(p) => {
                assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(70)))
            }
            other => panic!("expected punctuation, got {other:?}"),
        }
        // Without progress tracking, punctuation is absorbed.
        let mut plain = Merge::new("merge", schema(), 2);
        plain.on_punctuation(0, progress(10), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }

    #[test]
    fn downstream_feedback_is_broadcast_to_every_replica() {
        let mut op = Merge::new("merge", schema(), 4);
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(100)))]).unwrap(),
            "sink",
        );
        op.on_feedback(0, fb.clone(), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "not per-port feedback");
        let broadcast = ctx.take_broadcast_feedback();
        assert_eq!(broadcast.len(), 1, "one message, expanded by the executor to all inputs");
        assert_eq!(broadcast[0].id(), fb.id(), "lineage preserved");
        assert_eq!(broadcast[0].issuer(), "merge");

        // The merge also guards its own output.
        op.on_tuple(0, tuple(1, 150), &mut ctx).unwrap(); // suppressed
        op.on_tuple(1, tuple(1, 50), &mut ctx).unwrap(); // passes
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn disorder_policy_drops_late_arrivals_and_issues_feedback() {
        let policy = ExplicitPolicy::disorder_bound("timestamp", StreamDuration::from_secs(60));
        let mut op = Merge::new("merge", schema(), 2)
            .with_disorder_policy(policy, StreamDuration::from_secs(30));
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(600, 1), &mut ctx).unwrap(); // sets the watermark
        op.on_tuple(1, tuple(590, 2), &mut ctx).unwrap(); // within tolerance
        assert_eq!(ctx.take_emitted().len(), 2);
        assert!(ctx.take_broadcast_feedback().is_empty());

        op.on_tuple(1, tuple(100, 3), &mut ctx).unwrap(); // far too late
        assert!(ctx.take_emitted().is_empty(), "late arrival dropped");
        assert_eq!(op.late_dropped(), 1);
        let feedback = ctx.take_broadcast_feedback();
        assert_eq!(feedback.len(), 1, "too-late subset broadcast to every replica");
        assert!(feedback[0].pattern().matches(&tuple(100, 3)));
        assert!(!feedback[0].pattern().matches(&tuple(590, 0)));

        // Cadence: another late tuple at the same cutoff is dropped silently.
        op.on_tuple(0, tuple(101, 4), &mut ctx).unwrap();
        assert_eq!(op.late_dropped(), 2);
        assert!(ctx.take_broadcast_feedback().is_empty(), "within feedback granularity");
        assert_eq!(op.feedback_stats().unwrap().issued.assumed, 1);
    }

    #[test]
    fn construction_clamps_and_exposes_schema() {
        let op = Merge::new("merge", schema(), 0);
        assert_eq!(op.inputs(), 2, "clamped to two inputs");
        assert_eq!(op.schema().arity(), 2);
        assert_eq!(op.late_dropped(), 0);
    }

    #[test]
    fn scripted_policy_issues_one_resize_and_waits_for_commit() {
        let controller = ElasticController::shared();
        let mut op = Merge::new("merge", schema(), 4).with_elastic(
            controller,
            ElasticPolicy::Scripted(vec![(1, 3)]),
            1,
        );
        assert_eq!(op.active(), 1);
        let mut ctx = OperatorContext::new();

        op.on_punctuation(0, progress(10), &mut ctx).unwrap();
        let sent = ctx.take_feedback();
        assert_eq!(sent.len(), 1, "first boundary fires the scripted resize");
        assert_eq!(sent[0].0, 0, "directive rides input 0's control channel");
        assert_eq!(
            sent[0].1.stage_directive(),
            Some(StageDirective::Resize { epoch: 1, partitions: 3 })
        );

        // No second decision while the resize is in flight.
        op.on_punctuation(0, progress(20), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "one resize in flight at a time");
        assert_eq!(op.active(), 1, "membership switches only at commit");
    }

    #[test]
    fn commit_markers_switch_membership_only_when_unanimous() {
        let controller = ElasticController::shared();
        let mut op = Merge::new("merge", schema(), 3).with_progress_on("timestamp").with_elastic(
            controller,
            ElasticPolicy::Scripted(vec![]),
            3,
        );
        let mut ctx = OperatorContext::new();
        let commit =
            Punctuation::directive(schema(), StageDirective::Commit { epoch: 1, partitions: 2 });

        // The soon-dormant input 2 is silent; the active pair has punctuated.
        op.on_punctuation(0, progress(100), &mut ctx).unwrap();
        op.on_punctuation(1, progress(80), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "input 2 still holds the watermark");

        op.on_punctuation(0, commit.clone(), &mut ctx).unwrap();
        op.on_punctuation(1, commit.clone(), &mut ctx).unwrap();
        assert_eq!(op.active(), 3, "two of three markers is not a cut");
        assert!(ctx.take_emitted().is_empty());

        op.on_punctuation(2, commit, &mut ctx).unwrap();
        assert_eq!(op.active(), 2, "unanimous markers commit the new width");
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1, "dropping the silent input releases the watermark");
        match &emitted[0].1 {
            StreamItem::Punctuation(p) => {
                assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(80)))
            }
            other => panic!("expected punctuation, got {other:?}"),
        }
    }
}
