//! PRIORITIZER: exploiting *desired* punctuation.
//!
//! Desired feedback (`?[p]`) asks that the described subset be produced as
//! soon as possible without changing the overall result.  The prioritizer is a
//! reordering buffer that realizes this: it holds up to `buffer_capacity`
//! tuples and, whenever it releases one, releases desired tuples first.
//! Embedded punctuation flushes the buffer completely (so no tuple is held
//! past a progress boundary and correctness of downstream windowing is
//! unaffected).

use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{
    FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};
use std::collections::VecDeque;

/// A bounded reordering buffer that serves desired subsets first.
pub struct Prioritizer {
    name: String,
    schema: SchemaRef,
    buffer_capacity: usize,
    priority: VecDeque<Tuple>,
    normal: VecDeque<Tuple>,
    registry: FeedbackRegistry,
    reordered: u64,
}

impl Prioritizer {
    /// Creates a prioritizer holding at most `buffer_capacity` tuples.
    pub fn new(name: impl Into<String>, schema: SchemaRef, buffer_capacity: usize) -> Self {
        let name = name.into();
        Prioritizer {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            buffer_capacity: buffer_capacity.max(1),
            priority: VecDeque::new(),
            normal: VecDeque::new(),
            reordered: 0,
        }
    }

    /// Number of tuples that were released ahead of earlier-arrived tuples.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn buffered(&self) -> usize {
        self.priority.len() + self.normal.len()
    }

    fn release_one(&mut self, ctx: &mut OperatorContext) {
        if let Some(t) = self.priority.pop_front() {
            if !self.normal.is_empty() {
                self.reordered += 1;
            }
            ctx.emit(0, t);
        } else if let Some(t) = self.normal.pop_front() {
            ctx.emit(0, t);
        }
    }

    fn release_all(&mut self, ctx: &mut OperatorContext) {
        while self.buffered() > 0 {
            self.release_one(ctx);
        }
    }
}

impl Operator for Prioritizer {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        match self.registry.decide(&tuple) {
            GuardDecision::Suppress => return Ok(()),
            GuardDecision::Prioritize => self.priority.push_back(tuple),
            GuardDecision::Pass => self.normal.push_back(tuple),
        }
        while self.buffered() > self.buffer_capacity {
            self.release_one(ctx);
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Never hold tuples across a progress boundary.
        self.release_all(ctx);
        self.registry.expire_with(&punctuation);
        ctx.emit_punctuation(0, punctuation);
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let is_desired = feedback.intent() == FeedbackIntent::Desired;
        let _ = self.registry.register(feedback);
        if is_desired {
            // Re-triage the already-buffered tuples under the new priority and
            // relay the request upstream (prioritization compounds).
            let drained: Vec<Tuple> = self.normal.drain(..).collect();
            for t in drained {
                if self.registry.peek(&t) == GuardDecision::Prioritize {
                    self.priority.push_back(t);
                } else {
                    self.normal.push_back(t);
                }
            }
            if let Some(last) = self.registry.desired_patterns().last() {
                ctx.send_feedback(0, last.clone());
            }
        }
        Ok(())
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.release_all(ctx);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn tuple(seg: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(seg)])
    }

    fn desired(seg: i64) -> FeedbackPunctuation {
        FeedbackPunctuation::desired(
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))])
                .unwrap(),
            "consumer",
        )
    }

    fn emitted_segments(ctx: &mut OperatorContext) -> Vec<i64> {
        ctx.take_emitted()
            .into_iter()
            .filter_map(|(_, item)| match item {
                StreamItem::Tuple(t) => Some(t.int("segment").unwrap()),
                StreamItem::Punctuation(_) => None,
            })
            .collect()
    }

    #[test]
    fn without_feedback_order_is_preserved() {
        let mut op = Prioritizer::new("prio", schema(), 2);
        let mut ctx = OperatorContext::new();
        for seg in [1, 2, 3, 4, 5] {
            op.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        op.on_flush(&mut ctx).unwrap();
        assert_eq!(emitted_segments(&mut ctx), vec![1, 2, 3, 4, 5]);
        assert_eq!(op.reordered(), 0);
    }

    #[test]
    fn desired_tuples_overtake_buffered_ones() {
        let mut op = Prioritizer::new("prio", schema(), 3);
        let mut ctx = OperatorContext::new();
        op.on_feedback(0, desired(9), &mut ctx).unwrap();
        let _ = ctx.take_feedback();
        for seg in [1, 2, 9, 3, 9] {
            op.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        op.on_flush(&mut ctx).unwrap();
        let order = emitted_segments(&mut ctx);
        assert_eq!(order.len(), 5);
        let first_nine = order.iter().position(|s| *s == 9).unwrap();
        let last_normal = order.iter().rposition(|s| *s != 9).unwrap();
        assert!(first_nine < last_normal, "desired tuples released before some earlier arrivals");
        assert!(op.reordered() > 0);
        // Same multiset either way.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 9, 9]);
    }

    #[test]
    fn desired_feedback_retriages_existing_buffer_and_is_relayed() {
        let mut op = Prioritizer::new("prio", schema(), 10);
        let mut ctx = OperatorContext::new();
        for seg in [1, 9, 2] {
            op.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        op.on_feedback(0, desired(9), &mut ctx).unwrap();
        assert_eq!(ctx.take_feedback().len(), 1, "relayed upstream");
        op.on_flush(&mut ctx).unwrap();
        let order = emitted_segments(&mut ctx);
        assert_eq!(order[0], 9, "buffered desired tuple released first");
    }

    #[test]
    fn punctuation_flushes_the_buffer() {
        let mut op = Prioritizer::new("prio", schema(), 100);
        let mut ctx = OperatorContext::new();
        for seg in [1, 2, 3] {
            op.on_tuple(0, tuple(seg), &mut ctx).unwrap();
        }
        assert!(emitted_segments(&mut ctx).is_empty(), "buffered");
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(1)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 4, "3 tuples + the punctuation itself");
    }

    #[test]
    fn assumed_feedback_suppresses_tuples() {
        let mut op = Prioritizer::new("prio", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(1)))])
                    .unwrap(),
                "consumer",
            ),
            &mut ctx,
        )
        .unwrap();
        op.on_tuple(0, tuple(1), &mut ctx).unwrap();
        op.on_tuple(0, tuple(2), &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        assert_eq!(emitted_segments(&mut ctx), vec![2]);
    }
}
