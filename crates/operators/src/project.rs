//! PROJECT (π): attribute projection.
//!
//! Projection changes the schema, so relaying feedback requires rewriting the
//! pattern from the (projected) output schema back onto the input schema via
//! an attribute mapping.  Attributes the feedback constrains always exist in
//! the input (they survived the projection), so safe propagation always exists
//! and is computed with [`dsms_feedback::mapping::propagate_through`].

use dsms_engine::{EngineResult, Operator, OperatorContext, Page, StreamItem};
use dsms_feedback::{
    mapping::propagate_through, AttributeMapping, BatchGuardDecision, FeedbackIntent,
    FeedbackPunctuation, FeedbackRegistry, FeedbackRoles, GuardDecision, PropagationOutcome,
};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};
use std::sync::Arc;

/// A projection onto a subset of attributes (by name), preserving order.
pub struct Project {
    name: String,
    input_schema: SchemaRef,
    output_schema: SchemaRef,
    indices: Vec<usize>,
    mapping: AttributeMapping,
    registry: FeedbackRegistry,
}

impl Project {
    /// Creates a projection keeping the named attributes of `input_schema`, in
    /// the order given.
    pub fn new(
        name: impl Into<String>,
        input_schema: SchemaRef,
        keep: &[&str],
    ) -> dsms_types::TypeResult<Self> {
        let name = name.into();
        let indices: Vec<usize> =
            keep.iter().map(|a| input_schema.index_of(a)).collect::<Result<_, _>>()?;
        let output_schema = Arc::new(input_schema.project(&indices)?);
        let mapping = AttributeMapping::by_name(output_schema.clone(), input_schema.clone())?;
        Ok(Project {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            input_schema,
            output_schema,
            indices,
            mapping,
        })
    }

    /// The output schema.
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }
}

impl Operator for Project {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.input_schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.output_schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let projected = tuple.project(&self.indices, self.output_schema.clone())?;
        if self.registry.decide(&projected) == GuardDecision::Suppress {
            return Ok(());
        }
        ctx.emit(0, projected);
        Ok(())
    }

    /// Columnar kernel: projection is a column *take* — the output columns
    /// are a subset of the input columns — so guards over the output schema
    /// can be tested against the corresponding *input* column summaries
    /// before any row is projected.
    ///
    /// * [`BatchGuardDecision::SuppressAll`] — no row is even projected
    ///   (punctuation still flows, remapped).
    /// * [`BatchGuardDecision::PassAll`] — project each row without
    ///   per-projected-tuple guard probes.
    /// * [`BatchGuardDecision::Mixed`] — fall back to the exact per-tuple
    ///   path.
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, Page, StreamItem};
    /// use dsms_feedback::FeedbackPunctuation;
    /// use dsms_operators::Project;
    /// use dsms_punctuation::{Pattern, PatternItem};
    /// use dsms_types::{DataType, Schema, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("segment", DataType::Int), ("speed", DataType::Float)]);
    /// let mut project = Project::new("narrow", schema.clone(), &["speed"]).unwrap();
    /// let mut ctx = OperatorContext::new();
    /// // The guard is expressed over the *output* schema; the kernel remaps
    /// // it to the corresponding input column's summary.
    /// let covered = Pattern::for_attributes(
    ///     project.output_schema().clone(),
    ///     &[("speed", PatternItem::Ge(Value::Float(100.0)))],
    /// )
    /// .unwrap();
    /// project.on_feedback(0, FeedbackPunctuation::assumed(covered, "sink"), &mut ctx).unwrap();
    ///
    /// let row = |s: f64| {
    ///     StreamItem::Tuple(Tuple::new(schema.clone(), vec![Value::Int(1), Value::Float(s)]))
    /// };
    /// // Every input row has speed >= 100: no row is even projected.
    /// project.on_page(0, Page::from_items(vec![row(120.0), row(130.0)]), &mut ctx).unwrap();
    /// assert_eq!(ctx.take_emitted().len(), 0);
    /// // Every input row is provably clear: projected with no guard probes.
    /// project.on_page(0, Page::from_items(vec![row(40.0), row(50.0)]), &mut ctx).unwrap();
    /// assert_eq!(ctx.take_emitted().len(), 2);
    /// assert_eq!(project.feedback_stats().unwrap().batches_summary_conclusive, 2);
    /// ```
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        // Guards are registered over the output schema; output column `c` is
        // input column `indices[c]`, so the take mapping doubles as the
        // summary remap.
        let indices = &self.indices;
        let decision = self.registry.decide_batch(page.tuple_count(), |c| {
            indices.get(c).and_then(|&src| page.column_summary(src))
        });
        match decision {
            BatchGuardDecision::SuppressAll => {
                for item in page {
                    if let StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
            }
            BatchGuardDecision::PassAll => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => {
                            let projected =
                                tuple.project(&self.indices, self.output_schema.clone())?;
                            ctx.emit(0, projected);
                        }
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
            BatchGuardDecision::Mixed => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Project the punctuation pattern onto the output schema; attributes
        // projected away simply disappear from the pattern (the punctuation
        // still correctly describes a completed subset of the output).
        let mapping: Vec<Option<usize>> = self.indices.iter().map(|i| Some(*i)).collect();
        let pattern = punctuation.pattern().remap(self.output_schema.clone(), &mapping)?;
        if !pattern.is_unconstrained() {
            ctx.emit_punctuation(0, Punctuation::new(pattern));
        }
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if feedback.intent() == FeedbackIntent::Assumed {
            match propagate_through(&feedback, &self.mapping, &self.name)? {
                PropagationOutcome::Propagate(relayed) => {
                    self.registry.stats_mut().relayed.record(feedback.intent());
                    ctx.send_feedback(0, relayed);
                }
                PropagationOutcome::NothingToPropagate | PropagationOutcome::Unsafe { .. } => {}
            }
        }
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }

    /// PROJECT is dedupe-able: its behaviour is fully determined by its name,
    /// input schema, and the kept column indices.
    fn fingerprint(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut hasher = dsms_types::FixedHasher::new();
        "project".hash(&mut hasher);
        self.name.hash(&mut hasher);
        for name in self.input_schema.names() {
            name.hash(&mut hasher);
        }
        self.indices.hash(&mut hasher);
        Some(hasher.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
            ("detector", DataType::Int),
        ])
    }

    fn tuple(seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::Timestamp(Timestamp::from_secs(1)),
                Value::Int(seg),
                Value::Float(speed),
                Value::Int(7),
            ],
        )
    }

    #[test]
    fn project_narrows_tuples() {
        let mut op = Project::new("proj", schema(), &["segment", "speed"]).unwrap();
        assert_eq!(op.output_schema().names(), vec!["segment", "speed"]);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(3, 55.0), &mut ctx).unwrap();
        let out = ctx.take_emitted();
        assert_eq!(out.len(), 1);
        let t = out[0].1.as_tuple().unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.int("segment").unwrap(), 3);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        assert!(Project::new("proj", schema(), &["volume"]).is_err());
    }

    #[test]
    fn punctuation_is_projected() {
        let mut op = Project::new("proj", schema(), &["segment", "speed"]).unwrap();
        let mut ctx = OperatorContext::new();
        let p = Punctuation::group_complete(schema(), "segment", Value::Int(4)).unwrap();
        op.on_punctuation(0, p, &mut ctx).unwrap();
        let out = ctx.take_emitted();
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            StreamItem::Punctuation(p) => assert_eq!(p.to_string(), "[4, *]"),
            other => panic!("expected punctuation, got {other:?}"),
        }

        // A punctuation only about a projected-away attribute is dropped (it
        // says nothing about the output).
        let p = Punctuation::group_complete(schema(), "detector", Value::Int(7)).unwrap();
        op.on_punctuation(0, p, &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }

    #[test]
    fn on_page_batch_projects_tuples_and_punctuation() {
        let mut op = Project::new("proj", schema(), &["segment", "speed"]).unwrap();
        let mut ctx = OperatorContext::new();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 40.0)),
            StreamItem::Punctuation(
                Punctuation::group_complete(schema(), "segment", Value::Int(1)).unwrap(),
            ),
            StreamItem::Tuple(tuple(2, 50.0)),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let out = ctx.take_emitted();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1.as_tuple().unwrap().arity(), 2);
        assert_eq!(out[1].1.as_punctuation().unwrap().to_string(), "[1, *]");
    }

    #[test]
    fn on_page_suppresses_covered_batches_via_input_summaries() {
        let mut op = Project::new("proj", schema(), &["segment", "speed"]).unwrap();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        ctx.take_feedback();
        // The guard constrains output column 0 (= input column 1, segment).
        // A page entirely within the guard is dropped without projecting.
        let covered = Page::from_items(vec![
            StreamItem::Tuple(tuple(3, 40.0)),
            StreamItem::Tuple(tuple(3, 50.0)),
        ]);
        op.on_page(0, covered, &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
        // A page provably outside the guard projects without per-tuple probes.
        let clear = Page::from_items(vec![
            StreamItem::Tuple(tuple(5, 40.0)),
            StreamItem::Tuple(tuple(6, 50.0)),
        ]);
        op.on_page(0, clear, &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2);
        let stats = op.feedback_stats().unwrap();
        assert_eq!(stats.tuples_suppressed, 2);
        assert_eq!(stats.batches_summary_conclusive, 2);
        assert_eq!(stats.batches_summary_fallback, 0);
    }

    #[test]
    fn feedback_is_rewritten_onto_the_input_schema() {
        let mut op = Project::new("proj", schema(), &["segment", "speed"]).unwrap();
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(
                op.output_schema().clone(),
                &[("segment", PatternItem::Eq(Value::Int(3)))],
            )
            .unwrap(),
            "downstream",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 1);
        assert_eq!(relayed[0].1.pattern().to_string(), "[*, 3, *, *]");
        // Subsequent matching tuples are suppressed locally too.
        op.on_tuple(0, tuple(3, 50.0), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }
}
