//! Operator-library sugar for the engine's fluent [`Stream`] API.
//!
//! `dsms-engine`'s [`Stream`] knows how to draw schema-checked edges and
//! lower feedback subscriptions, but it cannot name concrete operators (the
//! engine does not depend on this crate).  [`StreamOps`] closes the loop: it
//! extends [`Stream`] with combinators that *construct* the library operators
//! from the schema the stream already carries — `.select(…)`, `.project(…)`,
//! `.window_avg(…)`, `.union(…)`, `.split(…)`, `.partitioned(…)`,
//! `.sink_collect(…)` — so a plan reads as a dataflow expression and schema
//! mistakes surface at the exact call that makes them.
//!
//! Everything here lowers through the generic [`Stream::apply`] /
//! [`Stream::merge`] / [`Stream::sink`] surface; operators the sugar does not
//! cover (joins, PACE, IMPUTE, gates, custom operators) connect through those
//! same generic methods.

use crate::aggregate::{AggregateFunction, WindowAggregate};
use crate::common::TuplePredicate;
use crate::elastic::{ElasticController, ElasticPolicy, ElasticReplica};
use crate::merge::Merge;
use crate::project::Project;
use crate::select::Select;
use crate::shuffle::Shuffle;
use crate::sink::{CollectSink, SinkHandle, TimedSink, TimedSinkHandle};
use crate::split::Split;
use crate::union::Union;
use dsms_engine::{EngineError, EngineResult, Operator, Stream};
use dsms_types::StreamDuration;

/// Fluent operator-library combinators on [`Stream`].
///
/// # Examples
///
/// The quickstart pipeline as one expression — source, filter, sink, plus a
/// composition-time feedback subscription:
///
/// ```
/// use dsms_engine::{StreamBuilder, SyncExecutor};
/// use dsms_feedback::FeedbackSpec;
/// use dsms_operators::{StreamOps, TuplePredicate, VecSource};
/// use dsms_punctuation::{Pattern, PatternItem};
/// use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};
///
/// let schema = Schema::shared(&[("ts", DataType::Timestamp), ("segment", DataType::Int)]);
/// let readings: Vec<Tuple> = (0..100)
///     .map(|i| {
///         Tuple::new(
///             schema.clone(),
///             vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 4)],
///         )
///     })
///     .collect();
///
/// let builder = StreamBuilder::new().with_page_capacity(8);
/// let ignore_segment_3 = FeedbackSpec::assumed(
///     Pattern::for_attributes(schema.clone(), &[("segment", PatternItem::Eq(Value::Int(3)))])
///         .unwrap(),
/// )
/// .after_tuples(10);
/// let results = builder
///     .source(VecSource::new("sensors", readings))?
///     .select("nonnegative", TuplePredicate::new("segment >= 0", |t| {
///         t.int("segment").unwrap_or(-1) >= 0
///     }))?
///     .with_feedback(ignore_segment_3)?
///     .sink_collect("sink")?;
/// let report = SyncExecutor::run(builder.build()?)?;
/// assert!(results.lock().len() < 100, "the subscription suppressed segment 3 upstream");
/// assert_eq!(report.operator("sensors").unwrap().feedback_in, 1);
/// # Ok::<(), dsms_engine::EngineError>(())
/// ```
pub trait StreamOps: Sized {
    /// Filters the stream with a stateless, feedback-extensible SELECT built
    /// over the stream's schema.
    fn select(self, name: impl Into<String>, predicate: TuplePredicate) -> EngineResult<Stream>;

    /// Projects the stream onto the named attributes (order preserved).
    fn project(self, name: impl Into<String>, keep: &[&str]) -> EngineResult<Stream>;

    /// Aggregates the stream into tumbling windows of `window` on
    /// `timestamp_attribute`, grouped by `group_attributes`.
    fn aggregate(
        self,
        name: impl Into<String>,
        timestamp_attribute: &str,
        window: StreamDuration,
        group_attributes: &[&str],
        function: AggregateFunction,
    ) -> EngineResult<Stream>;

    /// Sugar for [`aggregate`](StreamOps::aggregate) with
    /// [`AggregateFunction::Avg`] over `value_attribute` — the paper's
    /// per-segment windowed AVERAGE.
    fn window_avg(
        self,
        name: impl Into<String>,
        timestamp_attribute: &str,
        window: StreamDuration,
        group_attributes: &[&str],
        value_attribute: &str,
    ) -> EngineResult<Stream>;

    /// Merges this stream with `other` through a UNION built over this
    /// stream's schema (rejects `other` at composition time when its schema
    /// differs).
    fn union(self, other: Stream, name: impl Into<String>) -> EngineResult<Stream>;

    /// Splits the stream by content: the first returned stream carries tuples
    /// satisfying `condition`, the second the rest.
    fn split(
        self,
        name: impl Into<String>,
        condition: TuplePredicate,
    ) -> EngineResult<(Stream, Stream)>;

    /// Replicates a schema-preserving stage `partitions` ways behind a
    /// `{name}-shuffle` / `{name}-merge` pair hash-partitioned on the `key`
    /// attributes (the fluent form of
    /// [`PartitionedExt::partitioned`](crate::PartitionedExt::partitioned)).
    fn partitioned<O, F>(
        self,
        name: &str,
        key: &[&str],
        partitions: usize,
        make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O;

    /// [`partitioned`](StreamOps::partitioned) with caller-built endpoints —
    /// needed when the replicas change the schema (build the [`Merge`] over
    /// their output schema) or when the merge carries a disorder policy.
    fn partitioned_stage<O, F>(
        self,
        shuffle: Shuffle,
        merge: Merge,
        make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O;

    /// [`partitioned_stage`](StreamOps::partitioned_stage) made resizable at
    /// runtime: the stage is built at the shuffle's full width, starts with
    /// `initial` active replicas, and grows or shrinks when `policy` decides
    /// at a punctuation boundary — the merge sends the decision upstream as a
    /// feedback directive and keyed replica state migrates at the resulting
    /// consistent cut (see [`crate::elastic`] for the protocol).  Replicas
    /// must implement [`Operator::export_state`] /
    /// [`Operator::import_state`] if they hold keyed state.
    fn elastic_stage<O, F>(
        self,
        shuffle: Shuffle,
        merge: Merge,
        initial: usize,
        policy: ElasticPolicy,
        make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O;

    /// Terminates the stream in a [`CollectSink`], returning the handle to
    /// its collected results.
    fn sink_collect(self, name: impl Into<String>) -> EngineResult<SinkHandle>;

    /// Terminates the stream in a [`TimedSink`], returning the handle to its
    /// arrival-timed results.
    fn sink_timed(self, name: impl Into<String>) -> EngineResult<TimedSinkHandle>;
}

impl StreamOps for Stream {
    fn select(self, name: impl Into<String>, predicate: TuplePredicate) -> EngineResult<Stream> {
        let schema = self.schema().clone();
        self.apply(Select::new(name, schema, predicate))
    }

    fn project(self, name: impl Into<String>, keep: &[&str]) -> EngineResult<Stream> {
        let schema = self.schema().clone();
        self.apply(Project::new(name, schema, keep).map_err(EngineError::from)?)
    }

    fn aggregate(
        self,
        name: impl Into<String>,
        timestamp_attribute: &str,
        window: StreamDuration,
        group_attributes: &[&str],
        function: AggregateFunction,
    ) -> EngineResult<Stream> {
        let schema = self.schema().clone();
        self.apply(
            WindowAggregate::new(
                name,
                schema,
                timestamp_attribute,
                window,
                group_attributes,
                function,
            )
            .map_err(EngineError::from)?,
        )
    }

    fn window_avg(
        self,
        name: impl Into<String>,
        timestamp_attribute: &str,
        window: StreamDuration,
        group_attributes: &[&str],
        value_attribute: &str,
    ) -> EngineResult<Stream> {
        self.aggregate(
            name,
            timestamp_attribute,
            window,
            group_attributes,
            AggregateFunction::Avg(value_attribute.into()),
        )
    }

    fn union(self, other: Stream, name: impl Into<String>) -> EngineResult<Stream> {
        let op = Union::new(name, self.schema().clone(), 2);
        self.combine(other, op)
    }

    fn split(
        self,
        name: impl Into<String>,
        condition: TuplePredicate,
    ) -> EngineResult<(Stream, Stream)> {
        let schema = self.schema().clone();
        let mut streams = self.apply_multi(Split::new(name, schema, condition))?.into_iter();
        let matching = streams.next().expect("split declares two outputs");
        let rest = streams.next().expect("split declares two outputs");
        Ok((matching, rest))
    }

    fn partitioned<O, F>(
        self,
        name: &str,
        key: &[&str],
        partitions: usize,
        make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O,
    {
        crate::partition::check_partition_count(name, partitions)?;
        let schema = self.schema().clone();
        let shuffle = Shuffle::new(format!("{name}-shuffle"), schema.clone(), key, partitions)?;
        let merge = Merge::new(format!("{name}-merge"), schema, partitions);
        self.partitioned_stage(shuffle, merge, make)
    }

    fn partitioned_stage<O, F>(
        self,
        shuffle: Shuffle,
        merge: Merge,
        mut make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O,
    {
        crate::partition::check_stage_endpoints(&shuffle, &merge)?;
        let partitions = shuffle.partitions();
        let replica_output = merge.schema().clone();
        let partition_streams = self.apply_multi(shuffle)?;
        let mut replica_streams = Vec::with_capacity(partitions);
        for (partition, stream) in partition_streams.into_iter().enumerate() {
            replica_streams.push(stream.apply_as(make(partition), replica_output.clone())?);
        }
        Stream::merge(replica_streams, merge)
    }

    fn elastic_stage<O, F>(
        self,
        shuffle: Shuffle,
        merge: Merge,
        initial: usize,
        policy: ElasticPolicy,
        mut make: F,
    ) -> EngineResult<Stream>
    where
        O: Operator + 'static,
        F: FnMut(usize) -> O,
    {
        crate::partition::check_stage_endpoints(&shuffle, &merge)?;
        let controller = ElasticController::shared();
        let shuffle = shuffle.with_elastic(controller.clone(), initial);
        let merge = merge.with_elastic(controller.clone(), policy, initial);
        let partitions = shuffle.partitions();
        let replica_output = merge.schema().clone();
        let partition_streams = self.apply_multi(shuffle)?;
        let mut replica_streams = Vec::with_capacity(partitions);
        for (partition, stream) in partition_streams.into_iter().enumerate() {
            let replica = ElasticReplica::new(make(partition), partition, controller.clone());
            replica_streams.push(stream.apply_as(replica, replica_output.clone())?);
        }
        Stream::merge(replica_streams, merge)
    }

    fn sink_collect(self, name: impl Into<String>) -> EngineResult<SinkHandle> {
        let (sink, handle) = CollectSink::new(name);
        self.sink(sink)?;
        Ok(handle)
    }

    fn sink_timed(self, name: impl Into<String>) -> EngineResult<TimedSinkHandle> {
        let (sink, handle) = TimedSink::new(name);
        self.sink(sink)?;
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use dsms_engine::{StreamBuilder, SyncExecutor, ThreadedExecutor};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("ts", DataType::Timestamp),
            ("seg", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn readings(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    schema(),
                    vec![
                        Value::Timestamp(Timestamp::from_secs(i)),
                        Value::Int(i % 5),
                        Value::Float(30.0 + (i % 20) as f64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn select_project_aggregate_chain_runs_on_both_executors() {
        for threaded in [false, true] {
            let builder = StreamBuilder::new().with_page_capacity(8).with_queue_capacity(4);
            let results = builder
                .source(
                    VecSource::new("sensors", readings(300))
                        .with_punctuation("ts", StreamDuration::from_secs(60)),
                )
                .unwrap()
                .select(
                    "moving",
                    TuplePredicate::new("speed > 0", |t| t.float("speed").unwrap_or(0.0) > 0.0),
                )
                .unwrap()
                .window_avg("AVG", "ts", StreamDuration::from_secs(60), &["seg"], "speed")
                .unwrap()
                .project("windows-only", &["window", "avg"])
                .unwrap()
                .sink_collect("out")
                .unwrap();
            let plan = builder.build().unwrap();
            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(results.lock().len(), 25, "5 windows × 5 segments, threaded={threaded}");
            assert_eq!(report.operator("AVG").unwrap().tuples_in, 300);
        }
    }

    #[test]
    fn split_and_union_roundtrip_preserves_the_stream() {
        let builder = StreamBuilder::new().with_page_capacity(8);
        let (slow, fast) = builder
            .source(VecSource::new("sensors", readings(100)))
            .unwrap()
            .split(
                "by-speed",
                TuplePredicate::new("speed < 40", |t| t.float("speed").unwrap_or(0.0) < 40.0),
            )
            .unwrap();
        let results = slow.union(fast, "reunite").unwrap().sink_collect("out").unwrap();
        let report = SyncExecutor::run(builder.build().unwrap()).unwrap();
        assert_eq!(results.lock().len(), 100, "split ∪ rest = everything");
        assert_eq!(report.operator("reunite").unwrap().tuples_out, 100);
    }

    #[test]
    fn union_of_mismatched_schemas_is_rejected_at_composition_time() {
        let other = Schema::shared(&[("ts", DataType::Timestamp), ("volume", DataType::Int)]);
        let builder = StreamBuilder::new();
        let left = builder.source(VecSource::new("sensors", readings(10))).unwrap();
        let right = builder.source_as(VecSource::new("volumes", Vec::new()), other).unwrap();
        let err = left.union(right, "bad-union").unwrap_err().to_string();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("`volumes`") && err.contains("`bad-union`"), "{err}");
    }

    #[test]
    fn fluent_partitioned_stage_matches_partitions() {
        let builder = StreamBuilder::new().with_page_capacity(4).with_queue_capacity(4);
        let results = builder
            .source(VecSource::new("sensors", readings(200)))
            .unwrap()
            .partitioned("stage", &["seg"], 4, |i| {
                Select::new(format!("replica-{i}"), schema(), TuplePredicate::always())
            })
            .unwrap()
            .sink_collect("out")
            .unwrap();
        let plan = builder.build().unwrap();
        assert_eq!(plan.node_count(), 2 + 4 + 2, "source + shuffle + 4 replicas + merge + sink");
        let report = SyncExecutor::run(plan).unwrap();
        assert_eq!(results.lock().len(), 200);
        assert_eq!(report.total_feedback_dropped(), 0);
    }

    #[test]
    fn elastic_stage_matches_the_fixed_partition_digest() {
        fn agg(i: usize) -> WindowAggregate {
            WindowAggregate::new(
                format!("replica-{i}"),
                schema(),
                "ts",
                StreamDuration::from_secs(60),
                &["seg"],
                AggregateFunction::Avg("speed".into()),
            )
            .unwrap()
        }
        fn digest(tuples: &[Tuple]) -> String {
            let mut lines: Vec<String> =
                tuples.iter().map(|t| format!("{:?}", t.values())).collect();
            lines.sort();
            lines.join("\n")
        }
        let out_schema = agg(0).output_schema().clone();
        let source = || {
            VecSource::new("sensors", readings(300))
                .with_punctuation("ts", StreamDuration::from_secs(30))
        };

        // Fixed-width baseline: all four replicas active for the whole run.
        let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
        let shuffle = Shuffle::new("stage-shuffle", schema(), &["seg"], 4).unwrap();
        let merge = Merge::new("stage-merge", out_schema.clone(), 4);
        let fixed = builder
            .source(source())
            .unwrap()
            .partitioned_stage(shuffle, merge, agg)
            .unwrap()
            .sink_collect("out")
            .unwrap();
        SyncExecutor::run(builder.build().unwrap()).unwrap();
        let expected = digest(&fixed.lock());

        // Elastic run: 1 replica, scale out to 3, then in to 2, mid-stream.
        let builder = StreamBuilder::new().with_page_capacity(2).with_queue_capacity(1);
        let shuffle = Shuffle::new("stage-shuffle", schema(), &["seg"], 4).unwrap();
        let merge = Merge::new("stage-merge", out_schema, 4);
        let elastic = builder
            .source(source())
            .unwrap()
            .elastic_stage(shuffle, merge, 1, ElasticPolicy::Scripted(vec![(2, 3), (4, 2)]), agg)
            .unwrap()
            .sink_collect("out")
            .unwrap();
        let report = SyncExecutor::run(builder.build().unwrap()).unwrap();
        assert_eq!(digest(&elastic.lock()), expected, "resizes must not change the result");
        assert_eq!(report.total_feedback_dropped(), 0);
        let stats = report.operator("stage-shuffle").unwrap().elastic.clone().unwrap();
        assert_eq!(stats.resizes, 2, "scale-out and scale-in both committed");
        assert_eq!(stats.epochs, vec![(1, 3), (2, 2)]);
        assert!(stats.migrated_groups > 0, "open groups moved at the first cut");
    }

    #[test]
    fn fluent_partitioned_rejects_single_partition_and_mismatched_endpoints() {
        let builder = StreamBuilder::new();
        let err = builder
            .source(VecSource::new("sensors", readings(10)))
            .unwrap()
            .partitioned("solo", &["seg"], 1, |i| {
                Select::new(format!("replica-{i}"), schema(), TuplePredicate::always())
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("at least 2 partitions"), "{err}");

        let builder = StreamBuilder::new();
        let shuffle = Shuffle::new("s", schema(), &["seg"], 4).unwrap();
        let merge = Merge::new("m", schema(), 3);
        let err = builder
            .source(VecSource::new("sensors", readings(10)))
            .unwrap()
            .partitioned_stage(shuffle, merge, |i| {
                Select::new(format!("replica-{i}"), schema(), TuplePredicate::always())
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("must agree"), "{err}");
    }
}
