//! Sinks: result collection and arrival-time recording.
//!
//! [`CollectSink`] gathers result tuples into a shared buffer the test or
//! experiment harness can read after execution.  [`TimedSink`] additionally
//! records the wall-clock arrival time of every tuple relative to the start of
//! the run — the raw data behind Figures 5 and 6 (tuple id vs. output time).
//! Sinks can also act as *event-driven feedback sources* (e.g. the speed-map
//! display sending viewport feedback): callers attach a feedback schedule that
//! the sink emits as it observes the stream advance.

use dsms_engine::{EngineResult, Operator, OperatorContext, Page, StreamItem};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles};
use dsms_punctuation::Punctuation;
use dsms_types::{Timestamp, Tuple};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared handle to a [`CollectSink`]'s results.
pub type SinkHandle = Arc<Mutex<Vec<Tuple>>>;

/// A sink that collects every arriving tuple.
pub struct CollectSink {
    name: String,
    collected: SinkHandle,
    punctuations: Arc<Mutex<Vec<Punctuation>>>,
}

impl CollectSink {
    /// Creates a sink and returns it with a handle to its result buffer.
    pub fn new(name: impl Into<String>) -> (Self, SinkHandle) {
        let collected: SinkHandle = Arc::new(Mutex::new(Vec::new()));
        (
            CollectSink {
                name: name.into(),
                collected: collected.clone(),
                punctuations: Arc::new(Mutex::new(Vec::new())),
            },
            collected,
        )
    }

    /// A handle to the punctuations observed by the sink.
    pub fn punctuation_handle(&self) -> Arc<Mutex<Vec<Punctuation>>> {
        self.punctuations.clone()
    }
}

impl Operator for CollectSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        0
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.collected.lock().push(tuple);
        Ok(())
    }

    fn on_page(
        &mut self,
        _input: usize,
        page: Page,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Batch fast path: take each result lock once per page, not per item.
        let mut collected = self.collected.lock();
        let mut punctuations = None;
        for item in page {
            match item {
                StreamItem::Tuple(tuple) => collected.push(tuple),
                StreamItem::Punctuation(punctuation) => {
                    punctuations.get_or_insert_with(|| self.punctuations.lock()).push(punctuation)
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.punctuations.lock().push(punctuation);
        Ok(())
    }
}

/// One recorded arrival at a [`TimedSink`].
#[derive(Debug, Clone)]
pub struct TimedArrival {
    /// The tuple that arrived.
    pub tuple: Tuple,
    /// Wall-clock delay between sink construction and arrival.
    pub arrival: Duration,
}

/// Shared handle to a [`TimedSink`]'s recorded arrivals.
pub type TimedSinkHandle = Arc<Mutex<Vec<TimedArrival>>>;

/// A scheduled piece of feedback: once the sink has seen `after_tuples`
/// arrivals, it sends `feedback` upstream (used to script event-driven
/// feedback such as viewport changes in tests and experiments).
pub struct ScheduledFeedback {
    /// Number of arrivals after which the feedback fires.
    pub after_tuples: u64,
    /// The feedback to send.
    pub feedback: FeedbackPunctuation,
}

/// A sink recording arrival times, optionally emitting scheduled feedback.
pub struct TimedSink {
    name: String,
    started: Instant,
    arrivals: TimedSinkHandle,
    seen: u64,
    schedule: Vec<ScheduledFeedback>,
    watermark_attribute: Option<String>,
    high_watermark: Option<Timestamp>,
}

impl TimedSink {
    /// Creates a timed sink and returns it with a handle to its arrivals.
    pub fn new(name: impl Into<String>) -> (Self, TimedSinkHandle) {
        let arrivals: TimedSinkHandle = Arc::new(Mutex::new(Vec::new()));
        (
            TimedSink {
                name: name.into(),
                started: Instant::now(),
                arrivals: arrivals.clone(),
                seen: 0,
                schedule: Vec::new(),
                watermark_attribute: None,
                high_watermark: None,
            },
            arrivals,
        )
    }

    /// Attaches a scheduled feedback message (fires after the given number of
    /// arrivals; multiple messages may be scheduled).
    pub fn with_scheduled_feedback(
        mut self,
        after_tuples: u64,
        feedback: FeedbackPunctuation,
    ) -> Self {
        self.schedule.push(ScheduledFeedback { after_tuples, feedback });
        self.schedule.sort_by_key(|s| s.after_tuples);
        self
    }

    /// Tracks the high-watermark of the named timestamp attribute across
    /// arrivals (useful for lateness accounting in experiments).
    pub fn with_watermark(mut self, attribute: impl Into<String>) -> Self {
        self.watermark_attribute = Some(attribute.into());
        self
    }

    /// The highest timestamp observed, if watermark tracking is enabled.
    pub fn high_watermark(&self) -> Option<Timestamp> {
        self.high_watermark
    }

    /// Records one arrival into an already-locked buffer: watermark update,
    /// arrival timestamping and any due scheduled feedback.  Shared by the
    /// per-tuple and per-page paths.
    fn record_arrival(
        &mut self,
        tuple: Tuple,
        arrivals: &mut Vec<TimedArrival>,
        ctx: &mut OperatorContext,
    ) {
        if let Some(attr) = &self.watermark_attribute {
            if let Ok(ts) = tuple.timestamp(attr) {
                self.high_watermark = Some(self.high_watermark.map(|w| w.max(ts)).unwrap_or(ts));
            }
        }
        arrivals.push(TimedArrival { tuple, arrival: self.started.elapsed() });
        self.seen += 1;
        while let Some(next) = self.schedule.first() {
            if self.seen >= next.after_tuples {
                let scheduled = self.schedule.remove(0);
                ctx.send_feedback(0, scheduled.feedback);
            } else {
                break;
            }
        }
    }
}

impl Operator for TimedSink {
    fn feedback_roles(&self) -> FeedbackRoles {
        if self.schedule.is_empty() {
            FeedbackRoles::NONE
        } else {
            FeedbackRoles::producer()
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        0
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let arrivals = self.arrivals.clone();
        self.record_arrival(tuple, &mut arrivals.lock(), ctx);
        Ok(())
    }

    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        // Batch fast path: take the arrivals lock once per page.  Arrival
        // times stay per-tuple and the feedback schedule still fires at the
        // exact arrival count it names.
        let arrivals = self.arrivals.clone();
        let mut arrivals = arrivals.lock();
        for item in page {
            match item {
                StreamItem::Tuple(tuple) => self.record_arrival(tuple, &mut arrivals, ctx),
                StreamItem::Punctuation(punctuation) => {
                    self.on_punctuation(input, punctuation, ctx)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, SchemaRef, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    #[test]
    fn collect_sink_gathers_tuples_and_punctuation() {
        let (mut sink, handle) = CollectSink::new("out");
        let puncts = sink.punctuation_handle();
        let mut ctx = OperatorContext::new();
        sink.on_tuple(0, tuple(1, 10), &mut ctx).unwrap();
        sink.on_tuple(0, tuple(2, 20), &mut ctx).unwrap();
        sink.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(2)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(handle.lock().len(), 2);
        assert_eq!(puncts.lock().len(), 1);
        assert_eq!(sink.outputs(), 0);
    }

    #[test]
    fn sinks_process_whole_pages() {
        let (mut sink, handle) = CollectSink::new("out");
        let puncts = sink.punctuation_handle();
        let mut ctx = OperatorContext::new();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(1)).unwrap(),
            ),
            StreamItem::Tuple(tuple(2, 20)),
        ]);
        sink.on_page(0, page, &mut ctx).unwrap();
        assert_eq!(handle.lock().len(), 2);
        assert_eq!(puncts.lock().len(), 1);

        let feedback = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(100)))]).unwrap(),
            "display",
        );
        let (sink, timed_handle) = TimedSink::new("timed");
        let mut sink = sink.with_watermark("timestamp").with_scheduled_feedback(2, feedback);
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 1)),
            StreamItem::Tuple(tuple(9, 2)),
            StreamItem::Tuple(tuple(3, 3)),
        ]);
        sink.on_page(0, page, &mut ctx).unwrap();
        assert_eq!(timed_handle.lock().len(), 3);
        assert_eq!(ctx.take_feedback().len(), 1, "schedule fired mid-page");
        assert_eq!(sink.high_watermark(), Some(Timestamp::from_secs(9)));
    }

    #[test]
    fn timed_sink_records_monotone_arrival_times() {
        let (mut sink, handle) = TimedSink::new("timed");
        let mut ctx = OperatorContext::new();
        for i in 0..5 {
            sink.on_tuple(0, tuple(i, i), &mut ctx).unwrap();
        }
        let arrivals = handle.lock();
        assert_eq!(arrivals.len(), 5);
        for w in arrivals.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn timed_sink_tracks_watermark_and_fires_scheduled_feedback() {
        let feedback = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(100)))]).unwrap(),
            "display",
        );
        let (sink, _handle) = TimedSink::new("timed");
        let mut sink = sink.with_watermark("timestamp").with_scheduled_feedback(3, feedback);
        let mut ctx = OperatorContext::new();
        for i in 0..2 {
            sink.on_tuple(0, tuple(i, i), &mut ctx).unwrap();
        }
        assert!(ctx.take_feedback().is_empty(), "not yet");
        sink.on_tuple(0, tuple(10, 2), &mut ctx).unwrap();
        let fired = ctx.take_feedback();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 0);
        assert_eq!(sink.high_watermark(), Some(Timestamp::from_secs(10)));
    }
}
