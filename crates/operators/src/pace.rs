//! PACE: a union with a bounded disorder policy and feedback production.
//!
//! PACE (paper Example 3, Experiment 1) unions two streams — typically a fast
//! "clean" stream and a slow "imputed" stream — while enforcing an explicit
//! policy: the result stream may not exhibit more than `tolerance` of disorder
//! relative to the tuple timestamps.  Tuples lagging more than the tolerance
//! behind the current high-watermark are *ignored* (dropped from the result).
//! When PACE detects that the divergence is being exceeded it produces
//! **assumed feedback** for the lagging input: "tuples with timestamps below
//! the cutoff are no longer needed", which lets the expensive upstream
//! operators (IMPUTE) stop wasting work on them.

use dsms_engine::{EngineResult, Operator, OperatorContext};
use dsms_feedback::{ExplicitPolicy, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, StreamDuration, Timestamp, Tuple};

/// Per-input lateness statistics, readable after execution through
/// [`Pace::input_stats`] (the harness reads them via the plan report instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaceInputStats {
    /// Tuples that arrived within the tolerance and were emitted.
    pub timely: u64,
    /// Tuples that arrived too late and were dropped.
    pub dropped: u64,
}

/// A disorder-bounding union that produces assumed feedback.
pub struct Pace {
    name: String,
    schema: SchemaRef,
    inputs: usize,
    policy: ExplicitPolicy,
    feedback_enabled: bool,
    /// When set (the default, matching the paper), the feedback describes all
    /// tuples below the current *high watermark* ("tuples with timestamps less
    /// than the current high watermark are no longer needed"); when unset, the
    /// feedback conservatively describes only tuples below
    /// `high watermark − tolerance` (the subset PACE itself already ignores).
    feedback_at_watermark: bool,
    /// Minimum advance of the cutoff between consecutive feedback messages,
    /// to avoid flooding the control channel.
    feedback_granularity: StreamDuration,
    high_watermark: Option<Timestamp>,
    last_feedback_cutoff: Vec<Option<Timestamp>>,
    stats_per_input: Vec<PaceInputStats>,
    registry: FeedbackRegistry,
}

impl Pace {
    /// Creates a PACE over `inputs` streams with the given timestamp attribute
    /// and disorder tolerance.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        inputs: usize,
        timestamp_attribute: impl Into<String>,
        tolerance: StreamDuration,
    ) -> Self {
        let name = name.into();
        let inputs = inputs.max(2);
        Pace {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            inputs,
            policy: ExplicitPolicy::disorder_bound(timestamp_attribute, tolerance),
            feedback_enabled: true,
            feedback_at_watermark: true,
            feedback_granularity: StreamDuration::from_millis(tolerance.as_millis() / 2),
            high_watermark: None,
            last_feedback_cutoff: vec![None; inputs],
            stats_per_input: vec![PaceInputStats::default(); inputs],
        }
    }

    /// Disables feedback production: PACE still drops late tuples (the
    /// explicit policy) but never informs its antecedents.  This is the
    /// "PACE is simply UNION + drop" baseline of Figure 5.
    pub fn without_feedback(mut self) -> Self {
        self.feedback_enabled = false;
        self
    }

    /// Overrides how far the cutoff must advance before another feedback
    /// message is sent.
    pub fn with_feedback_granularity(mut self, granularity: StreamDuration) -> Self {
        self.feedback_granularity = granularity;
        self
    }

    /// Makes the issued feedback conservative: describe only the subset PACE
    /// itself already drops (`timestamp < high watermark − tolerance`) instead
    /// of the paper's more aggressive `timestamp < high watermark`.
    pub fn with_conservative_feedback(mut self) -> Self {
        self.feedback_at_watermark = false;
        self
    }

    /// Lateness statistics per input.
    pub fn input_stats(&self) -> &[PaceInputStats] {
        &self.stats_per_input
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Operator for Pace {
    fn feedback_roles(&self) -> FeedbackRoles {
        if self.feedback_enabled {
            FeedbackRoles::producer()
        } else {
            FeedbackRoles::NONE
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        self.inputs
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let input = input.min(self.inputs - 1);
        let ts = tuple.timestamp(&self.policy.attribute)?;
        self.high_watermark = Some(self.high_watermark.map(|w| w.max(ts)).unwrap_or(ts));
        let hw = self.high_watermark.expect("just set");

        if self.policy.violated(hw, ts) {
            // The tuple is too late: ignore it (policy enforcement)…
            self.stats_per_input[input].dropped += 1;
            // …and tell the lagging antecedent to stop producing the subset.
            if self.feedback_enabled {
                let cutoff = if self.feedback_at_watermark { hw } else { self.policy.cutoff(hw) };
                let due = match self.last_feedback_cutoff[input] {
                    None => true,
                    Some(prev) => cutoff - prev >= self.feedback_granularity,
                };
                if due {
                    self.last_feedback_cutoff[input] = Some(cutoff);
                    let pattern = dsms_punctuation::Pattern::for_attributes(
                        self.schema.clone(),
                        &[(
                            self.policy.attribute.as_str(),
                            dsms_punctuation::PatternItem::Lt(dsms_types::Value::Timestamp(cutoff)),
                        )],
                    )?;
                    let feedback = FeedbackPunctuation::assumed(pattern, &self.name);
                    self.registry.stats_mut().issued.record(feedback.intent());
                    ctx.send_feedback(input, feedback);
                }
            }
            return Ok(());
        }
        self.stats_per_input[input].timely += 1;
        ctx.emit(0, tuple);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: Punctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // Fold punctuation into the high-watermark; combined punctuation for
        // the output would require per-input progress (see Union); PACE's
        // consumers in the paper's plans do not need it.
        if let Some(w) = punctuation.watermark_for(&self.policy.attribute) {
            self.high_watermark = Some(self.high_watermark.map(|cur| cur.max(w)).unwrap_or(w));
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("speed", DataType::Float)])
    }

    fn tuple(ts: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Float(1.0)])
    }

    fn pace(tolerance_secs: i64) -> Pace {
        Pace::new("PACE", schema(), 2, "timestamp", StreamDuration::from_secs(tolerance_secs))
    }

    #[test]
    fn timely_tuples_pass_through() {
        let mut op = pace(60);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(100), &mut ctx).unwrap();
        op.on_tuple(1, tuple(80), &mut ctx).unwrap(); // within 60s of 100
        assert_eq!(ctx.take_emitted().len(), 2);
        assert_eq!(op.input_stats()[0].timely, 1);
        assert_eq!(op.input_stats()[1].timely, 1);
    }

    #[test]
    fn late_tuples_are_dropped_and_feedback_is_issued() {
        let mut op = pace(60);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(200), &mut ctx).unwrap(); // advances watermark to 200
        op.on_tuple(1, tuple(100), &mut ctx).unwrap(); // 100 < 200-60 → late
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1, "only the timely tuple is emitted");
        assert_eq!(op.input_stats()[1].dropped, 1);

        let feedback = ctx.take_feedback();
        assert_eq!(feedback.len(), 1);
        assert_eq!(feedback[0].0, 1, "feedback goes to the lagging input");
        let fb = &feedback[0].1;
        // Paper semantics: everything below the current high watermark (200) is
        // declared no longer needed.
        assert!(fb.describes(&tuple(100)));
        assert!(fb.describes(&tuple(150)));
        assert!(!fb.describes(&tuple(250)));
    }

    #[test]
    fn conservative_feedback_describes_only_the_dropped_subset() {
        let mut op = pace(60).with_conservative_feedback();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(200), &mut ctx).unwrap();
        op.on_tuple(1, tuple(100), &mut ctx).unwrap();
        let feedback = ctx.take_feedback();
        assert_eq!(feedback.len(), 1);
        let fb = &feedback[0].1;
        assert!(fb.describes(&tuple(100)), "below hw − tolerance");
        assert!(!fb.describes(&tuple(150)), "within the tolerance band is not assumed away");
    }

    #[test]
    fn feedback_is_throttled_by_granularity() {
        let mut op = pace(60).with_feedback_granularity(StreamDuration::from_secs(30));
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(200), &mut ctx).unwrap();
        op.on_tuple(1, tuple(100), &mut ctx).unwrap(); // feedback #1 (cutoff 140)
        op.on_tuple(0, tuple(210), &mut ctx).unwrap();
        op.on_tuple(1, tuple(101), &mut ctx).unwrap(); // cutoff 150, advance 10 < 30 → throttled
        op.on_tuple(0, tuple(300), &mut ctx).unwrap();
        op.on_tuple(1, tuple(102), &mut ctx).unwrap(); // cutoff 240, advance 100 → feedback #2
        assert_eq!(ctx.take_feedback().len(), 2);
    }

    #[test]
    fn without_feedback_still_enforces_the_policy() {
        let mut op = pace(60).without_feedback();
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(200), &mut ctx).unwrap();
        op.on_tuple(1, tuple(10), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
        assert!(ctx.take_feedback().is_empty());
        assert_eq!(op.input_stats()[1].dropped, 1);
    }

    #[test]
    fn punctuation_advances_the_watermark() {
        let mut op = pace(60);
        let mut ctx = OperatorContext::new();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(500)).unwrap(),
            &mut ctx,
        )
        .unwrap();
        op.on_tuple(1, tuple(100), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "tuple is late w.r.t. punctuated watermark");
    }
}
