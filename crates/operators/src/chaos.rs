//! Deterministic fault injection for recovery testing.
//!
//! [`Chaos`] wraps any operator and injects one scripted fault at an exact
//! point in the tuple stream, so recovery tests are reproducible rather than
//! probabilistic:
//!
//! * [`FaultSpec::Panic`] — panic once `at_tuple` tuples have been seen, up
//!   to `times` times (a restarted wrapper does not re-panic on replay once
//!   the budget is spent);
//! * [`FaultSpec::Error`] — return a named `OperatorFailed` at the same
//!   trigger point, healing after `times` firings (a transient fault);
//! * [`FaultSpec::Stall`] — hold pages (in arrival order) for `steps`
//!   further `on_page` deliveries once `at_tuple` tuples have been seen,
//!   then release the backlog in order.  A stall delays but never reorders,
//!   so downstream results are unchanged.
//!
//! The fired-count for panic/error faults is *runtime* state: it survives
//! `restore` on purpose, which is what lets a supervised operator heal after
//! its restart budget absorbs the scripted failures.  Everything else — the
//! tuple counter, the stall backlog, and the wrapped operator's own state —
//! is checkpointed, so replay after a restart re-counts the same tuples and
//! re-buffers the same pages without double-firing the fault.

use dsms_engine::{
    EngineError, EngineResult, Operator, OperatorContext, Page, SourceState, StateEntry,
};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};

/// The scripted fault a [`Chaos`] wrapper injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic when the `at_tuple`-th tuple arrives, at most `times` times.
    Panic {
        /// 1-based tuple ordinal that triggers the panic.
        at_tuple: u64,
        /// How many times the panic fires before the fault is spent.
        times: u32,
    },
    /// Return a named operator error at the trigger point, `times` times,
    /// then heal.
    Error {
        /// 1-based tuple ordinal that triggers the error.
        at_tuple: u64,
        /// How many times the error fires before the fault heals.
        times: u32,
    },
    /// Buffer pages for `steps` further deliveries once `at_tuple` tuples
    /// have been seen, then release them in order.
    Stall {
        /// 1-based tuple ordinal that starts the stall.
        at_tuple: u64,
        /// How many subsequent `on_page` calls are buffered.
        steps: u32,
    },
}

/// A transparent operator wrapper that injects a [`FaultSpec`] at a
/// deterministic point in the wrapped operator's input stream.
pub struct Chaos {
    name: String,
    inner: Box<dyn Operator>,
    fault: FaultSpec,
    /// Tuples seen on the data path; checkpointed so replay re-counts.
    seen: u64,
    /// Panic/error firings so far.  Deliberately NOT checkpointed: a fault
    /// that already fired stays fired across restarts.
    fired: u32,
    /// Pages held back by an active stall, in arrival order.
    stalled: Vec<(usize, Page)>,
    /// Remaining `on_page` calls to buffer before the stall releases.
    stall_remaining: u32,
    /// Whether the stall trigger already fired (runtime, like `fired`).
    stall_fired: bool,
}

/// Chaos bookkeeping captured at a checkpoint, ahead of the wrapped
/// operator's own entries.
struct ChaosSnapshot {
    seen: u64,
    stalled: Vec<(usize, Page)>,
    stall_remaining: u32,
}

impl Chaos {
    /// Wraps `inner`, injecting `fault` on its data path.
    pub fn new(inner: impl Operator + 'static, fault: FaultSpec) -> Self {
        let name = format!("chaos:{}", inner.name());
        Self {
            name,
            inner: Box::new(inner),
            fault,
            seen: 0,
            fired: 0,
            stalled: Vec::new(),
            stall_remaining: 0,
            stall_fired: false,
        }
    }

    /// Releases the stall backlog into the wrapped operator, in order.
    fn release_stalled(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        for (input, page) in std::mem::take(&mut self.stalled) {
            self.inner.on_page(input, page, ctx)?;
        }
        Ok(())
    }
}

impl Operator for Chaos {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn must_connect_all_outputs(&self) -> bool {
        self.inner.must_connect_all_outputs()
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles()
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        self.inner.schema_out(output)
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.seen += page.tuple_count() as u64;
        match self.fault {
            FaultSpec::Panic { at_tuple, times } => {
                if self.seen >= at_tuple && self.fired < times {
                    self.fired += 1;
                    panic!("chaos: injected panic");
                }
            }
            FaultSpec::Error { at_tuple, times } => {
                if self.seen >= at_tuple && self.fired < times {
                    self.fired += 1;
                    return Err(EngineError::OperatorFailed {
                        operator: self.name.clone(),
                        detail: format!(
                            "chaos: injected transient error {} of {}",
                            self.fired, times
                        ),
                    });
                }
            }
            FaultSpec::Stall { at_tuple, steps } => {
                if self.seen >= at_tuple && !self.stall_fired {
                    self.stall_fired = true;
                    self.stall_remaining = steps;
                }
                if self.stall_remaining > 0 {
                    self.stalled.push((input, page));
                    self.stall_remaining -= 1;
                    if self.stall_remaining == 0 {
                        self.release_stalled(ctx)?;
                    }
                    return Ok(());
                }
            }
        }
        self.inner.on_page(input, page, ctx)
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_request_results(output, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        // A stream that ends mid-stall still owes downstream the backlog.
        self.release_stalled(ctx)?;
        self.stall_remaining = 0;
        self.inner.on_flush(ctx)
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        self.inner.poll_source(ctx)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        self.inner.feedback_stats()
    }

    fn export_state(&mut self) -> Vec<StateEntry> {
        self.inner.export_state()
    }

    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.inner.import_state(entries)
    }

    fn elastic_stats(&self) -> Option<dsms_engine::metrics::ElasticStats> {
        self.inner.elastic_stats()
    }

    fn restartable(&self) -> bool {
        self.inner.restartable()
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        let mut entries = vec![StateEntry {
            key: Vec::new(),
            payload: Box::new(ChaosSnapshot {
                seen: self.seen,
                stalled: self.stalled.clone(),
                stall_remaining: self.stall_remaining,
            }),
        }];
        entries.extend(self.inner.checkpoint()?);
        Ok(entries)
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        let mut entries = entries.into_iter();
        let own = entries.next().ok_or_else(|| EngineError::OperatorFailed {
            operator: self.name.clone(),
            detail: "chaos restore requires its bookkeeping snapshot".into(),
        })?;
        match own.payload.downcast::<ChaosSnapshot>() {
            Ok(snapshot) => {
                self.seen = snapshot.seen;
                self.stalled = snapshot.stalled;
                self.stall_remaining = snapshot.stall_remaining;
                // `fired` and `stall_fired` persist: spent faults stay spent.
            }
            Err(_) => {
                return Err(EngineError::OperatorFailed {
                    operator: self.name.clone(),
                    detail: "checkpoint entry is not a chaos snapshot".into(),
                })
            }
        }
        self.inner.restore(entries.collect())
    }

    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        self.inner.absorb_shutdown(output, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::TuplePredicate;
    use crate::select::Select;
    use dsms_types::{DataType, Field, Schema, TupleBuilder, Value};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]))
    }

    fn page_of(values: &[i64]) -> Page {
        let mut builder = dsms_engine::PageBuilder::new(values.len() + 1);
        for v in values {
            let tuple =
                TupleBuilder::new(schema()).set("v", Value::Int(*v)).unwrap().build().unwrap();
            builder.push_tuple(tuple);
        }
        builder.take()
    }

    fn passthrough() -> Select {
        Select::new("inner", schema(), TuplePredicate::always())
    }

    #[test]
    fn error_fault_fires_exactly_times_then_heals() {
        let mut op = Chaos::new(passthrough(), FaultSpec::Error { at_tuple: 2, times: 2 });
        let mut ctx = OperatorContext::new();
        assert!(op.on_page(0, page_of(&[1]), &mut ctx).is_ok());
        assert!(op.on_page(0, page_of(&[2]), &mut ctx).is_err());
        assert!(op.on_page(0, page_of(&[2]), &mut ctx).is_err());
        assert!(op.on_page(0, page_of(&[2]), &mut ctx).is_ok());
    }

    #[test]
    fn fired_count_survives_restore() {
        let mut op = Chaos::new(passthrough(), FaultSpec::Error { at_tuple: 1, times: 1 });
        let mut ctx = OperatorContext::new();
        let snapshot = op.checkpoint().unwrap();
        assert!(op.on_page(0, page_of(&[1]), &mut ctx).is_err());
        op.restore(snapshot).unwrap();
        // Replay of the same page must not re-fire the spent fault.
        assert!(op.on_page(0, page_of(&[1]), &mut ctx).is_ok());
        assert_eq!(op.seen, 1);
    }

    #[test]
    fn stall_buffers_then_releases_in_order() {
        let mut op = Chaos::new(passthrough(), FaultSpec::Stall { at_tuple: 1, steps: 2 });
        let mut ctx = OperatorContext::new();
        op.on_page(0, page_of(&[1]), &mut ctx).unwrap();
        assert_eq!(ctx.emitted_len(), 0, "first stalled page is held");
        op.on_page(0, page_of(&[2]), &mut ctx).unwrap();
        let emitted: Vec<_> = ctx
            .take_emitted()
            .into_iter()
            .filter_map(|(_, item)| item.as_tuple().map(|t| format!("{:?}", t.values())))
            .collect();
        assert_eq!(emitted.len(), 2, "backlog released in order after the stall");
    }

    #[test]
    fn flush_releases_a_pending_stall() {
        let mut op = Chaos::new(passthrough(), FaultSpec::Stall { at_tuple: 1, steps: 5 });
        let mut ctx = OperatorContext::new();
        op.on_page(0, page_of(&[7]), &mut ctx).unwrap();
        assert_eq!(ctx.emitted_len(), 0);
        op.on_flush(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_len(), 1, "flush drains the stall backlog");
    }
}
