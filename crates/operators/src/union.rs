//! UNION: merge several streams of the same schema.
//!
//! Plain UNION interleaves its inputs in arrival order.  Its punctuation
//! handling follows the classic rule: a subset of the *output* is complete
//! only once **every** input has declared it complete, so UNION holds the
//! per-input progress watermarks and emits the minimum.  Feedback received
//! from downstream applies to all inputs equally and is relayed to each.

use crate::common::MinWatermark;
use dsms_engine::{EngineResult, Operator, OperatorContext, Page, StreamItem};
use dsms_feedback::{
    BatchGuardDecision, FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles,
    GuardDecision,
};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};

/// Merges `inputs` streams of identical schema into one.
pub struct Union {
    name: String,
    schema: SchemaRef,
    inputs: usize,
    /// The attribute progress punctuation is tracked on (if any).
    progress_attribute: Option<String>,
    /// Combined per-input progress watermark (min across inputs).
    progress: MinWatermark,
    registry: FeedbackRegistry,
}

impl Union {
    /// Creates a union over `inputs` streams of the given schema.
    pub fn new(name: impl Into<String>, schema: SchemaRef, inputs: usize) -> Self {
        let name = name.into();
        Union {
            registry: FeedbackRegistry::new(name.clone()),
            name,
            schema,
            inputs: inputs.max(2),
            progress_attribute: None,
            progress: MinWatermark::new(inputs.max(2)),
        }
    }

    /// Enables combined progress-punctuation handling on the named timestamp
    /// attribute: the union emits progress punctuation at the minimum of its
    /// inputs' watermarks.
    pub fn with_progress_on(mut self, attribute: impl Into<String>) -> Self {
        self.progress_attribute = Some(attribute.into());
        self
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Operator for Union {
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter().with_relayer()
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        self.inputs
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if self.registry.decide(&tuple) == GuardDecision::Suppress {
            return Ok(());
        }
        ctx.emit(0, tuple);
        Ok(())
    }

    /// Batch fast path: a punctuation-free page whose column summaries prove
    /// every row clear of the active guards is forwarded intact (one move, no
    /// per-tuple probes or re-batching), so fan-in plans keep upstream
    /// batching across the merge.  Pages carrying punctuation always take the
    /// per-item path — per-input punctuation must go through the min-watermark
    /// combine, never straight to the output — as do pages the summaries
    /// cannot decide; a page proven entirely covered is dropped wholesale.
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        let decision = self.registry.decide_batch(page.tuple_count(), |c| page.column_summary(c));
        match decision {
            BatchGuardDecision::PassAll if page.punctuation_count() == 0 => {
                ctx.emit_page(0, page);
            }
            BatchGuardDecision::SuppressAll => {
                for item in page {
                    if let StreamItem::Punctuation(punctuation) = item {
                        self.on_punctuation(input, punctuation, ctx)?;
                    }
                }
            }
            _ => {
                for item in page {
                    match item {
                        StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                        StreamItem::Punctuation(punctuation) => {
                            self.on_punctuation(input, punctuation, ctx)?
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let Some(attr) = &self.progress_attribute else {
            // Without progress tracking, forwarding a per-input punctuation
            // would be incorrect (the other inputs may still produce matching
            // tuples), so punctuation is absorbed.
            return Ok(());
        };
        if let Some(w) = punctuation.watermark_for(attr) {
            if let Some(combined) = self.progress.observe(input, w) {
                ctx.emit_punctuation(
                    0,
                    Punctuation::progress(self.schema.clone(), attr, combined)?,
                );
            }
        }
        Ok(())
    }

    fn on_feedback(
        &mut self,
        _output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        // The union's output is the disjoint-ish merge of its inputs; a subset
        // assumed away downstream can be assumed away on every input, so the
        // feedback is relayed to each input unchanged (schemas are identical).
        if feedback.intent() == FeedbackIntent::Assumed {
            for input in 0..self.inputs {
                ctx.send_feedback(input, feedback.relay(feedback.pattern().clone(), &self.name));
                self.registry.stats_mut().relayed.record(feedback.intent());
            }
        }
        let _ = self.registry.register(feedback);
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        Some(self.registry.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamItem;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    fn progress(ts: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(ts)).unwrap()
    }

    #[test]
    fn union_interleaves_inputs() {
        let mut op = Union::new("union", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_tuple(0, tuple(1, 10), &mut ctx).unwrap();
        op.on_tuple(1, tuple(2, 20), &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 2);
    }

    #[test]
    fn progress_punctuation_is_the_minimum_across_inputs() {
        let mut op = Union::new("union", schema(), 2).with_progress_on("timestamp");
        let mut ctx = OperatorContext::new();
        op.on_punctuation(0, progress(100), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "second input has not punctuated");
        op.on_punctuation(1, progress(60), &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        match &emitted[0].1 {
            StreamItem::Punctuation(p) => {
                assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(60)))
            }
            other => panic!("expected punctuation, got {other:?}"),
        }
        // Advancing the slower input emits the new minimum exactly once.
        op.on_punctuation(1, progress(90), &mut ctx).unwrap();
        op.on_punctuation(1, progress(80), &mut ctx).unwrap(); // regression ignored
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 1);
        match &emitted[0].1 {
            StreamItem::Punctuation(p) => {
                assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(90)))
            }
            other => panic!("expected punctuation, got {other:?}"),
        }
    }

    #[test]
    fn punctuation_is_absorbed_without_progress_tracking() {
        let mut op = Union::new("union", schema(), 2);
        let mut ctx = OperatorContext::new();
        op.on_punctuation(0, progress(100), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }

    #[test]
    fn clear_punctuation_free_pages_pass_through_intact() {
        use dsms_engine::Emission;
        let mut op = Union::new("union", schema(), 2);
        let mut ctx = OperatorContext::new();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Tuple(tuple(2, 20)),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let mut pages = Vec::new();
        ctx.drain_emissions(|port, emission| match emission {
            Emission::Page(p) => pages.push((port, p)),
            Emission::Item(item) => panic!("expected a whole page, got item {item:?}"),
        });
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].0, 0);
        assert_eq!(pages[0].1.tuple_count(), 2);
    }

    #[test]
    fn pages_carrying_punctuation_take_the_per_item_path() {
        let mut op = Union::new("union", schema(), 2).with_progress_on("timestamp");
        let mut ctx = OperatorContext::new();
        // Input 1 has already punctuated to ts=50; input 0's page carries a
        // punctuation at ts=100, so the combined minimum (50) must be emitted —
        // forwarding the page intact would leak input 0's watermark.
        op.on_punctuation(1, progress(50), &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Punctuation(progress(100)),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2, "tuple plus the *combined* punctuation");
        match &emitted[1].1 {
            StreamItem::Punctuation(p) => {
                assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(50)))
            }
            other => panic!("expected combined punctuation, got {other:?}"),
        }
    }

    #[test]
    fn covered_pages_are_dropped_wholesale() {
        let mut op = Union::new("union", schema(), 2);
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(100)))]).unwrap(),
            "sink",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        let _ = ctx.take_feedback();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 150)),
            StreamItem::Tuple(tuple(2, 200)),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty(), "summaries prove the whole page assumed away");
    }

    #[test]
    fn assumed_feedback_is_relayed_to_every_input_and_exploited() {
        let mut op = Union::new("union", schema(), 3);
        let mut ctx = OperatorContext::new();
        let fb = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(100)))]).unwrap(),
            "sink",
        );
        op.on_feedback(0, fb, &mut ctx).unwrap();
        let relayed = ctx.take_feedback();
        assert_eq!(relayed.len(), 3);
        let ports: Vec<usize> = relayed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2]);

        op.on_tuple(0, tuple(1, 150), &mut ctx).unwrap(); // suppressed
        op.on_tuple(1, tuple(1, 50), &mut ctx).unwrap(); // passes
        assert_eq!(ctx.take_emitted().len(), 1);
    }
}
