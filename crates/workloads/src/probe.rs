//! Probe-vehicle (GPS) stream.
//!
//! Vehicles with on-board GPS report `(timestamp, vehicle, segment, speed)` at
//! a per-vehicle reporting period.  The data is noisy — a configurable
//! fraction of readings carries implausible speeds or a wrong segment — which
//! is what the data-cleaning step in the motivating speed-map plan exists to
//! handle.  Probe vehicles are far scarcer than fixed detectors (the paper's
//! IMPATIENT JOIN discussion relies on that asymmetry).

use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the probe-vehicle stream.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Number of probe vehicles on the road.
    pub vehicles: i64,
    /// Number of freeway segments they drive over.
    pub segments: i64,
    /// Per-vehicle reporting period.
    pub reporting_period: StreamDuration,
    /// Total duration of the stream.
    pub duration: StreamDuration,
    /// Fraction of readings that are noisy/implausible (0..=1).
    pub noisy_fraction: f64,
    /// Typical speed in mph.
    pub typical_speed: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            vehicles: 25,
            segments: 9,
            reporting_period: StreamDuration::from_secs(5),
            duration: StreamDuration::from_hours(1),
            noisy_fraction: 0.1,
            typical_speed: 55.0,
            seed: 17,
        }
    }
}

impl ProbeConfig {
    /// Expected number of readings.
    pub fn expected_tuples(&self) -> u64 {
        let ticks = (self.duration.as_millis() / self.reporting_period.as_millis()) as u64;
        ticks * self.vehicles as u64
    }
}

/// Generates probe-vehicle readings in timestamp order.
pub struct ProbeGenerator {
    config: ProbeConfig,
    schema: SchemaRef,
    rng: StdRng,
    tick: i64,
    vehicle: i64,
    positions: Vec<i64>,
}

impl ProbeGenerator {
    /// The probe stream schema: `(timestamp, vehicle, segment, speed)`.
    pub fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("vehicle", DataType::Int),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    /// Creates a generator.
    pub fn new(config: ProbeConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let positions = (0..config.vehicles).map(|_| rng.gen_range(0..config.segments)).collect();
        ProbeGenerator { config, schema: Self::schema(), rng, tick: 0, vehicle: 0, positions }
    }

    /// The configuration.
    pub fn config(&self) -> &ProbeConfig {
        &self.config
    }
}

impl Iterator for ProbeGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let total_ticks =
            self.config.duration.as_millis() / self.config.reporting_period.as_millis();
        if self.tick >= total_ticks {
            return None;
        }
        let ts = Timestamp::EPOCH
            + StreamDuration::from_millis(self.tick * self.config.reporting_period.as_millis());
        let vehicle = self.vehicle;
        // Vehicles drift to a neighbouring segment occasionally.
        if self.rng.gen_bool(0.05) {
            let delta: i64 = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            let pos = &mut self.positions[vehicle as usize];
            *pos = (*pos + delta).clamp(0, self.config.segments - 1);
        }
        let segment = self.positions[vehicle as usize];
        let noisy = self.rng.gen_bool(self.config.noisy_fraction.clamp(0.0, 1.0));
        let speed = if noisy {
            // Implausible reading (GPS glitch).
            self.rng.gen_range(150.0..400.0)
        } else {
            (self.config.typical_speed + self.rng.gen_range(-10.0f64..10.0)).max(1.0)
        };
        let tuple = Tuple::new(
            self.schema.clone(),
            vec![
                Value::Timestamp(ts),
                Value::Int(vehicle),
                Value::Int(segment),
                Value::Float(speed),
            ],
        );
        self.vehicle += 1;
        if self.vehicle >= self.config.vehicles {
            self.vehicle = 0;
            self.tick += 1;
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_count_in_timestamp_order() {
        let config = ProbeConfig {
            vehicles: 3,
            duration: StreamDuration::from_minutes(1),
            reporting_period: StreamDuration::from_secs(10),
            ..ProbeConfig::default()
        };
        let expected = config.expected_tuples();
        let tuples: Vec<Tuple> = ProbeGenerator::new(config).collect();
        assert_eq!(tuples.len() as u64, expected);
        let mut last = Timestamp::MIN;
        for t in &tuples {
            let ts = t.timestamp("timestamp").unwrap();
            assert!(ts >= last);
            last = ts;
        }
    }

    #[test]
    fn segments_stay_in_range_and_noise_is_injected() {
        let config = ProbeConfig { noisy_fraction: 0.3, ..ProbeConfig::default() };
        let segments = config.segments;
        let tuples: Vec<Tuple> = ProbeGenerator::new(config).take(5_000).collect();
        let mut noisy = 0;
        for t in &tuples {
            let seg = t.int("segment").unwrap();
            assert!((0..segments).contains(&seg));
            if t.float("speed").unwrap() > 120.0 {
                noisy += 1;
            }
        }
        let fraction = noisy as f64 / tuples.len() as f64;
        assert!(fraction > 0.15 && fraction < 0.45, "noisy fraction ≈ 0.3, got {fraction}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Tuple> = ProbeGenerator::new(ProbeConfig::default()).take(200).collect();
        let b: Vec<Tuple> = ProbeGenerator::new(ProbeConfig::default()).take(200).collect();
        assert_eq!(a, b);
    }
}
