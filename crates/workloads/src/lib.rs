//! # dsms-workloads
//!
//! Deterministic, seeded workload generators standing in for the paper's data
//! sources (Portland-metro loop detectors, probe-vehicle GPS traces and the
//! archival imputation database), plus the auxiliary streams used in the
//! paper's motivating examples (financial ticks for demanded punctuation,
//! bid/auction streams for the punctuation-scheme discussion) and the
//! event-driven zoom schedule of Experiment 2.
//!
//! All generators are parameterized so benches can scale down for CI and up to
//! paper scale (Experiment 2 uses 18 hours × 20-second resolution × 9 segments
//! × 40 detectors ≈ 1 million tuples), and all are seeded so every run of an
//! experiment sees the same stream.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod financial;
pub mod imputation;
pub mod probe;
pub mod traffic;
pub mod zoom;

pub use auction::{AuctionConfig, AuctionGenerator};
pub use financial::{FinancialConfig, FinancialGenerator};
pub use imputation::{ImputationConfig, ImputationGenerator};
pub use probe::{ProbeConfig, ProbeGenerator};
pub use traffic::{TrafficConfig, TrafficGenerator};
pub use zoom::{ZoomEvent, ZoomSchedule};
