//! Currency exchange-rate ticks.
//!
//! The paper's demanded-punctuation example features a financial speculator
//! whose margin of action is a few seconds and who prefers a partial answer
//! now over a complete answer too late.  This generator produces a random-walk
//! tick stream `(timestamp, pair, rate)` over a configurable set of currency
//! pairs, used by the demanded-punctuation example and tests.

use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the tick stream.
#[derive(Debug, Clone)]
pub struct FinancialConfig {
    /// Currency pairs (e.g. "EUR/USD").
    pub pairs: Vec<String>,
    /// Tick period.
    pub tick_period: StreamDuration,
    /// Total duration.
    pub duration: StreamDuration,
    /// Per-tick relative volatility.
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FinancialConfig {
    fn default() -> Self {
        FinancialConfig {
            pairs: vec!["EUR/USD".into(), "USD/JPY".into(), "GBP/USD".into(), "USD/MXN".into()],
            tick_period: StreamDuration::from_millis(250),
            duration: StreamDuration::from_minutes(5),
            volatility: 0.002,
            seed: 23,
        }
    }
}

/// Generates the tick stream in timestamp order.
pub struct FinancialGenerator {
    config: FinancialConfig,
    schema: SchemaRef,
    rng: StdRng,
    rates: Vec<f64>,
    /// Pair names as shared text, converted once: every generated tuple's
    /// `pair` value is a reference-count bump on one of these.
    pair_names: Vec<std::sync::Arc<str>>,
    tick: i64,
    pair: usize,
}

impl FinancialGenerator {
    /// The tick schema: `(timestamp, pair, rate)`.
    pub fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("pair", DataType::Text),
            ("rate", DataType::Float),
        ])
    }

    /// Creates a generator.
    pub fn new(config: FinancialConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rates = (0..config.pairs.len()).map(|_| rng.gen_range(0.5..150.0)).collect();
        let pair_names = config.pairs.iter().map(|p| p.as_str().into()).collect();
        FinancialGenerator {
            config,
            schema: Self::schema(),
            rng,
            rates,
            pair_names,
            tick: 0,
            pair: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FinancialConfig {
        &self.config
    }
}

impl Iterator for FinancialGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let total_ticks = self.config.duration.as_millis() / self.config.tick_period.as_millis();
        if self.tick >= total_ticks {
            return None;
        }
        let ts = Timestamp::EPOCH
            + StreamDuration::from_millis(self.tick * self.config.tick_period.as_millis());
        let pair_idx = self.pair;
        let step: f64 = self.rng.gen_range(-self.config.volatility..self.config.volatility);
        self.rates[pair_idx] *= 1.0 + step;
        let tuple = Tuple::new(
            self.schema.clone(),
            vec![
                Value::Timestamp(ts),
                Value::Text(self.pair_names[pair_idx].clone()),
                Value::Float(self.rates[pair_idx]),
            ],
        );
        self.pair += 1;
        if self.pair >= self.config.pairs.len() {
            self.pair = 0;
            self.tick += 1;
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_ticks_every_period() {
        let config =
            FinancialConfig { duration: StreamDuration::from_secs(10), ..Default::default() };
        let pairs = config.pairs.len();
        let ticks = (config.duration.as_millis() / config.tick_period.as_millis()) as usize;
        let tuples: Vec<Tuple> = FinancialGenerator::new(config).collect();
        assert_eq!(tuples.len(), pairs * ticks);
    }

    #[test]
    fn rates_random_walk_but_stay_positive() {
        let tuples: Vec<Tuple> =
            FinancialGenerator::new(FinancialConfig::default()).take(5_000).collect();
        assert!(tuples.iter().all(|t| t.float("rate").unwrap() > 0.0));
        let first = tuples.first().unwrap().float("rate").unwrap();
        let last_same_pair = tuples
            .iter()
            .rev()
            .find(|t| t.value_by_name("pair").unwrap() == tuples[0].value_by_name("pair").unwrap())
            .unwrap()
            .float("rate")
            .unwrap();
        assert_ne!(first, last_same_pair, "the walk moves");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Tuple> = FinancialGenerator::new(FinancialConfig::default()).take(100).collect();
        let b: Vec<Tuple> = FinancialGenerator::new(FinancialConfig::default()).take(100).collect();
        assert_eq!(a, b);
    }
}
