//! The Experiment-1 imputation stream.
//!
//! The paper induces "an extreme case in which tuples that require imputation
//! alternate with non-imputed tuples in the stream" and runs 5 000 tuples
//! through the imputation plan.  This generator reproduces that stream shape:
//! a single detector stream whose readings alternate (or are randomly chosen,
//! at a configurable rate) between clean values and nulls requiring
//! imputation, plus a `tuple_id` attribute so Figures 5 and 6 (tuple id vs.
//! output time) can be regenerated directly.

use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the imputation stream.
#[derive(Debug, Clone)]
pub struct ImputationConfig {
    /// Total number of tuples (5 000 in the paper).
    pub tuples: u64,
    /// Inter-arrival gap in stream time.
    pub inter_arrival: StreamDuration,
    /// Fraction of tuples requiring imputation.  With
    /// [`strict_alternation`](Self::strict_alternation) set this is ignored
    /// and exactly every other tuple is dirty.
    pub dirty_fraction: f64,
    /// Alternate clean/dirty strictly (the paper's extreme case).
    pub strict_alternation: bool,
    /// Number of distinct detectors the readings come from.
    pub detectors: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImputationConfig {
    fn default() -> Self {
        ImputationConfig {
            tuples: 5_000,
            inter_arrival: StreamDuration::from_millis(40),
            dirty_fraction: 0.5,
            strict_alternation: true,
            detectors: 20,
            seed: 11,
        }
    }
}

impl ImputationConfig {
    /// The paper's Experiment-1 configuration.
    pub fn experiment1() -> Self {
        ImputationConfig::default()
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        ImputationConfig { tuples: 200, ..ImputationConfig::default() }
    }
}

/// Generates the imputation stream in timestamp (and tuple-id) order.
pub struct ImputationGenerator {
    config: ImputationConfig,
    schema: SchemaRef,
    rng: StdRng,
    next_id: u64,
}

impl ImputationGenerator {
    /// The stream schema: `(tuple_id, timestamp, detector, speed)` where
    /// `speed` is null for tuples requiring imputation.
    pub fn schema() -> SchemaRef {
        Schema::shared(&[
            ("tuple_id", DataType::Int),
            ("timestamp", DataType::Timestamp),
            ("detector", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    /// Creates a generator.
    pub fn new(config: ImputationConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ImputationGenerator { config, schema: Self::schema(), rng, next_id: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &ImputationConfig {
        &self.config
    }
}

impl Iterator for ImputationGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.next_id >= self.config.tuples {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let ts = Timestamp::EPOCH
            + StreamDuration::from_millis(id as i64 * self.config.inter_arrival.as_millis());
        let dirty = if self.config.strict_alternation {
            id % 2 == 1
        } else {
            self.rng.gen_bool(self.config.dirty_fraction.clamp(0.0, 1.0))
        };
        let detector = self.rng.gen_range(0..self.config.detectors);
        let speed = if dirty { Value::Null } else { Value::Float(self.rng.gen_range(20.0..70.0)) };
        Some(Tuple::new(
            self.schema.clone(),
            vec![Value::Int(id as i64), Value::Timestamp(ts), Value::Int(detector), speed],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_alternation_matches_the_papers_extreme_case() {
        let tuples: Vec<Tuple> = ImputationGenerator::new(ImputationConfig::small()).collect();
        assert_eq!(tuples.len(), 200);
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(t.int("tuple_id").unwrap(), i as i64);
            assert_eq!(t.has_null(), i % 2 == 1, "odd tuple ids require imputation");
        }
    }

    #[test]
    fn random_mode_approximates_the_dirty_fraction() {
        let config = ImputationConfig {
            strict_alternation: false,
            dirty_fraction: 0.25,
            tuples: 4_000,
            ..ImputationConfig::default()
        };
        let tuples: Vec<Tuple> = ImputationGenerator::new(config).collect();
        let dirty = tuples.iter().filter(|t| t.has_null()).count() as f64 / tuples.len() as f64;
        assert!((dirty - 0.25).abs() < 0.05, "got {dirty}");
    }

    #[test]
    fn timestamps_progress_at_the_inter_arrival_rate() {
        let config = ImputationConfig {
            inter_arrival: StreamDuration::from_millis(100),
            ..ImputationConfig::small()
        };
        let tuples: Vec<Tuple> = ImputationGenerator::new(config).collect();
        assert_eq!(tuples[0].timestamp("timestamp").unwrap(), Timestamp::EPOCH);
        assert_eq!(
            tuples[10].timestamp("timestamp").unwrap(),
            Timestamp::EPOCH + StreamDuration::from_millis(1_000)
        );
    }

    #[test]
    fn paper_configuration_has_5000_tuples() {
        assert_eq!(ImputationConfig::experiment1().tuples, 5_000);
    }
}
