//! Fixed-sensor (loop detector) traffic stream.
//!
//! Substitutes for the Portland-metro archive used in the paper's experiments:
//! a freeway of `segments` segments, each with `detectors_per_segment` loop
//! detectors reporting speed and volume once per `resolution` (20 seconds in
//! the paper) over `duration` (18 hours in Experiment 2).  A simple diurnal
//! congestion model makes a configurable subset of segments congested (speeds
//! below 45 mph) during peak periods so that the speed-map join's congestion
//! predicate and the viewport feedback have realistic selectivity.

use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the fixed-sensor stream.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of freeway segments.
    pub segments: i64,
    /// Detectors per segment.
    pub detectors_per_segment: i64,
    /// Reporting period.
    pub resolution: StreamDuration,
    /// Total duration of the stream.
    pub duration: StreamDuration,
    /// Fraction of segments that experience congestion during peaks (0..=1).
    pub congested_fraction: f64,
    /// Free-flow speed in mph.
    pub free_flow_speed: f64,
    /// Congested speed in mph.
    pub congested_speed: f64,
    /// Probability that a reading is lost (reported as null) — feeds the
    /// imputation scenario.
    pub missing_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            segments: 9,
            detectors_per_segment: 40,
            resolution: StreamDuration::from_secs(20),
            duration: StreamDuration::from_hours(18),
            congested_fraction: 0.4,
            free_flow_speed: 60.0,
            congested_speed: 25.0,
            missing_probability: 0.0,
            seed: 42,
        }
    }
}

impl TrafficConfig {
    /// The paper's Experiment 2 configuration (≈1 M tuples).
    pub fn experiment2() -> Self {
        TrafficConfig::default()
    }

    /// A scaled-down configuration suitable for unit tests and CI benches.
    pub fn small() -> Self {
        TrafficConfig {
            duration: StreamDuration::from_minutes(30),
            detectors_per_segment: 4,
            ..TrafficConfig::default()
        }
    }

    /// Configuration for the partition-scaling experiment: many detectors
    /// (16 segments × 24 detectors = 384 distinct `detector` keys) so a
    /// hash partitioner spreads the stream near-evenly across up to 8
    /// replicas, over a short duration that keeps a per-tuple-costed run
    /// within a CI budget (≈6.9k tuples).
    pub fn partition_scaling() -> Self {
        TrafficConfig {
            segments: 16,
            detectors_per_segment: 24,
            duration: StreamDuration::from_minutes(6),
            congested_fraction: 0.25,
            ..TrafficConfig::default()
        }
    }

    /// Configuration for the multi-query sharing experiment: one shared
    /// source serving up to 64 standing queries.  Sized so that 64 spliced
    /// query suffixes at N=64 still finish quickly under a CI budget
    /// (12 segments × 6 detectors × 45 ticks ≈ 3.2k tuples), while enough
    /// punctuation boundaries (one per resolution tick) exist for scripted
    /// attach/detach cuts to land mid-stream.
    pub fn multi_query() -> Self {
        TrafficConfig {
            segments: 12,
            detectors_per_segment: 6,
            duration: StreamDuration::from_minutes(15),
            congested_fraction: 0.5,
            ..TrafficConfig::default()
        }
    }

    /// Expected number of tuples the generator will produce.
    pub fn expected_tuples(&self) -> u64 {
        let ticks = (self.duration.as_millis() / self.resolution.as_millis()) as u64;
        ticks * self.segments as u64 * self.detectors_per_segment as u64
    }
}

/// Generates the fixed-sensor stream in timestamp order.
pub struct TrafficGenerator {
    config: TrafficConfig,
    schema: SchemaRef,
    rng: StdRng,
    tick: i64,
    segment: i64,
    detector: i64,
}

impl TrafficGenerator {
    /// The sensor stream schema: `(timestamp, segment, detector, speed, volume)`.
    pub fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("detector", DataType::Int),
            ("speed", DataType::Float),
            ("volume", DataType::Int),
        ])
    }

    /// Creates a generator.
    pub fn new(config: TrafficConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TrafficGenerator { config, schema: Self::schema(), rng, tick: 0, segment: 0, detector: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// True when the given segment belongs to the congested subset.
    pub fn is_congested_segment(&self, segment: i64) -> bool {
        (segment as f64) < self.config.congested_fraction * self.config.segments as f64
    }

    /// True when stream time `ts` falls in a peak (congested) period: hours
    /// 7–9 and 16–18 of the stream day.
    pub fn is_peak(ts: Timestamp) -> bool {
        let hour = (ts.as_secs() / 3600) % 24;
        (7..9).contains(&hour) || (16..18).contains(&hour)
    }

    fn speed_for(&mut self, segment: i64, ts: Timestamp) -> f64 {
        let base = if self.is_congested_segment(segment) && Self::is_peak(ts) {
            self.config.congested_speed
        } else {
            self.config.free_flow_speed
        };
        let noise: f64 = self.rng.gen_range(-5.0..5.0);
        (base + noise).max(1.0)
    }
}

impl Iterator for TrafficGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let total_ticks = self.config.duration.as_millis() / self.config.resolution.as_millis();
        if self.tick >= total_ticks {
            return None;
        }
        let ts = Timestamp::EPOCH
            + StreamDuration::from_millis(self.tick * self.config.resolution.as_millis());
        let segment = self.segment;
        let detector = segment * self.config.detectors_per_segment + self.detector;
        let speed = if self.rng.gen_bool(self.config.missing_probability.clamp(0.0, 1.0)) {
            Value::Null
        } else {
            Value::Float(self.speed_for(segment, ts))
        };
        let volume = self.rng.gen_range(0..40);
        let tuple = Tuple::new(
            self.schema.clone(),
            vec![
                Value::Timestamp(ts),
                Value::Int(segment),
                Value::Int(detector),
                speed,
                Value::Int(volume),
            ],
        );

        // Advance detector → segment → tick, keeping timestamp order.
        self.detector += 1;
        if self.detector >= self.config.detectors_per_segment {
            self.detector = 0;
            self.segment += 1;
            if self.segment >= self.config.segments {
                self.segment = 0;
                self.tick += 1;
            }
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_tuple_count() {
        let config = TrafficConfig {
            segments: 3,
            detectors_per_segment: 2,
            duration: StreamDuration::from_minutes(2),
            resolution: StreamDuration::from_secs(20),
            ..TrafficConfig::default()
        };
        let expected = config.expected_tuples();
        let count = TrafficGenerator::new(config).count() as u64;
        assert_eq!(count, expected);
        assert_eq!(count, 6 * 6); // 6 ticks × 3 segments × 2 detectors
    }

    #[test]
    fn timestamps_are_nondecreasing_and_aligned() {
        let config = TrafficConfig::small();
        let resolution = config.resolution;
        let mut last = Timestamp::MIN;
        for t in TrafficGenerator::new(config).take(2_000) {
            let ts = t.timestamp("timestamp").unwrap();
            assert!(ts >= last);
            assert_eq!(ts.as_millis() % resolution.as_millis(), 0);
            last = ts;
        }
    }

    #[test]
    fn deterministic_for_equal_seeds_and_distinct_for_different() {
        let a: Vec<Tuple> = TrafficGenerator::new(TrafficConfig::small()).take(100).collect();
        let b: Vec<Tuple> = TrafficGenerator::new(TrafficConfig::small()).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<Tuple> =
            TrafficGenerator::new(TrafficConfig { seed: 7, ..TrafficConfig::small() })
                .take(100)
                .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn congestion_model_slows_peak_traffic() {
        let config = TrafficConfig {
            duration: StreamDuration::from_hours(18),
            detectors_per_segment: 1,
            segments: 9,
            ..TrafficConfig::default()
        };
        let generator = TrafficGenerator::new(config);
        assert!(generator.is_congested_segment(0));
        assert!(!generator.is_congested_segment(8));
        assert!(TrafficGenerator::is_peak(Timestamp::from_hours(8)));
        assert!(!TrafficGenerator::is_peak(Timestamp::from_hours(12)));

        let mut peak_congested = Vec::new();
        let mut offpeak_congested = Vec::new();
        for t in generator {
            let seg = t.int("segment").unwrap();
            let ts = t.timestamp("timestamp").unwrap();
            if seg == 0 {
                let speed = t.float("speed").unwrap();
                if TrafficGenerator::is_peak(ts) {
                    peak_congested.push(speed);
                } else {
                    offpeak_congested.push(speed);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&peak_congested) < 35.0);
        assert!(avg(&offpeak_congested) > 50.0);
    }

    #[test]
    fn missing_probability_injects_nulls() {
        let config = TrafficConfig {
            missing_probability: 0.5,
            duration: StreamDuration::from_minutes(10),
            detectors_per_segment: 2,
            segments: 2,
            ..TrafficConfig::default()
        };
        let tuples: Vec<Tuple> = TrafficGenerator::new(config).collect();
        let nulls = tuples.iter().filter(|t| t.has_null()).count();
        assert!(nulls > 0);
        assert!(nulls < tuples.len());
    }

    #[test]
    fn partition_scaling_config_has_many_keys_and_bounded_volume() {
        let config = TrafficConfig::partition_scaling();
        let keys = config.segments * config.detectors_per_segment;
        assert!(keys >= 8 * 32, "enough distinct detector keys to balance 8 partitions");
        let expected = config.expected_tuples();
        assert!(
            expected > 4_000 && expected < 16_000,
            "bounded volume for per-tuple-costed CI runs (got {expected})"
        );
        let count = TrafficGenerator::new(config).count() as u64;
        assert_eq!(count, expected);
    }

    #[test]
    fn paper_scale_config_is_about_one_million_tuples() {
        let config = TrafficConfig::experiment2();
        let expected = config.expected_tuples();
        assert!(expected > 900_000 && expected < 1_300_000, "got {expected}");
    }
}
