//! Speed-map viewport (zoom) events.
//!
//! Experiment 2 assumes "the vehicle viewing the map switches segments every
//! 2, 4, or 6 minutes"; each switch is an event-driven feedback opportunity —
//! segments outside the new viewport can be assumed away until the next
//! switch.  A [`ZoomSchedule`] deterministically generates that sequence of
//! viewport changes for a given feedback frequency.

use dsms_types::{StreamDuration, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// One viewport change: at `at`, only `visible` segments remain displayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoomEvent {
    /// Stream time of the viewport change.
    pub at: Timestamp,
    /// Segments visible after the change.
    pub visible: BTreeSet<i64>,
}

/// A deterministic schedule of viewport changes.
#[derive(Debug, Clone)]
pub struct ZoomSchedule {
    events: Vec<ZoomEvent>,
}

impl ZoomSchedule {
    /// Builds a schedule: starting at time zero and then every `frequency`,
    /// the viewer zooms to a random subset of `visible_count` segments out of
    /// `0..segments`, over a total horizon of `duration`.
    pub fn new(
        segments: i64,
        visible_count: usize,
        frequency: StreamDuration,
        duration: StreamDuration,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<i64> = (0..segments).collect();
        let mut events = Vec::new();
        let mut at = Timestamp::EPOCH;
        let end = Timestamp::EPOCH + duration;
        while at < end {
            let visible: BTreeSet<i64> =
                all.choose_multiple(&mut rng, visible_count.min(all.len())).copied().collect();
            events.push(ZoomEvent { at, visible });
            at += frequency;
        }
        ZoomSchedule { events }
    }

    /// The viewport changes in time order.
    pub fn events(&self) -> &[ZoomEvent] {
        &self.events
    }

    /// Number of viewport changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The viewport in effect at stream time `ts` (the last change at or
    /// before `ts`), if any.
    pub fn viewport_at(&self, ts: Timestamp) -> Option<&ZoomEvent> {
        self.events.iter().rev().find(|e| e.at <= ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_the_horizon_at_the_requested_frequency() {
        let s = ZoomSchedule::new(
            9,
            2,
            StreamDuration::from_minutes(2),
            StreamDuration::from_hours(1),
            3,
        );
        assert_eq!(s.len(), 30, "one change every 2 minutes over an hour");
        for e in s.events() {
            assert_eq!(e.visible.len(), 2);
            assert!(e.visible.iter().all(|s| (0..9).contains(s)));
        }
        assert!(!s.is_empty());
    }

    #[test]
    fn viewport_lookup_returns_the_latest_change() {
        let s = ZoomSchedule::new(
            9,
            3,
            StreamDuration::from_minutes(4),
            StreamDuration::from_minutes(20),
            3,
        );
        let early = s.viewport_at(Timestamp::from_minutes(1)).unwrap();
        assert_eq!(early.at, Timestamp::EPOCH);
        let later = s.viewport_at(Timestamp::from_minutes(9)).unwrap();
        assert_eq!(later.at, Timestamp::from_minutes(8));
        assert!(ZoomSchedule::new(9, 3, StreamDuration::from_minutes(4), StreamDuration::ZERO, 3)
            .viewport_at(Timestamp::EPOCH)
            .is_none());
    }

    #[test]
    fn deterministic_per_seed_and_different_across_seeds() {
        let a = ZoomSchedule::new(
            9,
            2,
            StreamDuration::from_minutes(2),
            StreamDuration::from_hours(2),
            3,
        );
        let b = ZoomSchedule::new(
            9,
            2,
            StreamDuration::from_minutes(2),
            StreamDuration::from_hours(2),
            3,
        );
        assert_eq!(a.events(), b.events());
        let c = ZoomSchedule::new(
            9,
            2,
            StreamDuration::from_minutes(2),
            StreamDuration::from_hours(2),
            4,
        );
        assert_ne!(a.events(), c.events());
    }
}
