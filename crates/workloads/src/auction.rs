//! Bid/auction stream.
//!
//! Section 4.4 of the paper uses a bid-auction stream to discuss which
//! feedback is *supportable*: feedback on timestamps or auction ids (both
//! delimited by embedded punctuation) can be expired, while feedback on bid
//! amounts cannot.  This generator produces `(timestamp, auction, bidder,
//! amount)` bids with auctions opening and closing over time, so the
//! punctuation-scheme tests and the quickstart example have realistic data.

use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the auction stream.
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    /// Number of auctions over the stream lifetime.
    pub auctions: i64,
    /// Number of bidders.
    pub bidders: i64,
    /// Bids per auction.
    pub bids_per_auction: i64,
    /// Time between consecutive bids.
    pub bid_period: StreamDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            auctions: 20,
            bidders: 50,
            bids_per_auction: 30,
            bid_period: StreamDuration::from_secs(1),
            seed: 5,
        }
    }
}

/// Generates bids in timestamp order; auctions run one after another.
pub struct AuctionGenerator {
    config: AuctionConfig,
    schema: SchemaRef,
    rng: StdRng,
    auction: i64,
    bid_in_auction: i64,
    current_high: f64,
    emitted: i64,
}

impl AuctionGenerator {
    /// The bid schema: `(timestamp, auction, bidder, amount)`.
    pub fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("auction", DataType::Int),
            ("bidder", DataType::Int),
            ("amount", DataType::Float),
        ])
    }

    /// Creates a generator.
    pub fn new(config: AuctionConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        AuctionGenerator {
            config,
            schema: Self::schema(),
            rng,
            auction: 0,
            bid_in_auction: 0,
            current_high: 1.0,
            emitted: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AuctionConfig {
        &self.config
    }
}

impl Iterator for AuctionGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.auction >= self.config.auctions {
            return None;
        }
        let ts = Timestamp::EPOCH
            + StreamDuration::from_millis(self.emitted * self.config.bid_period.as_millis());
        self.current_high += self.rng.gen_range(0.1..5.0);
        let bidder = self.rng.gen_range(0..self.config.bidders);
        let tuple = Tuple::new(
            self.schema.clone(),
            vec![
                Value::Timestamp(ts),
                Value::Int(self.auction),
                Value::Int(bidder),
                Value::Float(self.current_high),
            ],
        );
        self.emitted += 1;
        self.bid_in_auction += 1;
        if self.bid_in_auction >= self.config.bids_per_auction {
            self.bid_in_auction = 0;
            self.auction += 1;
            self.current_high = 1.0;
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auctions_run_sequentially_with_rising_bids() {
        let config = AuctionConfig { auctions: 3, bids_per_auction: 5, ..Default::default() };
        let tuples: Vec<Tuple> = AuctionGenerator::new(config).collect();
        assert_eq!(tuples.len(), 15);
        let mut last_auction = 0;
        let mut last_amount = 0.0;
        for t in &tuples {
            let auction = t.int("auction").unwrap();
            let amount = t.float("amount").unwrap();
            assert!(auction >= last_auction, "auctions are sequential");
            if auction == last_auction {
                assert!(amount > last_amount, "bids rise within an auction");
            }
            last_auction = auction;
            last_amount = amount;
        }
    }

    #[test]
    fn bidders_are_in_range_and_stream_is_deterministic() {
        let a: Vec<Tuple> = AuctionGenerator::new(AuctionConfig::default()).collect();
        let b: Vec<Tuple> = AuctionGenerator::new(AuctionConfig::default()).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|t| (0..50).contains(&t.int("bidder").unwrap())));
    }
}
