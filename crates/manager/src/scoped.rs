//! Per-query operator scoping for spliced master plans.

use dsms_engine::{EngineResult, Operator, OperatorContext, Page, SourceState, StateEntry};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles, FeedbackStats};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};

/// Wraps an operator under a scoped display name (`<query>/<operator>` or
/// `shared/<source>/<group>/<operator>`) so that the master plan's metrics
/// can be split back into per-query [`dsms_engine::ExecutionReport`]s after
/// the run.  Every callback delegates to the wrapped operator; only the name
/// changes.
///
/// The wrapper deliberately does **not** forward
/// [`Operator::fingerprint`] / [`Operator::shared_source`]: a spliced node
/// belongs to exactly one master plan and must never be deduplicated again.
pub(crate) struct ScopedOperator {
    scoped_name: String,
    inner: Box<dyn Operator>,
}

impl ScopedOperator {
    pub(crate) fn new(scoped_name: String, inner: Box<dyn Operator>) -> Self {
        ScopedOperator { scoped_name, inner }
    }
}

impl Operator for ScopedOperator {
    fn name(&self) -> &str {
        &self.scoped_name
    }

    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn must_connect_all_outputs(&self) -> bool {
        self.inner.must_connect_all_outputs()
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles()
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        self.inner.schema_out(output)
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_tuple(input, tuple, ctx)
    }

    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_page(input, page, ctx)
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_request_results(output, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_flush(ctx)
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        self.inner.poll_source(ctx)
    }

    fn feedback_stats(&self) -> Option<FeedbackStats> {
        self.inner.feedback_stats()
    }

    fn export_state(&mut self) -> Vec<StateEntry> {
        self.inner.export_state()
    }

    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.inner.import_state(entries)
    }

    fn elastic_stats(&self) -> Option<dsms_engine::ElasticStats> {
        self.inner.elastic_stats()
    }

    fn restartable(&self) -> bool {
        self.inner.restartable()
    }

    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        self.inner.checkpoint()
    }

    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        self.inner.restore(entries)
    }

    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        self.inner.absorb_shutdown(output, ctx)
    }
}
