//! # dsms-manager
//!
//! Multi-query execution for the feedback-punctuation DSMS: a
//! [`PipelineManager`] runs many standing queries against a shared set of
//! named long-lived sources, deduplicating identical plan prefixes while
//! keeping each query's feedback strictly isolated from its siblings.
//!
//! A DSMS serving many standing queries cannot afford one source scan per
//! query: monitoring deployments routinely register dozens of variations of
//! "the traffic feed, filtered a bit differently".  The manager therefore
//!
//! * lets queries reference manager-owned sources by name through
//!   [`SourceRef`] placeholders instead of instantiating their own;
//! * recognizes identical `source → select → project` prefixes across
//!   independently built plans via [`dsms_engine::Operator::fingerprint`]
//!   and executes each distinct prefix **once**, fanning the result out
//!   through [`dsms_operators::SharedFanout`] (zero-copy page forwarding —
//!   sharing a page is a refcount bump, never a tuple copy);
//! * keeps feedback per query: each fan-out port has its own scoped guard
//!   registry, so one query's assumed/desired punctuations act on its branch
//!   alone, and source-bound feedback crosses the fan-out only when the
//!   [`dsms_feedback::FeedbackMerge`] lattice proves every active sharer
//!   agrees;
//! * attaches and detaches queries **mid-stream** at punctuation boundaries
//!   (the same consistent cut the elastic Migrate/Ack/Commit handshake
//!   uses), so a late-registered query starts from a punctuation-delimited
//!   suffix of the stream and a stopped query leaves its siblings' output
//!   byte-identical; and
//! * reports per-query [`dsms_engine::ExecutionReport`]s plus a
//!   [`ManagerSummary`] (lifecycle counts, shared-prefix hit rate, per-query
//!   feedback statistics).
//!
//! `docs/PIPELINES.md` documents the lifecycle state machine, the
//! prefix-deduplication rules and the attach/detach cut in full.
//!
//! ```
//! use dsms_manager::{ExecutorKind, PipelineManager};
//! use dsms_engine::StreamBuilder;
//! use dsms_operators::{StreamOps, TuplePredicate, VecSource};
//! use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};
//!
//! let schema = Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)]);
//! let tuples: Vec<Tuple> = (0..8)
//!     .map(|v| Tuple::new(schema.clone(), vec![
//!         Value::Timestamp(Timestamp::from_secs(v)), Value::Int(v),
//!     ]))
//!     .collect();
//!
//! let mut manager = PipelineManager::new();
//! manager.add_source("feed", VecSource::new("feed", tuples))?;
//!
//! // Two queries over the same named source, with the same filter prefix:
//! // the manager runs source and filter once and fans out.
//! for query in ["evens-a", "evens-b"] {
//!     let builder = StreamBuilder::new();
//!     let evens = TuplePredicate::new("v is even", |t| {
//!         t.int("v").map(|v| v % 2 == 0).unwrap_or(false)
//!     });
//!     builder
//!         .source(manager.source_ref("feed")?)?
//!         .select("evens", evens)?
//!         .sink_collect("sink")?;
//!     manager.register(query, builder.build()?)?;
//! }
//!
//! let outcome = manager.run(ExecutorKind::Sync)?;
//! assert_eq!(outcome.summary.queries_active, 2);
//! assert!(outcome.summary.shared_prefix_hits > 0);
//! # Ok::<(), dsms_engine::EngineError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod scoped;
mod source_ref;

pub use manager::{
    ExecutorKind, ManagerOutcome, ManagerSummary, PipelineManager, QueryReport, QueryState,
};
pub use source_ref::SourceRef;
