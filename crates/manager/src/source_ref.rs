//! Named references to manager-owned sources.

use dsms_engine::{EngineResult, Operator, OperatorContext, SourceState};
use dsms_feedback::FeedbackRoles;
use dsms_types::SchemaRef;
use std::hash::{Hash, Hasher};

/// A placeholder standing in for a manager-owned long-lived source.
///
/// Queries registered with a [`crate::PipelineManager`] do not instantiate
/// their own sources; they reference a named source the manager owns.  At
/// splice time the manager replaces the placeholder with the actual source
/// operator — executed **once** no matter how many queries reference it —
/// and a [`dsms_operators::SharedFanout`] distributing its output.
///
/// The placeholder declares the schema the named source produces so the
/// fluent builder can type-check the rest of the plan at composition time,
/// and it declares itself a feedback exploiter so feedback subscriptions
/// aimed at the source pass the builder's composition-time role check (the
/// real source receives them after the splice).  Executing a `SourceRef`
/// directly produces nothing: outside a manager it is an empty stream.
pub struct SourceRef {
    source: String,
    schema: SchemaRef,
}

impl SourceRef {
    /// Creates a reference to the managed source `source`, which produces
    /// tuples of `schema`.  [`crate::PipelineManager::source_ref`] builds one
    /// with the schema the registered source declares.
    pub fn new(source: impl Into<String>, schema: SchemaRef) -> Self {
        SourceRef { source: source.into(), schema }
    }
}

impl Operator for SourceRef {
    fn name(&self) -> &str {
        &self.source
    }

    fn inputs(&self) -> usize {
        0
    }

    fn outputs(&self) -> usize {
        1
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::exploiter()
    }

    fn schema_out(&self, _output: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        _tuple: dsms_types::Tuple,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        Ok(())
    }

    /// Outside a manager the placeholder is an empty, already-exhausted
    /// stream; inside one it never executes (the splice replaces it).
    fn poll_source(&mut self, _ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        Ok(SourceState::Exhausted)
    }

    /// References to the same named source are interchangeable by
    /// construction, so the fingerprint hashes only the source name: every
    /// sharer's prefix chain starts from the same value.
    fn fingerprint(&self) -> Option<u64> {
        let mut hasher = dsms_types::FixedHasher::new();
        "source-ref".hash(&mut hasher);
        self.source.hash(&mut hasher);
        Some(hasher.finish())
    }

    fn shared_source(&self) -> Option<&str> {
        Some(&self.source)
    }

    /// The placeholder is stateless, so a Restart policy declared on it
    /// validates at composition time; whether the *spliced* source is
    /// restartable is checked again when the master plan validates.
    fn restartable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema};

    #[test]
    fn source_ref_declares_its_identity() {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        let mut sref = SourceRef::new("traffic", schema.clone());
        assert_eq!(sref.name(), "traffic");
        assert_eq!(sref.shared_source(), Some("traffic"));
        assert_eq!(sref.schema_out(0), Some(schema.clone()));
        assert_eq!(sref.fingerprint(), SourceRef::new("traffic", schema.clone()).fingerprint());
        assert_ne!(sref.fingerprint(), SourceRef::new("other", schema).fingerprint());
        let mut ctx = OperatorContext::new();
        assert_eq!(sref.poll_source(&mut ctx).unwrap(), SourceState::Exhausted);
        assert_eq!(ctx.emitted_len(), 0, "a bare reference is an empty stream");
    }
}
