//! The multi-query pipeline manager.

use crate::scoped::ScopedOperator;
use crate::source_ref::SourceRef;
use dsms_engine::{Edge, NodeId};
use dsms_engine::{
    EngineError, EngineResult, ExecutionReport, Operator, PlanNode, PooledExecutor, QueryPlan,
    SyncExecutor, ThreadedExecutor,
};
use dsms_feedback::FeedbackStats;
use dsms_operators::{FanoutController, FanoutDirective, SharedFanout};
use dsms_types::SchemaRef;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

fn invalid(detail: impl Into<String>) -> EngineError {
    EngineError::InvalidPlan { detail: detail.into() }
}

/// Which executor a [`PipelineManager`] drives the spliced master plan with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Deterministic single-threaded round-robin ([`SyncExecutor`]).
    Sync,
    /// One OS thread per operator ([`ThreadedExecutor`]).
    Threaded,
    /// Work-stealing worker pool ([`PooledExecutor`]).
    Pooled,
}

/// A registered query's membership state, as far as the manager knows it.
///
/// Before [`PipelineManager::start`] this is the initial membership the
/// splice will install; while running it reflects the directives the query's
/// fan-out has *committed* so far (a posted directive takes effect at the
/// next punctuation boundary, so the state lags the request by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryState {
    /// The query receives (or will receive) data from its shared source.
    Attached,
    /// The query is registered but dormant: its operators are spliced into
    /// the master plan, but its fan-out port forwards nothing.
    Detached,
}

/// One query's slice of a finished run.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The query's registered name.
    pub name: String,
    /// The query's per-operator metrics, with the manager's scoping prefix
    /// stripped, so `report.operator("sink")` works exactly as it would for
    /// a solo run.  `elapsed` and `scheduler` are those of the shared run.
    pub report: ExecutionReport,
}

/// Manager-level summary of a finished multi-query run.
#[derive(Debug, Clone, Default)]
pub struct ManagerSummary {
    /// Queries registered when the run started.
    pub queries_registered: usize,
    /// Queries that were attached at any point (initially or by a committed
    /// attach).
    pub queries_started: usize,
    /// Queries that committed at least one detach during the run.
    pub queries_stopped: usize,
    /// Queries attached when the run drained.
    pub queries_active: usize,
    /// Prefix operator instances (sources included) that were *not*
    /// instantiated because an identical already-spliced prefix was reused.
    pub shared_prefix_hits: usize,
    /// Total prefix operator instances the registered plans asked for.
    pub prefix_ops_total: usize,
    /// Per-query feedback statistics, aggregated over each query's private
    /// operators, in registration order.
    pub per_query_feedback: Vec<(String, FeedbackStats)>,
    /// Queries whose private operators exhausted their restart budget and
    /// were quarantined (detached, stream tombstoned) instead of failing the
    /// shared run: `(query name, failure detail)` in registration order.
    pub quarantined: Vec<(String, String)>,
}

impl ManagerSummary {
    /// Fraction of requested prefix operator instances served by sharing.
    pub fn hit_rate(&self) -> f64 {
        if self.prefix_ops_total == 0 {
            0.0
        } else {
            self.shared_prefix_hits as f64 / self.prefix_ops_total as f64
        }
    }
}

impl fmt::Display for ManagerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline manager: {} registered, {} started, {} stopped, {} active",
            self.queries_registered,
            self.queries_started,
            self.queries_stopped,
            self.queries_active
        )?;
        writeln!(
            f,
            "shared-prefix dedup: {}/{} operator instances saved ({:.1}% hit rate)",
            self.shared_prefix_hits,
            self.prefix_ops_total,
            self.hit_rate() * 100.0
        )?;
        for (name, stats) in &self.per_query_feedback {
            writeln!(f, "  {name}: {stats}")?;
        }
        for (name, detail) in &self.quarantined {
            writeln!(f, "  quarantined {name}: {detail}")?;
        }
        Ok(())
    }
}

/// Everything a finished multi-query run produced.
#[derive(Debug, Clone)]
pub struct ManagerOutcome {
    /// The raw report of the master plan (scoped operator names intact) —
    /// the shared spine's metrics live here.
    pub master: ExecutionReport,
    /// Per-query reports, in registration order.
    pub queries: Vec<QueryReport>,
    /// The manager-level summary.
    pub summary: ManagerSummary,
}

impl ManagerOutcome {
    /// The report of the named query, if it was registered.
    pub fn query(&self, name: &str) -> Option<&ExecutionReport> {
        self.queries.iter().find(|q| q.name == name).map(|q| &q.report)
    }
}

/// One registered query, dismantled and waiting for the splice.
struct Registered {
    name: String,
    source: String,
    /// The dismantled plan; taken (consumed) by [`PipelineManager::start`].
    parts: Option<dsms_engine::PlanParts>,
    /// Node index of the [`SourceRef`] placeholder within `parts`.
    source_idx: usize,
    /// The maximal fingerprinted prefix chain — `(node index, cumulative
    /// hash)`, first entry the placeholder itself.
    chain: Vec<(usize, u64)>,
    /// Initial fan-out membership installed at splice time.
    attached: bool,
    /// Scripted `(attach, boundary)` directives posted at splice time.
    schedule: Vec<(bool, u64)>,
}

struct Running {
    handle: JoinHandle<EngineResult<ExecutionReport>>,
    /// Per query (registration order): the fan-out controller owning its
    /// port, and the port number.
    controls: Vec<(Arc<FanoutController>, usize)>,
}

/// Runs many standing queries against shared named sources in one engine
/// execution: identical plan prefixes are deduplicated behind
/// [`SharedFanout`]s, feedback stays per-query, and queries attach/detach at
/// punctuation boundaries while the stream runs.  See the crate docs for the
/// architecture and `docs/PIPELINES.md` for the lifecycle contract.
///
/// A manager instance drives **one** run: `add_source` → `register`… →
/// [`start`](Self::start) → (runtime [`attach`](Self::attach) /
/// [`detach`](Self::detach)) → [`drain`](Self::drain).
#[derive(Default)]
pub struct PipelineManager {
    /// `(name, operator)`; the operator slot is taken at start.
    sources: Vec<(String, Option<Box<dyn Operator>>)>,
    queries: Vec<Registered>,
    page_capacity: Option<usize>,
    queue_capacity: Option<usize>,
    pool_size: Option<usize>,
    running: Option<Running>,
}

impl PipelineManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tuples-per-page capacity of the master plan's connections.
    pub fn with_page_capacity(mut self, capacity: usize) -> Self {
        self.page_capacity = Some(capacity);
        self
    }

    /// Sets the pages-in-flight bound of the master plan's connections.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Sets the worker count used when the run executes on the pooled
    /// executor.
    pub fn with_worker_pool(mut self, workers: usize) -> Self {
        self.pool_size = Some(workers);
        self
    }

    /// Registers a named long-lived source all queries may reference via
    /// [`SourceRef`].  The operator must be a real source — zero inputs, one
    /// output — and must declare its output schema, which is what
    /// [`Self::source_ref`] hands to query builders for composition-time
    /// type checking.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        operator: impl Operator + 'static,
    ) -> EngineResult<()> {
        let name = name.into();
        if self.running.is_some() {
            return Err(invalid("cannot add a source while the manager is running"));
        }
        if name.is_empty() || name.contains('/') {
            return Err(invalid(format!(
                "source name `{name}` is invalid: names must be non-empty and must not contain '/'"
            )));
        }
        if self.sources.iter().any(|(n, _)| *n == name) {
            return Err(invalid(format!("a source named `{name}` is already registered")));
        }
        if operator.inputs() != 0 || operator.outputs() != 1 {
            return Err(invalid(format!(
                "source `{name}` must have 0 inputs and 1 output, has {} and {}",
                operator.inputs(),
                operator.outputs()
            )));
        }
        if operator.schema_out(0).is_none() {
            return Err(invalid(format!(
                "source `{name}` does not declare its output schema; managed sources must, so \
                 queries can be type-checked against them"
            )));
        }
        self.sources.push((name, Some(Box::new(operator))));
        Ok(())
    }

    /// A [`SourceRef`] placeholder for the named source, carrying the schema
    /// the source declared — the way query plans reference managed sources.
    pub fn source_ref(&self, name: &str) -> EngineResult<SourceRef> {
        match self.source_schema(name) {
            Some(schema) => Ok(SourceRef::new(name, schema)),
            None => Err(invalid(format!(
                "unknown source `{name}` (known: {})",
                self.source_names().join(", ")
            ))),
        }
    }

    /// The declared output schema of the named source, if it is registered
    /// and not yet consumed by a start.
    pub fn source_schema(&self, name: &str) -> Option<SchemaRef> {
        self.sources
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, op)| op.as_ref())
            .and_then(|op| op.schema_out(0))
    }

    /// The names of the registered sources, in registration order.
    pub fn source_names(&self) -> Vec<String> {
        self.sources.iter().map(|(n, _)| n.clone()).collect()
    }

    /// The names of the registered queries, in registration order.
    pub fn query_names(&self) -> Vec<String> {
        self.queries.iter().map(|q| q.name.clone()).collect()
    }

    /// Whether [`Self::start`] has been called and [`Self::drain`] has not.
    pub fn is_running(&self) -> bool {
        self.running.is_some()
    }

    /// The named query's membership state: the initial membership before the
    /// run starts, the last *committed* membership while it runs.
    pub fn query_state(&self, name: &str) -> Option<QueryState> {
        let (idx, query) = self.queries.iter().enumerate().find(|(_, q)| q.name == name)?;
        let attached = match &self.running {
            Some(running) => {
                let (controller, port) = &running.controls[idx];
                controller
                    .commits()
                    .iter()
                    .rfind(|c| c.port == *port)
                    .map(|c| c.attached)
                    .unwrap_or(query.attached)
            }
            None => query.attached,
        };
        Some(if attached { QueryState::Attached } else { QueryState::Detached })
    }

    /// Registers a query plan under `name`, attached from the start.
    ///
    /// The plan must read exactly one source node, and that node must be a
    /// [`SourceRef`] to a source this manager owns.  The plan is dismantled
    /// immediately; at [`Self::start`] its maximal fingerprinted prefix is
    /// deduplicated against the other registered queries.
    pub fn register(&mut self, name: impl Into<String>, plan: QueryPlan) -> EngineResult<()> {
        self.register_with(name.into(), plan, true)
    }

    /// Registers a query plan under `name` with its fan-out port initially
    /// **detached**: the plan is spliced like any other, but receives no data
    /// until an [`Self::attach`] / [`Self::attach_at`] commits — the way to
    /// stage a query that should join the stream mid-run.
    pub fn register_detached(
        &mut self,
        name: impl Into<String>,
        plan: QueryPlan,
    ) -> EngineResult<()> {
        self.register_with(name.into(), plan, false)
    }

    fn register_with(&mut self, name: String, plan: QueryPlan, attached: bool) -> EngineResult<()> {
        if self.running.is_some() {
            return Err(invalid("cannot register a query while the manager is running"));
        }
        if name.is_empty() || name.contains('/') || name == "shared" || name == "fanout" {
            return Err(invalid(format!(
                "query name `{name}` is invalid: names must be non-empty, must not contain '/', \
                 and must not be the reserved words `shared` or `fanout`"
            )));
        }
        if self.queries.iter().any(|q| q.name == name) {
            return Err(invalid(format!("a query named `{name}` is already registered")));
        }
        plan.validate()?;
        let sources = plan.source_nodes();
        if sources.len() != 1 {
            return Err(invalid(format!(
                "query `{name}` must read exactly one managed source, found {} source nodes",
                sources.len()
            )));
        }
        let source_node = sources[0];
        let chain: Vec<(usize, u64)> =
            plan.prefix_chain(source_node).into_iter().map(|(id, h)| (id.index(), h)).collect();
        let parts = plan.into_parts();
        let source_idx = source_node.index();
        let source = match parts.nodes[source_idx].operator.shared_source() {
            Some(s) => s.to_string(),
            None => {
                return Err(invalid(format!(
                    "query `{name}`'s source node `{}` is not a SourceRef: managed queries \
                     reference manager-owned sources by name instead of instantiating their own",
                    parts.nodes[source_idx].name
                )))
            }
        };
        for (idx, node) in parts.nodes.iter().enumerate() {
            if idx != source_idx && node.operator.shared_source().is_some() {
                return Err(invalid(format!(
                    "query `{name}` has a second source reference at non-source node `{}`",
                    node.name
                )));
            }
        }
        let declared = self.source_schema(&source).ok_or_else(|| {
            invalid(format!(
                "query `{name}` references unknown source `{source}` (known: {})",
                self.source_names().join(", ")
            ))
        })?;
        if let Some(plan_schema) = parts.nodes[source_idx].operator.schema_out(0) {
            if plan_schema != declared {
                return Err(invalid(format!(
                    "query `{name}` expects schema {} from source `{source}`, which produces {}",
                    plan_schema.describe(),
                    declared.describe()
                )));
            }
        }
        self.queries.push(Registered {
            name,
            source,
            parts: Some(parts),
            source_idx,
            chain,
            attached,
            schedule: Vec::new(),
        });
        Ok(())
    }

    /// Removes a registered query before the run starts.
    pub fn unregister(&mut self, name: &str) -> EngineResult<()> {
        if self.running.is_some() {
            return Err(invalid(
                "cannot unregister while running: detach the query instead — its operators are \
                 spliced into the live plan, but a committed detach stops all data flow to them",
            ));
        }
        match self.queries.iter().position(|q| q.name == name) {
            Some(idx) => {
                self.queries.remove(idx);
                Ok(())
            }
            None => Err(invalid(format!("no query named `{name}` is registered"))),
        }
    }

    /// Attaches the named query at the next punctuation boundary (while
    /// running), or flips its initial membership to attached (before start).
    pub fn attach(&mut self, name: &str) -> EngineResult<()> {
        self.lifecycle(name, true, None)
    }

    /// Detaches the named query at the next punctuation boundary (while
    /// running), or flips its initial membership to detached (before start).
    pub fn detach(&mut self, name: &str) -> EngineResult<()> {
        self.lifecycle(name, false, None)
    }

    /// Schedules an attach of the named query once its fan-out has seen
    /// `boundary` punctuations — a deterministic consistent cut, used by
    /// parity tests and reproducible experiments.
    pub fn attach_at(&mut self, name: &str, boundary: u64) -> EngineResult<()> {
        self.lifecycle(name, true, Some(boundary))
    }

    /// Schedules a detach of the named query once its fan-out has seen
    /// `boundary` punctuations.
    pub fn detach_at(&mut self, name: &str, boundary: u64) -> EngineResult<()> {
        self.lifecycle(name, false, Some(boundary))
    }

    fn lifecycle(&mut self, name: &str, attach: bool, boundary: Option<u64>) -> EngineResult<()> {
        let idx = self
            .queries
            .iter()
            .position(|q| q.name == name)
            .ok_or_else(|| invalid(format!("no query named `{name}` is registered")))?;
        match (&self.running, boundary) {
            (Some(running), _) => {
                let (controller, port) = &running.controls[idx];
                controller.post(FanoutDirective { port: *port, attach, at_boundary: boundary });
            }
            (None, Some(boundary)) => self.queries[idx].schedule.push((attach, boundary)),
            (None, None) => self.queries[idx].attached = attach,
        }
        Ok(())
    }

    /// Splices the registered queries into one master plan — shared sources
    /// instantiated once, identical fingerprinted prefixes deduplicated
    /// behind [`SharedFanout`]s — and starts executing it on a background
    /// thread.  Returns once execution has started; use [`Self::attach`] /
    /// [`Self::detach`] to steer membership while it runs and
    /// [`Self::drain`] to wait for completion and collect the reports.
    pub fn start(&mut self, kind: ExecutorKind) -> EngineResult<()> {
        if self.running.is_some() {
            return Err(invalid("the manager is already running"));
        }
        if self.queries.is_empty() {
            return Err(invalid("no queries are registered"));
        }
        if self.queries.iter().any(|q| q.parts.is_none()) {
            return Err(invalid("a manager instance drives one run and this one already ran"));
        }

        let mut master = QueryPlan::new();
        if let Some(c) = self.page_capacity {
            master = master.with_page_capacity(c);
        }
        if let Some(c) = self.queue_capacity {
            master = master.with_queue_capacity(c);
        }
        if let Some(w) = self.pool_size {
            master = master.with_worker_pool(w);
        }

        let mut controls: Vec<Option<(Arc<FanoutController>, usize)>> =
            (0..self.queries.len()).map(|_| None).collect();

        for source_pos in 0..self.sources.len() {
            let source_name = self.sources[source_pos].0.clone();
            let members_all: Vec<usize> = (0..self.queries.len())
                .filter(|&qi| self.queries[qi].source == source_name)
                .collect();
            if members_all.is_empty() {
                continue;
            }
            let source_op = self.sources[source_pos]
                .1
                .take()
                .expect("sources are consumed exactly once per run");
            let source_schema = source_op
                .schema_out(0)
                .expect("add_source requires sources to declare their schema");

            // Group the sharers by their maximal identical prefix: equal
            // chain length + equal cumulative hash ⇒ identical operator
            // sequences (partial overlaps share only the source — the dedup
            // unit is the *maximal* chain, documented in docs/PIPELINES.md).
            let mut groups: Vec<((usize, u64), Vec<usize>)> = Vec::new();
            for &qi in &members_all {
                let q = &self.queries[qi];
                let key = match q.chain.last() {
                    Some(&(_, hash)) => (q.chain.len(), hash),
                    // Unfingerprinted source node: not dedupe-able, so give
                    // the query a group of its own.
                    None => (0, qi as u64),
                };
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(qi),
                    None => groups.push((key, vec![qi])),
                }
            }

            let source_id = master.add_boxed(source_op);
            let controller0 = FanoutController::shared();
            let port_flags: Vec<bool> = groups
                .iter()
                .map(|(_, members)| {
                    // A singleton's F0 port is the query's own membership; a
                    // shared group's port stays attached so the spine keeps
                    // serving whichever members are.
                    members.len() > 1 || self.queries[members[0]].attached
                })
                .collect();
            let fanout0_id = master.add(
                SharedFanout::new(
                    format!("fanout/{source_name}"),
                    source_schema.clone(),
                    groups.len(),
                )
                .with_controller(controller0.clone())
                .with_initial(&port_flags),
            );
            master.connect(source_id, 0, fanout0_id, 0)?;

            for (group_no, (_, members)) in groups.iter().enumerate() {
                if members.len() == 1 {
                    // Shares the source only: the whole plan minus the
                    // placeholder hangs off this query's private F0 port.
                    let qi = members[0];
                    let (query_name, parts, source_idx, schedule) = {
                        let q = &mut self.queries[qi];
                        (
                            q.name.clone(),
                            q.parts.take().expect("checked above"),
                            q.source_idx,
                            q.schedule.clone(),
                        )
                    };
                    let mut slots: Vec<Option<PlanNode>> =
                        parts.nodes.into_iter().map(Some).collect();
                    slots[source_idx] = None;
                    splice_suffix(
                        &mut master,
                        &query_name,
                        slots,
                        parts.edges,
                        &parts.recovery,
                        &parts.quarantine,
                        source_idx,
                        (fanout0_id, group_no),
                    )?;
                    controls[qi] = Some((controller0.clone(), group_no));
                    for (attach, boundary) in schedule {
                        controller0.post(FanoutDirective {
                            port: group_no,
                            attach,
                            at_boundary: Some(boundary),
                        });
                    }
                } else {
                    // ≥ 2 identical prefixes: instantiate the chain once
                    // (from the first member's parts) as a shared spine, and
                    // fan out per member behind it.
                    let owner = members[0];
                    let chain_idx: Vec<usize> =
                        self.queries[owner].chain.iter().skip(1).map(|&(i, _)| i).collect();
                    let member_flags: Vec<bool> =
                        members.iter().map(|&qi| self.queries[qi].attached).collect();
                    let (owner_name, owner_parts, owner_source_idx, owner_schedule) = {
                        let q = &mut self.queries[owner];
                        (
                            q.name.clone(),
                            q.parts.take().expect("checked above"),
                            q.source_idx,
                            q.schedule.clone(),
                        )
                    };
                    let mut slots: Vec<Option<PlanNode>> =
                        owner_parts.nodes.into_iter().map(Some).collect();
                    slots[owner_source_idx] = None;
                    let mut spine: Vec<NodeId> = Vec::new();
                    let mut spine_schema = source_schema.clone();
                    for &chain_node in &chain_idx {
                        let node = slots[chain_node].take().expect("chain nodes are distinct");
                        if let Some(schema) = node.operator.schema_out(0) {
                            spine_schema = schema;
                        }
                        let id = master.add_boxed(Box::new(ScopedOperator::new(
                            format!("shared/{source_name}/{group_no}/{}", node.name),
                            node.operator,
                        )));
                        match spine.last() {
                            Some(&prev) => master.connect(prev, 0, id, 0)?,
                            None => master.connect(fanout0_id, group_no, id, 0)?,
                        }
                        spine.push(id);
                    }
                    let group_controller = FanoutController::shared();
                    let group_fanout_id = master.add(
                        SharedFanout::new(
                            format!("fanout/{source_name}/{group_no}"),
                            spine_schema,
                            members.len(),
                        )
                        .with_controller(group_controller.clone())
                        .with_initial(&member_flags),
                    );
                    match spine.last() {
                        Some(&tail) => master.connect(tail, 0, group_fanout_id, 0)?,
                        None => master.connect(fanout0_id, group_no, group_fanout_id, 0)?,
                    }
                    let owner_boundary = chain_idx.last().copied().unwrap_or(owner_source_idx);
                    splice_suffix(
                        &mut master,
                        &owner_name,
                        slots,
                        owner_parts.edges,
                        &owner_parts.recovery,
                        &owner_parts.quarantine,
                        owner_boundary,
                        (group_fanout_id, 0),
                    )?;
                    controls[owner] = Some((group_controller.clone(), 0));
                    for (attach, boundary) in owner_schedule {
                        group_controller.post(FanoutDirective {
                            port: 0,
                            attach,
                            at_boundary: Some(boundary),
                        });
                    }
                    for (port, &qi) in members.iter().enumerate().skip(1) {
                        let (query_name, parts, own_chain, schedule) = {
                            let q = &mut self.queries[qi];
                            (
                                q.name.clone(),
                                q.parts.take().expect("checked above"),
                                q.chain.iter().map(|&(i, _)| i).collect::<Vec<usize>>(),
                                q.schedule.clone(),
                            )
                        };
                        let mut slots: Vec<Option<PlanNode>> =
                            parts.nodes.into_iter().map(Some).collect();
                        for &chain_node in &own_chain {
                            slots[chain_node] = None;
                        }
                        let boundary =
                            own_chain.last().copied().unwrap_or(self.queries[qi].source_idx);
                        splice_suffix(
                            &mut master,
                            &query_name,
                            slots,
                            parts.edges,
                            &parts.recovery,
                            &parts.quarantine,
                            boundary,
                            (group_fanout_id, port),
                        )?;
                        controls[qi] = Some((group_controller.clone(), port));
                        for (attach, boundary) in schedule {
                            group_controller.post(FanoutDirective {
                                port,
                                attach,
                                at_boundary: Some(boundary),
                            });
                        }
                    }
                }
            }
        }

        master.validate()?;
        let handle = std::thread::Builder::new()
            .name("dsms-manager".into())
            .spawn(move || match kind {
                ExecutorKind::Sync => SyncExecutor::run(master),
                ExecutorKind::Threaded => ThreadedExecutor::run(master),
                ExecutorKind::Pooled => PooledExecutor::run(master),
            })
            .map_err(|e| EngineError::ExecutionFailed {
                detail: format!("failed to spawn the manager's execution thread: {e}"),
            })?;
        self.running = Some(Running {
            handle,
            controls: controls
                .into_iter()
                .map(|c| c.expect("every registered query is spliced"))
                .collect(),
        });
        Ok(())
    }

    /// Waits for the running master plan to finish and splits the result into
    /// per-query reports plus the manager-level summary.
    pub fn drain(&mut self) -> EngineResult<ManagerOutcome> {
        let running = self
            .running
            .take()
            .ok_or_else(|| invalid("the manager is not running (call start first)"))?;
        let master = running.handle.join().map_err(|_| EngineError::ExecutionFailed {
            detail: "the manager's execution thread panicked".into(),
        })??;

        let mut reports = Vec::with_capacity(self.queries.len());
        let mut per_query_feedback = Vec::with_capacity(self.queries.len());
        let mut quarantined = Vec::new();
        let mut started = 0;
        let mut stopped = 0;
        let mut active = 0;
        for (idx, query) in self.queries.iter().enumerate() {
            let prefix = format!("{}/", query.name);
            let mut report = ExecutionReport {
                elapsed: master.elapsed,
                metrics: Vec::new(),
                scheduler: master.scheduler,
            };
            let mut feedback = FeedbackStats::default();
            for metric in &master.metrics {
                if let Some(stripped) = metric.operator.strip_prefix(&prefix) {
                    let mut m = metric.clone();
                    m.operator = stripped.to_string();
                    feedback.merge(&m.feedback);
                    if let Some(failure) = &m.failure {
                        quarantined
                            .push((query.name.clone(), format!("{}: {failure}", m.operator)));
                    }
                    report.metrics.push(m);
                }
            }
            per_query_feedback.push((query.name.clone(), feedback));
            reports.push(QueryReport { name: query.name.clone(), report });

            let (controller, port) = &running.controls[idx];
            let commits: Vec<bool> = controller
                .commits()
                .iter()
                .filter(|c| c.port == *port)
                .map(|c| c.attached)
                .collect();
            let ever_attached = query.attached || commits.iter().any(|&a| a);
            let ever_detached = commits.iter().any(|&a| !a);
            let final_state = commits.last().copied().unwrap_or(query.attached);
            started += usize::from(ever_attached);
            stopped += usize::from(ever_detached);
            active += usize::from(final_state);
        }

        let (hits, total) = self.prefix_accounting();
        let summary = ManagerSummary {
            queries_registered: self.queries.len(),
            queries_started: started,
            queries_stopped: stopped,
            queries_active: active,
            shared_prefix_hits: hits,
            prefix_ops_total: total,
            per_query_feedback,
            quarantined,
        };
        Ok(ManagerOutcome { master, queries: reports, summary })
    }

    /// Convenience: [`Self::start`] then [`Self::drain`].  Scripted
    /// attach/detach boundaries still apply; runtime steering is obviously
    /// unavailable since the call blocks until the stream ends.
    pub fn run(&mut self, kind: ExecutorKind) -> EngineResult<ManagerOutcome> {
        self.start(kind)?;
        self.drain()
    }

    /// Shared-prefix accounting over the registered queries: `(instances
    /// saved by sharing, instances requested)`.
    fn prefix_accounting(&self) -> (usize, usize) {
        let total: usize = self.queries.iter().map(|q| q.chain.len().max(1)).sum();
        let mut hits = 0;
        for (source_name, _) in &self.sources {
            let members: Vec<&Registered> =
                self.queries.iter().filter(|q| q.source == *source_name).collect();
            if members.is_empty() {
                continue;
            }
            // One source instance serves all sharers…
            hits += members.len() - 1;
            // …and each group of identical chains instantiates the ops
            // beyond the source once.
            let mut groups: HashMap<(usize, u64), usize> = HashMap::new();
            for query in &members {
                if let Some(&(_, hash)) = query.chain.last() {
                    *groups.entry((query.chain.len(), hash)).or_insert(0) += 1;
                }
            }
            for ((len, _), count) in groups {
                if count > 1 && len > 1 {
                    hits += (count - 1) * (len - 1);
                }
            }
        }
        (hits, total)
    }
}

/// Adds the remaining (non-`None`) nodes of a dismantled plan to the master
/// plan under `query`-scoped names and re-creates their edges, with every
/// edge leaving `boundary` re-anchored to the given fan-out port.  Each
/// spliced node keeps the recovery policy and quarantine flag its query
/// declared (`recovery`/`quarantine` are index-parallel with the original
/// plan's nodes); shared spine nodes, spliced elsewhere, stay fail-fast —
/// a restart there would replay into every sharer at once.
#[allow(clippy::too_many_arguments)]
fn splice_suffix(
    master: &mut QueryPlan,
    query: &str,
    slots: Vec<Option<PlanNode>>,
    edges: Vec<Edge>,
    recovery: &[dsms_engine::RecoveryPolicy],
    quarantine: &[bool],
    boundary: usize,
    fanout: (NodeId, usize),
) -> EngineResult<()> {
    let mut map: HashMap<usize, NodeId> = HashMap::new();
    for (idx, slot) in slots.into_iter().enumerate() {
        if let Some(node) = slot {
            let id = master.add_boxed(Box::new(ScopedOperator::new(
                format!("{query}/{}", node.name),
                node.operator,
            )));
            if let Some(&policy) = recovery.get(idx) {
                master.set_recovery(id, policy)?;
            }
            if quarantine.get(idx).copied().unwrap_or(false) {
                master.set_quarantine(id, true)?;
            }
            map.insert(idx, id);
        }
    }
    for edge in edges {
        let Some(&to) = map.get(&edge.to.index()) else {
            // Both endpoints inside the replaced prefix: nothing to wire.
            continue;
        };
        if edge.from.index() == boundary {
            master.connect(fanout.0, fanout.1, to, edge.to_port)?;
        } else if let Some(&from) = map.get(&edge.from.index()) {
            master.connect(from, edge.from_port, to, edge.to_port)?;
        } else {
            // An edge from a dropped non-boundary prefix node into a kept
            // node would silently lose a data path; prefix chains are linear
            // so this cannot happen unless the fingerprint contract is
            // violated.
            return Err(invalid(format!(
                "splice of query `{query}` hit an edge leaving the deduplicated prefix at a \
                 non-boundary node — the prefix chain was not linear"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_engine::StreamBuilder;
    use dsms_operators::{SinkHandle, StreamOps, TuplePredicate, VecSource};
    use dsms_types::{DataType, Schema, StreamDuration, Timestamp, Tuple, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn feed(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|v| {
                Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(v)), Value::Int(v)])
            })
            .collect()
    }

    fn source(n: i64) -> VecSource {
        VecSource::new("feed", feed(n)).with_punctuation("timestamp", StreamDuration::from_secs(4))
    }

    fn evens() -> TuplePredicate {
        TuplePredicate::new("v is even", |t| t.int("v").map(|v| v % 2 == 0).unwrap_or(false))
    }

    fn odds() -> TuplePredicate {
        TuplePredicate::new("v is odd", |t| t.int("v").map(|v| v % 2 != 0).unwrap_or(false))
    }

    fn digest(handle: &SinkHandle) -> String {
        let mut rows: Vec<String> =
            handle.lock().iter().map(|t| format!("{:?}", t.values())).collect();
        rows.sort();
        rows.join("\n")
    }

    /// A solo (manager-less) run of `source → select(pred) → sink`.
    fn solo_digest(n: i64, pred: TuplePredicate) -> String {
        let builder = StreamBuilder::new();
        let handle = builder
            .source(source(n))
            .unwrap()
            .select("filter", pred)
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        SyncExecutor::run(builder.build().unwrap()).unwrap();
        digest(&handle)
    }

    fn managed_query(manager: &PipelineManager, pred: TuplePredicate) -> (QueryPlan, SinkHandle) {
        let builder = StreamBuilder::new();
        let handle = builder
            .source(manager.source_ref("feed").unwrap())
            .unwrap()
            .select("filter", pred)
            .unwrap()
            .sink_collect("sink")
            .unwrap();
        (builder.build().unwrap(), handle)
    }

    #[test]
    fn identical_prefixes_are_deduplicated_and_results_match_solo_runs() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(16)).unwrap();
        let (plan_a, sink_a) = managed_query(&manager, evens());
        let (plan_b, sink_b) = managed_query(&manager, evens());
        manager.register("qa", plan_a).unwrap();
        manager.register("qb", plan_b).unwrap();

        let outcome = manager.run(ExecutorKind::Sync).unwrap();
        let solo = solo_digest(16, evens());
        assert_eq!(digest(&sink_a), solo);
        assert_eq!(digest(&sink_b), solo);
        // source + select each requested twice, instantiated once.
        assert_eq!(outcome.summary.shared_prefix_hits, 2);
        assert_eq!(outcome.summary.prefix_ops_total, 4);
        assert_eq!(outcome.summary.queries_active, 2);
        assert_eq!(outcome.summary.queries_started, 2);
        assert_eq!(outcome.summary.queries_stopped, 0);
        assert_eq!(outcome.master.total_feedback_dropped(), 0);
        // The shared spine exists exactly once in the master plan.
        let shared_selects = outcome
            .master
            .metrics
            .iter()
            .filter(|m| m.operator.starts_with("shared/feed/") && m.operator.ends_with("/filter"))
            .count();
        assert_eq!(shared_selects, 1);
        // Per-query reports resolve unscoped operator names.
        let qa = outcome.query("qa").unwrap();
        assert!(qa.operator("sink").is_some());
        assert!(qa.operator("filter").is_none(), "the filter is shared, not query-private");
    }

    #[test]
    fn different_filters_share_only_the_source() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(16)).unwrap();
        let (plan_a, sink_a) = managed_query(&manager, evens());
        let (plan_b, sink_b) = managed_query(&manager, odds());
        manager.register("qa", plan_a).unwrap();
        manager.register("qb", plan_b).unwrap();

        let outcome = manager.run(ExecutorKind::Sync).unwrap();
        assert_eq!(digest(&sink_a), solo_digest(16, evens()));
        assert_eq!(digest(&sink_b), solo_digest(16, odds()));
        assert_eq!(outcome.summary.shared_prefix_hits, 1, "only the source is shared");
        assert_eq!(outcome.summary.prefix_ops_total, 4);
        // Each query keeps its private filter.
        assert!(outcome.query("qa").unwrap().operator("filter").is_some());
        assert!(outcome.query("qb").unwrap().operator("filter").is_some());
    }

    #[test]
    fn scripted_detach_stops_one_query_without_disturbing_its_sibling() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(32)).unwrap();
        let (plan_a, sink_a) = managed_query(&manager, evens());
        let (plan_b, sink_b) = managed_query(&manager, evens());
        manager.register("qa", plan_a).unwrap();
        manager.register("qb", plan_b).unwrap();
        manager.detach_at("qb", 2).unwrap();

        let outcome = manager.run(ExecutorKind::Sync).unwrap();
        let solo = solo_digest(32, evens());
        assert_eq!(digest(&sink_a), solo, "the sibling is untouched");
        let partial = digest(&sink_b);
        assert_ne!(partial, solo, "the detached query stopped mid-stream");
        assert!(!partial.is_empty(), "the detached query ran until the scripted boundary");
        let solo_rows: Vec<&str> = solo.lines().collect();
        assert!(
            partial.lines().all(|row| solo_rows.contains(&row)),
            "every tuple the detached query saw belongs to the solo result"
        );
        assert_eq!(outcome.summary.queries_started, 2);
        assert_eq!(outcome.summary.queries_stopped, 1);
        assert_eq!(outcome.summary.queries_active, 1);
    }

    #[test]
    fn detached_registration_attaches_mid_stream_at_a_boundary() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(32)).unwrap();
        let (plan_a, sink_a) = managed_query(&manager, evens());
        let (plan_b, sink_b) = managed_query(&manager, evens());
        manager.register("qa", plan_a).unwrap();
        manager.register_detached("qb", plan_b).unwrap();
        assert_eq!(manager.query_state("qb"), Some(QueryState::Detached));
        manager.attach_at("qb", 2).unwrap();

        let outcome = manager.run(ExecutorKind::Sync).unwrap();
        let solo = solo_digest(32, evens());
        assert_eq!(digest(&sink_a), solo, "the sibling is untouched");
        let suffix = digest(&sink_b);
        assert_ne!(suffix, solo, "the late query missed the head of the stream");
        assert!(!suffix.is_empty(), "…but joined before the end");
        assert_eq!(outcome.summary.queries_started, 2);
        assert_eq!(outcome.summary.queries_active, 2);
    }

    #[test]
    fn registration_is_validated() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(4)).unwrap();
        assert!(manager.add_source("feed", source(4)).is_err(), "duplicate source");
        assert!(manager.add_source("a/b", source(4)).is_err(), "invalid name");
        assert!(manager.source_ref("nope").is_err(), "unknown source");

        // A plan that instantiates its own source is rejected.
        let builder = StreamBuilder::new();
        builder.source(source(4)).unwrap().sink_collect("sink").unwrap();
        let err = manager.register("raw", builder.build().unwrap()).unwrap_err().to_string();
        assert!(err.contains("not a SourceRef"), "{err}");

        // Unknown source reference.
        let builder = StreamBuilder::new();
        builder.source(SourceRef::new("nope", schema())).unwrap().sink_collect("sink").unwrap();
        let err = manager.register("ghost", builder.build().unwrap()).unwrap_err().to_string();
        assert!(err.contains("unknown source `nope`"), "{err}");

        // Schema mismatch against the declared source.
        let other = Schema::shared(&[("x", DataType::Int)]);
        let builder = StreamBuilder::new();
        builder.source(SourceRef::new("feed", other)).unwrap().sink_collect("sink").unwrap();
        let err = manager.register("skewed", builder.build().unwrap()).unwrap_err().to_string();
        assert!(err.contains("expects schema"), "{err}");

        // Reserved and duplicate query names.
        let (plan, _) = managed_query(&manager, evens());
        assert!(manager.register("shared", plan).is_err(), "reserved name");
        let (plan, _) = managed_query(&manager, evens());
        manager.register("qa", plan).unwrap();
        let (plan, _) = managed_query(&manager, evens());
        assert!(manager.register("qa", plan).is_err(), "duplicate query name");

        // Lifecycle calls on unknown queries fail.
        assert!(manager.attach("nope").is_err());
        assert!(manager.unregister("nope").is_err());
        manager.unregister("qa").unwrap();
        assert!(manager.run(ExecutorKind::Sync).is_err(), "no queries left");
    }

    #[test]
    fn a_manager_instance_drives_exactly_one_run() {
        let mut manager = PipelineManager::new();
        manager.add_source("feed", source(8)).unwrap();
        let (plan, _) = managed_query(&manager, evens());
        manager.register("qa", plan).unwrap();
        manager.run(ExecutorKind::Sync).unwrap();
        assert!(manager.drain().is_err(), "already drained");
        assert!(manager.start(ExecutorKind::Sync).is_err(), "plans were consumed");
    }
}
