//! Per-attribute and whole-tuple match patterns.
//!
//! A punctuation (embedded or feedback) describes a *set of tuples* by giving
//! one [`PatternItem`] per attribute of the stream schema.  The paper writes
//! these as e.g. `[*, *, ≤'2008-12-08 9:00 AM']` — a wildcard on the first two
//! attributes and an upper bound on the third.  Feedback punctuation reuses
//! the same pattern language but typically punctuates a wider variety of
//! attributes (e.g. `[*, ≥50]` for "all tuples whose value is at least 50").

use dsms_types::{ColumnSummary, SchemaRef, Tuple, TypeError, TypeResult, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a pattern (or pattern item) can conclude about a whole batch of
/// tuples from column summaries alone.
///
/// The three-valued answer is what makes batch-level guard evaluation sound:
/// a conclusive answer (`All` / `None`) lets the caller skip per-tuple
/// matching entirely, and `Unknown` forces the per-tuple fallback — there is
/// no case in which a summary verdict and per-tuple evaluation disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryMatch {
    /// Every tuple of the summarized batch matches.
    All,
    /// No tuple of the summarized batch matches.
    None,
    /// The summary cannot decide; evaluate per tuple.
    Unknown,
}

/// The match specification for a single attribute of a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternItem {
    /// `*` — matches any value.
    Wildcard,
    /// `= v` — matches exactly `v`.
    Eq(Value),
    /// `< v` — matches values strictly below `v`.
    Lt(Value),
    /// `≤ v` — matches values at or below `v`.
    Le(Value),
    /// `> v` — matches values strictly above `v`.
    Gt(Value),
    /// `≥ v` — matches values at or above `v`.
    Ge(Value),
    /// `[lo, hi]` — matches values in the closed interval.
    Between(Value, Value),
    /// `∈ {v₁, …}` — matches any of the listed values.
    InSet(Vec<Value>),
}

impl PatternItem {
    /// True when this item matches the given value.
    ///
    /// `Null` values match only the wildcard: a null reading is "unknown", so
    /// no relational predicate can claim it.
    pub fn matches(&self, value: &Value) -> bool {
        if value.is_null() {
            return matches!(self, PatternItem::Wildcard);
        }
        match self {
            PatternItem::Wildcard => true,
            PatternItem::Eq(v) => value == v,
            PatternItem::Lt(v) => value < v,
            PatternItem::Le(v) => value <= v,
            PatternItem::Gt(v) => value > v,
            PatternItem::Ge(v) => value >= v,
            PatternItem::Between(lo, hi) => value >= lo && value <= hi,
            PatternItem::InSet(vs) => vs.contains(value),
        }
    }

    /// True when this item is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternItem::Wildcard)
    }

    /// Classifies a whole batch against this item from its [`ColumnSummary`]
    /// alone.
    ///
    /// The summary's min/max use the same total order as
    /// [`PatternItem::matches`], so every conclusive verdict is exact:
    ///
    /// * [`SummaryMatch::None`] needs only the range of the *non-null* values
    ///   to lie outside the item (nulls never match a non-wildcard item);
    /// * [`SummaryMatch::All`] additionally requires a null-free column,
    ///   because a null row would fail the item even inside the range.
    ///
    /// An empty summary yields [`SummaryMatch::Unknown`] — there is nothing
    /// to conclude about.
    ///
    /// ```
    /// use dsms_punctuation::{PatternItem, SummaryMatch};
    /// use dsms_types::{ColumnSummary, Value};
    ///
    /// let speeds =
    ///     ColumnSummary::over_values([Value::Float(40.0), Value::Float(48.5)].iter());
    /// let fast = PatternItem::Ge(Value::Float(50.0));
    /// assert_eq!(fast.matches_summary(&speeds), SummaryMatch::None);
    /// let slow = PatternItem::Lt(Value::Float(50.0));
    /// assert_eq!(slow.matches_summary(&speeds), SummaryMatch::All);
    /// let mid = PatternItem::Ge(Value::Float(45.0));
    /// assert_eq!(mid.matches_summary(&speeds), SummaryMatch::Unknown);
    /// ```
    pub fn matches_summary(&self, summary: &ColumnSummary) -> SummaryMatch {
        if summary.is_empty() {
            return SummaryMatch::Unknown;
        }
        if self.is_wildcard() {
            return SummaryMatch::All;
        }
        if summary.all_null() {
            // Null matches only the wildcard, so a non-wildcard item matches
            // nothing in an all-null column.
            return SummaryMatch::None;
        }
        let (Some(min), Some(max)) = (summary.min(), summary.max()) else {
            return SummaryMatch::Unknown;
        };
        // An `All` claim must also cover the null rows, which never match a
        // non-wildcard item; a `None` claim only concerns the non-null rows
        // the range describes.
        let can_claim_all = !summary.has_nulls();
        let all_or_unknown = |every_value_matches: bool| {
            if every_value_matches && can_claim_all {
                SummaryMatch::All
            } else {
                SummaryMatch::Unknown
            }
        };
        match self {
            PatternItem::Wildcard => SummaryMatch::All,
            PatternItem::Eq(v) => {
                if v < min || v > max {
                    SummaryMatch::None
                } else {
                    all_or_unknown(min == max && min == v)
                }
            }
            PatternItem::Lt(v) => {
                if min >= v {
                    SummaryMatch::None
                } else {
                    all_or_unknown(max < v)
                }
            }
            PatternItem::Le(v) => {
                if min > v {
                    SummaryMatch::None
                } else {
                    all_or_unknown(max <= v)
                }
            }
            PatternItem::Gt(v) => {
                if max <= v {
                    SummaryMatch::None
                } else {
                    all_or_unknown(min > v)
                }
            }
            PatternItem::Ge(v) => {
                if max < v {
                    SummaryMatch::None
                } else {
                    all_or_unknown(min >= v)
                }
            }
            PatternItem::Between(lo, hi) => {
                if max < lo || min > hi {
                    SummaryMatch::None
                } else {
                    all_or_unknown(min >= lo && max <= hi)
                }
            }
            PatternItem::InSet(vs) => {
                if vs.iter().all(|v| v < min || v > max) {
                    SummaryMatch::None
                } else {
                    // Conclusive-all only for a constant column whose single
                    // value is in the set.
                    all_or_unknown(min == max && vs.contains(min))
                }
            }
        }
    }

    /// True when every value matched by `other` is also matched by `self`
    /// (conservative: returns `false` when subsumption cannot be proven
    /// syntactically).
    pub fn subsumes(&self, other: &PatternItem) -> bool {
        use PatternItem::*;
        match (self, other) {
            (Wildcard, _) => true,
            (_, Wildcard) => false,
            (Eq(a), Eq(b)) => a == b,
            (Eq(a), InSet(bs)) => bs.iter().all(|b| b == a),
            (Lt(a), Lt(b)) => b <= a,
            (Lt(a), Le(b)) => b < a,
            (Lt(a), Eq(b)) => b < a,
            (Le(a), Le(b)) => b <= a,
            (Le(a), Lt(b)) => b <= a,
            (Le(a), Eq(b)) => b <= a,
            (Gt(a), Gt(b)) => b >= a,
            (Gt(a), Ge(b)) => b > a,
            (Gt(a), Eq(b)) => b > a,
            (Ge(a), Ge(b)) => b >= a,
            (Ge(a), Gt(b)) => b >= a,
            (Ge(a), Eq(b)) => b >= a,
            (Between(lo, hi), Eq(b)) => b >= lo && b <= hi,
            (Between(lo, hi), Between(lo2, hi2)) => lo2 >= lo && hi2 <= hi,
            (Between(lo, hi), InSet(bs)) => bs.iter().all(|b| b >= lo && b <= hi),
            (InSet(avs), Eq(b)) => avs.contains(b),
            (InSet(avs), InSet(bvs)) => bvs.iter().all(|b| avs.contains(b)),
            (Lt(a), Between(_, hi)) => hi < a,
            (Le(a), Between(_, hi)) => hi <= a,
            (Gt(a), Between(lo, _)) => lo > a,
            (Ge(a), Between(lo, _)) => lo >= a,
            (Lt(a), InSet(bs)) => bs.iter().all(|b| b < a),
            (Le(a), InSet(bs)) => bs.iter().all(|b| b <= a),
            (Gt(a), InSet(bs)) => bs.iter().all(|b| b > a),
            (Ge(a), InSet(bs)) => bs.iter().all(|b| b >= a),
            _ => false,
        }
    }

    /// True when there exists no value matched by both items (conservative:
    /// returns `false` when disjointness cannot be proven syntactically).
    pub fn disjoint_from(&self, other: &PatternItem) -> bool {
        use PatternItem::*;
        match (self, other) {
            (Wildcard, _) | (_, Wildcard) => false,
            (Eq(a), Eq(b)) => a != b,
            (Eq(a), Lt(b)) | (Lt(b), Eq(a)) => a >= b,
            (Eq(a), Le(b)) | (Le(b), Eq(a)) => a > b,
            (Eq(a), Gt(b)) | (Gt(b), Eq(a)) => a <= b,
            (Eq(a), Ge(b)) | (Ge(b), Eq(a)) => a < b,
            (Eq(a), Between(lo, hi)) | (Between(lo, hi), Eq(a)) => a < lo || a > hi,
            (Eq(a), InSet(bs)) | (InSet(bs), Eq(a)) => !bs.contains(a),
            (Lt(a), Gt(b)) | (Gt(b), Lt(a)) => {
                a <= b || {
                    // (< a) and (> b) overlap iff b < x < a has a solution; for our
                    // totally ordered domains treat non-empty open interval as overlap.
                    false
                }
            }
            (Lt(a), Ge(b)) | (Ge(b), Lt(a)) => a <= b,
            (Le(a), Gt(b)) | (Gt(b), Le(a)) => a <= b,
            (Le(a), Ge(b)) | (Ge(b), Le(a)) => a < b,
            (Between(lo1, hi1), Between(lo2, hi2)) => hi1 < lo2 || hi2 < lo1,
            (Between(lo, hi), Lt(a)) | (Lt(a), Between(lo, hi)) => {
                let _ = hi;
                lo >= a
            }
            (Between(lo, hi), Le(a)) | (Le(a), Between(lo, hi)) => {
                let _ = hi;
                lo > a
            }
            (Between(lo, hi), Gt(a)) | (Gt(a), Between(lo, hi)) => {
                let _ = lo;
                hi <= a
            }
            (Between(lo, hi), Ge(a)) | (Ge(a), Between(lo, hi)) => {
                let _ = lo;
                hi < a
            }
            (InSet(avs), InSet(bvs)) => avs.iter().all(|a| !bvs.contains(a)),
            (InSet(vs), other) | (other, InSet(vs)) => vs.iter().all(|v| !other.matches(v)),
            _ => false,
        }
    }
}

impl fmt::Display for PatternItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternItem::Wildcard => write!(f, "*"),
            PatternItem::Eq(v) => write!(f, "{v}"),
            PatternItem::Lt(v) => write!(f, "<{v}"),
            PatternItem::Le(v) => write!(f, "<={v}"),
            PatternItem::Gt(v) => write!(f, ">{v}"),
            PatternItem::Ge(v) => write!(f, ">={v}"),
            PatternItem::Between(lo, hi) => write!(f, "[{lo}..{hi}]"),
            PatternItem::InSet(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                write!(f, "{{{}}}", parts.join(","))
            }
        }
    }
}

/// A whole-tuple pattern: one [`PatternItem`] per attribute of a schema.
///
/// The indices of the non-wildcard items are precomputed at construction, so
/// [`Pattern::matches`] and [`Pattern::constrained_attributes`] never scan
/// (or allocate for) the wildcard positions — full-arity patterns with one
/// constrained attribute, the common case for feedback guards, cost one item
/// check per tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    schema: SchemaRef,
    items: Vec<PatternItem>,
    /// Indices of non-wildcard items; derived from `items`, so the derived
    /// equality/hash over it stays consistent.
    constrained: Vec<usize>,
}

impl Pattern {
    fn assemble(schema: SchemaRef, items: Vec<PatternItem>) -> Self {
        let constrained = items
            .iter()
            .enumerate()
            .filter(|(_, item)| !item.is_wildcard())
            .map(|(i, _)| i)
            .collect();
        Pattern { schema, items, constrained }
    }

    /// Creates a pattern, checking that the item count matches the schema
    /// arity.
    pub fn try_new(schema: SchemaRef, items: Vec<PatternItem>) -> TypeResult<Self> {
        if items.len() != schema.arity() {
            return Err(TypeError::ArityMismatch {
                values: items.len(),
                attributes: schema.arity(),
            });
        }
        Ok(Pattern::assemble(schema, items))
    }

    /// Creates a pattern, panicking when the arity does not match.
    pub fn new(schema: SchemaRef, items: Vec<PatternItem>) -> Self {
        Self::try_new(schema, items).expect("pattern arity must match schema")
    }

    /// A pattern of all wildcards (matches every tuple of the schema).
    pub fn all_wildcards(schema: SchemaRef) -> Self {
        let items = vec![PatternItem::Wildcard; schema.arity()];
        Pattern::assemble(schema, items)
    }

    /// Builds a pattern that is wildcard everywhere except the named
    /// attributes, which get the supplied items.
    pub fn for_attributes(
        schema: SchemaRef,
        constraints: &[(&str, PatternItem)],
    ) -> TypeResult<Self> {
        let mut items = vec![PatternItem::Wildcard; schema.arity()];
        for (name, item) in constraints {
            let idx = schema.index_of(name)?;
            items[idx] = item.clone();
        }
        Ok(Pattern::assemble(schema, items))
    }

    /// The schema this pattern is defined over.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The per-attribute items.
    pub fn items(&self) -> &[PatternItem] {
        &self.items
    }

    /// The item for the attribute at `index`.
    pub fn item(&self, index: usize) -> Option<&PatternItem> {
        self.items.get(index)
    }

    /// The item for the named attribute.
    pub fn item_for(&self, name: &str) -> TypeResult<&PatternItem> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.items[idx])
    }

    /// Indices of attributes that are *not* wildcards — the attributes this
    /// pattern actually constrains.  Precomputed at construction; calling
    /// this never allocates.
    pub fn constrained_attributes(&self) -> &[usize] {
        &self.constrained
    }

    /// True when the pattern constrains nothing (all wildcards).
    pub fn is_unconstrained(&self) -> bool {
        self.constrained.is_empty()
    }

    /// True when this pattern matches the tuple.  The tuple must have the same
    /// arity; callers are expected to only apply patterns to tuples of the
    /// pattern's stream.  Only constrained attributes are checked — wildcard
    /// positions are skipped entirely.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.items.len(), "pattern/tuple arity mismatch");
        let values = tuple.values();
        self.constrained
            .iter()
            .all(|&i| values.get(i).is_none_or(|value| self.items[i].matches(value)))
    }

    /// Compiles this pattern into a standalone matcher that owns just the
    /// constrained `(index, item)` pairs — what per-tuple guard checks should
    /// hold on to (see `dsms-feedback`'s registry), so matching a mostly
    /// wildcard pattern touches only the attributes it constrains and the
    /// pattern itself need not be kept alive.
    pub fn compile(&self) -> CompiledPattern {
        CompiledPattern {
            arity: self.items.len(),
            constrained: self.constrained.iter().map(|&i| (i, self.items[i].clone())).collect(),
        }
    }

    /// True when every tuple matched by `other` is matched by `self`
    /// (attribute-wise subsumption; conservative).
    pub fn subsumes(&self, other: &Pattern) -> bool {
        self.items.len() == other.items.len()
            && self.items.iter().zip(&other.items).all(|(a, b)| a.subsumes(b))
    }

    /// True when no tuple can match both patterns (some attribute is provably
    /// disjoint; conservative).
    pub fn disjoint_from(&self, other: &Pattern) -> bool {
        self.items.len() == other.items.len()
            && self.items.iter().zip(&other.items).any(|(a, b)| a.disjoint_from(b))
    }

    /// Rewrites this pattern onto a different schema using an attribute
    /// mapping: `mapping[i]` gives, for output attribute `i` of the target
    /// schema, the index of the source attribute in `self`'s schema (or `None`
    /// when the target attribute has no corresponding source attribute, in
    /// which case it becomes a wildcard).
    pub fn remap(&self, target: SchemaRef, mapping: &[Option<usize>]) -> TypeResult<Pattern> {
        if mapping.len() != target.arity() {
            return Err(TypeError::ArityMismatch {
                values: mapping.len(),
                attributes: target.arity(),
            });
        }
        let mut items = Vec::with_capacity(target.arity());
        for source in mapping {
            match source {
                Some(idx) => {
                    let item = self.items.get(*idx).ok_or(TypeError::IndexOutOfBounds {
                        index: *idx,
                        len: self.items.len(),
                    })?;
                    items.push(item.clone());
                }
                None => items.push(PatternItem::Wildcard),
            }
        }
        Ok(Pattern::assemble(target, items))
    }

    /// Attribute-wise conjunction of two patterns over the same schema:
    /// the result matches a tuple iff both inputs match it.  When both
    /// attributes are constrained and neither subsumes the other, the more
    /// restrictive combination is approximated by keeping `self`'s item
    /// (conservative over-approximation of the intersection is not acceptable
    /// for guards, so callers that need exactness should keep both patterns);
    /// returns `None` when the two patterns are provably disjoint.
    pub fn tighten(&self, other: &Pattern) -> Option<Pattern> {
        if self.disjoint_from(other) {
            return None;
        }
        let items = self
            .items
            .iter()
            .zip(&other.items)
            .map(|(a, b)| {
                if a.is_wildcard() {
                    b.clone()
                } else if b.is_wildcard() || a.subsumes(b) {
                    // keep the more restrictive of the two when provable
                    if b.is_wildcard() {
                        a.clone()
                    } else {
                        b.clone()
                    }
                } else {
                    // `b` subsumes `a`, or the two overlap without a provable
                    // order: keep `self`'s item, which is sound either way.
                    a.clone()
                }
            })
            .collect();
        Some(Pattern::assemble(self.schema.clone(), items))
    }
}

/// A pattern compiled down to its constrained `(attribute index, item)`
/// pairs: wildcards are dropped at compile time, so matching costs exactly
/// one [`PatternItem::matches`] per *constrained* attribute — O(1) for the
/// typical single-attribute feedback guard regardless of stream arity, and a
/// guaranteed-true constant for an all-wildcard pattern.
///
/// Compile once ([`Pattern::compile`]) where a pattern will be checked
/// against many tuples (guard registries, routing); the compiled form is
/// self-contained and `Send`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    arity: usize,
    constrained: Vec<(usize, PatternItem)>,
}

impl CompiledPattern {
    /// Arity of the schema the source pattern was defined over.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The constrained `(attribute index, item)` pairs, in attribute order.
    pub fn constrained(&self) -> &[(usize, PatternItem)] {
        &self.constrained
    }

    /// True when the source pattern was all wildcards (matches everything).
    pub fn is_unconstrained(&self) -> bool {
        self.constrained.is_empty()
    }

    /// True when this compiled pattern matches the tuple; equivalent to
    /// [`Pattern::matches`] on the source pattern.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.arity, "pattern/tuple arity mismatch");
        let values = tuple.values();
        self.constrained.iter().all(|(i, item)| values.get(*i).is_none_or(|v| item.matches(v)))
    }

    /// Classifies a whole batch against this pattern from per-column
    /// summaries alone — the batch-level twin of [`CompiledPattern::matches`].
    ///
    /// `summary_of` maps an attribute index to that column's summary, or
    /// `None` when no sound summary exists for it (e.g. some rows lack the
    /// attribute).  The pattern is a conjunction over its constrained items,
    /// so the verdicts combine as: any item [`SummaryMatch::None`] makes the
    /// whole pattern `None`; all items [`SummaryMatch::All`] (the vacuous
    /// case for an unconstrained pattern) make it `All`; anything else —
    /// including an unavailable summary — is [`SummaryMatch::Unknown`], and
    /// callers fall back to per-tuple matching.
    ///
    /// ```
    /// use dsms_punctuation::{Pattern, PatternItem, SummaryMatch};
    /// use dsms_types::{ColumnSummary, DataType, Schema, Value};
    ///
    /// let schema = Schema::shared(&[("segment", DataType::Int)]);
    /// let guard = Pattern::for_attributes(
    ///     schema,
    ///     &[("segment", PatternItem::Eq(Value::Int(7)))],
    /// )
    /// .unwrap()
    /// .compile();
    /// let segments = ColumnSummary::over_values([Value::Int(1), Value::Int(3)].iter());
    /// let verdict = guard.matches_summaries(|column| {
    ///     (column == 0).then(|| segments.clone())
    /// });
    /// assert_eq!(verdict, SummaryMatch::None, "no row can be segment 7");
    /// ```
    pub fn matches_summaries<F>(&self, mut summary_of: F) -> SummaryMatch
    where
        F: FnMut(usize) -> Option<ColumnSummary>,
    {
        let mut all = true;
        for (index, item) in &self.constrained {
            match summary_of(*index) {
                Some(summary) => match item.matches_summary(&summary) {
                    SummaryMatch::None => return SummaryMatch::None,
                    SummaryMatch::All => {}
                    SummaryMatch::Unknown => all = false,
                },
                // No sound summary for this column: this conjunct stays
                // undecided, but keep scanning — another conjunct may still
                // prove the whole pattern matches nothing.
                None => all = false,
            }
        }
        if all {
            SummaryMatch::All
        } else {
            SummaryMatch::Unknown
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Timestamp};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("segment", DataType::Int),
            ("timestamp", DataType::Timestamp),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(seg: i64, ts: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Int(seg), Value::Timestamp(Timestamp::from_secs(ts)), Value::Float(speed)],
        )
    }

    #[test]
    fn item_matching_relational_operators() {
        let v = Value::Int(50);
        assert!(PatternItem::Wildcard.matches(&v));
        assert!(PatternItem::Eq(Value::Int(50)).matches(&v));
        assert!(!PatternItem::Eq(Value::Int(51)).matches(&v));
        assert!(PatternItem::Le(Value::Int(50)).matches(&v));
        assert!(!PatternItem::Lt(Value::Int(50)).matches(&v));
        assert!(PatternItem::Ge(Value::Int(50)).matches(&v));
        assert!(!PatternItem::Gt(Value::Int(50)).matches(&v));
        assert!(PatternItem::Between(Value::Int(40), Value::Int(60)).matches(&v));
        assert!(!PatternItem::Between(Value::Int(51), Value::Int(60)).matches(&v));
        assert!(PatternItem::InSet(vec![Value::Int(1), Value::Int(50)]).matches(&v));
    }

    #[test]
    fn null_matches_only_wildcard() {
        assert!(PatternItem::Wildcard.matches(&Value::Null));
        assert!(!PatternItem::Eq(Value::Null).matches(&Value::Null));
        assert!(!PatternItem::Le(Value::Int(5)).matches(&Value::Null));
    }

    #[test]
    fn item_subsumption() {
        use PatternItem::*;
        assert!(Wildcard.subsumes(&Eq(Value::Int(3))));
        assert!(!Eq(Value::Int(3)).subsumes(&Wildcard));
        assert!(Le(Value::Int(10)).subsumes(&Le(Value::Int(5))));
        assert!(Le(Value::Int(10)).subsumes(&Lt(Value::Int(10))));
        assert!(!Lt(Value::Int(10)).subsumes(&Le(Value::Int(10))));
        assert!(Ge(Value::Int(5)).subsumes(&Eq(Value::Int(5))));
        assert!(
            Between(Value::Int(0), Value::Int(10)).subsumes(&Between(Value::Int(2), Value::Int(8)))
        );
        assert!(InSet(vec![Value::Int(1), Value::Int(2)]).subsumes(&Eq(Value::Int(2))));
        assert!(!InSet(vec![Value::Int(1)]).subsumes(&Eq(Value::Int(2))));
    }

    #[test]
    fn item_disjointness() {
        use PatternItem::*;
        assert!(Eq(Value::Int(1)).disjoint_from(&Eq(Value::Int(2))));
        assert!(!Eq(Value::Int(1)).disjoint_from(&Eq(Value::Int(1))));
        assert!(Lt(Value::Int(5)).disjoint_from(&Ge(Value::Int(5))));
        assert!(!Le(Value::Int(5)).disjoint_from(&Ge(Value::Int(5))));
        assert!(Between(Value::Int(0), Value::Int(4))
            .disjoint_from(&Between(Value::Int(5), Value::Int(9))));
        assert!(InSet(vec![Value::Int(1)]).disjoint_from(&InSet(vec![Value::Int(2)])));
        assert!(!Wildcard.disjoint_from(&Eq(Value::Int(1))));
    }

    #[test]
    fn pattern_matches_tuples() {
        // ¬[*, ≥50] style predicate: "speeds at or above 50"
        let p =
            Pattern::for_attributes(schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap();
        assert!(p.matches(&tuple(1, 10, 55.0)));
        assert!(!p.matches(&tuple(1, 10, 45.0)));
        assert_eq!(p.constrained_attributes(), vec![2]);
        assert!(!p.is_unconstrained());
        assert!(Pattern::all_wildcards(schema()).is_unconstrained());
    }

    #[test]
    fn pattern_for_unknown_attribute_errors() {
        assert!(Pattern::for_attributes(schema(), &[("volume", PatternItem::Wildcard)]).is_err());
    }

    #[test]
    fn pattern_subsumption_and_disjointness() {
        let before_10 = Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_secs(10))))],
        )
        .unwrap();
        let before_5 = Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_secs(5))))],
        )
        .unwrap();
        let after_20 = Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Ge(Value::Timestamp(Timestamp::from_secs(20))))],
        )
        .unwrap();
        assert!(before_10.subsumes(&before_5));
        assert!(!before_5.subsumes(&before_10));
        assert!(before_10.disjoint_from(&after_20));
        assert!(!before_10.disjoint_from(&before_5));
    }

    #[test]
    fn remap_projects_items_and_fills_wildcards() {
        // feedback over join output (segment, timestamp, speed) remapped onto an
        // input with schema (timestamp, segment): mapping gives for each target
        // attribute the source index.
        let target =
            Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)]);
        let p = Pattern::for_attributes(
            schema(),
            &[
                ("segment", PatternItem::Eq(Value::Int(3))),
                ("speed", PatternItem::Ge(Value::Float(50.0))),
            ],
        )
        .unwrap();
        let remapped = p.remap(target.clone(), &[Some(1), Some(0)]).unwrap();
        assert_eq!(remapped.item_for("segment").unwrap(), &PatternItem::Eq(Value::Int(3)));
        assert_eq!(remapped.item_for("timestamp").unwrap(), &PatternItem::Wildcard);
        // dropping an attribute (None) yields a wildcard
        let remapped2 = p.remap(target, &[None, Some(0)]).unwrap();
        assert!(remapped2.item_for("timestamp").unwrap().is_wildcard());
    }

    #[test]
    fn tighten_combines_constraints() {
        let seg3 =
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(3)))])
                .unwrap();
        let fast =
            Pattern::for_attributes(schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap();
        let both = seg3.tighten(&fast).unwrap();
        assert!(both.matches(&tuple(3, 1, 60.0)));
        assert!(!both.matches(&tuple(3, 1, 40.0)));
        assert!(!both.matches(&tuple(4, 1, 60.0)));

        let seg4 =
            Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(4)))])
                .unwrap();
        assert!(seg3.tighten(&seg4).is_none(), "disjoint patterns have no tightening");
    }

    #[test]
    fn summary_matching_is_exact_for_ranges() {
        use SummaryMatch::{All, None as NoneMatch, Unknown};
        // speeds span [40, 60], no nulls
        let speeds = ColumnSummary::over_values(
            [Value::Float(40.0), Value::Float(55.0), Value::Float(60.0)].iter(),
        );
        let cases: Vec<(PatternItem, SummaryMatch)> = vec![
            (PatternItem::Wildcard, All),
            (PatternItem::Eq(Value::Float(70.0)), NoneMatch),
            (PatternItem::Eq(Value::Float(55.0)), Unknown),
            (PatternItem::Lt(Value::Float(40.0)), NoneMatch),
            (PatternItem::Lt(Value::Float(61.0)), All),
            (PatternItem::Lt(Value::Float(50.0)), Unknown),
            (PatternItem::Le(Value::Float(39.0)), NoneMatch),
            (PatternItem::Le(Value::Float(60.0)), All),
            (PatternItem::Gt(Value::Float(60.0)), NoneMatch),
            (PatternItem::Gt(Value::Float(39.0)), All),
            (PatternItem::Ge(Value::Float(61.0)), NoneMatch),
            (PatternItem::Ge(Value::Float(40.0)), All),
            (PatternItem::Ge(Value::Float(50.0)), Unknown),
            (PatternItem::Between(Value::Float(61.0), Value::Float(99.0)), NoneMatch),
            (PatternItem::Between(Value::Float(40.0), Value::Float(60.0)), All),
            (PatternItem::Between(Value::Float(50.0), Value::Float(99.0)), Unknown),
            (PatternItem::InSet(vec![Value::Float(10.0), Value::Float(70.0)]), NoneMatch),
            (PatternItem::InSet(vec![Value::Float(55.0)]), Unknown),
        ];
        for (item, expected) in cases {
            assert_eq!(item.matches_summary(&speeds), expected, "{item}");
        }
        // A constant column decides Eq and InSet conclusively.
        let constant = ColumnSummary::over_values([Value::Int(7), Value::Int(7)].iter());
        assert_eq!(PatternItem::Eq(Value::Int(7)).matches_summary(&constant), All);
        assert_eq!(PatternItem::InSet(vec![Value::Int(7)]).matches_summary(&constant), All);
    }

    #[test]
    fn summary_matching_respects_nulls() {
        use SummaryMatch::{All, None as NoneMatch, Unknown};
        // One null: the non-null range would say "all match", but the null
        // row does not, so the verdict degrades to Unknown — never a wrong
        // All.  The None verdict is unaffected by nulls.
        let with_null =
            ColumnSummary::over_values([Value::Int(5), Value::Null, Value::Int(6)].iter());
        assert_eq!(PatternItem::Ge(Value::Int(0)).matches_summary(&with_null), Unknown);
        assert_eq!(PatternItem::Ge(Value::Int(10)).matches_summary(&with_null), NoneMatch);
        assert_eq!(PatternItem::Wildcard.matches_summary(&with_null), All);
        // All nulls: nothing matches a non-wildcard item.
        let nulls = ColumnSummary::over_values([Value::Null, Value::Null].iter());
        assert_eq!(PatternItem::Ge(Value::Int(0)).matches_summary(&nulls), NoneMatch);
        assert_eq!(PatternItem::Wildcard.matches_summary(&nulls), All);
        // Empty: no claim either way.
        assert_eq!(PatternItem::Ge(Value::Int(0)).matches_summary(&ColumnSummary::new()), Unknown);
    }

    #[test]
    fn compiled_summary_matching_combines_conjuncts() {
        use SummaryMatch::{All, None as NoneMatch, Unknown};
        let seg_and_speed = Pattern::for_attributes(
            schema(),
            &[
                ("segment", PatternItem::Eq(Value::Int(3))),
                ("speed", PatternItem::Ge(Value::Float(50.0))),
            ],
        )
        .unwrap()
        .compile();
        let segments = ColumnSummary::over_values([Value::Int(3), Value::Int(3)].iter());
        let fast = ColumnSummary::over_values([Value::Float(60.0), Value::Float(70.0)].iter());
        let slow = ColumnSummary::over_values([Value::Float(10.0), Value::Float(20.0)].iter());
        let mixed = ColumnSummary::over_values([Value::Float(10.0), Value::Float(70.0)].iter());
        let with = |speeds: &ColumnSummary| {
            let speeds = speeds.clone();
            let segments = segments.clone();
            seg_and_speed.matches_summaries(move |col| match col {
                0 => Some(segments.clone()),
                2 => Some(speeds.clone()),
                _ => None,
            })
        };
        assert_eq!(with(&fast), All);
        assert_eq!(with(&slow), NoneMatch, "speed conjunct matches nothing");
        assert_eq!(with(&mixed), Unknown);
        // An unavailable summary degrades All to Unknown but still lets a
        // conclusive None from another conjunct win.
        assert_eq!(seg_and_speed.matches_summaries(|_| None), Unknown);
        let slow2 = slow.clone();
        assert_eq!(
            seg_and_speed.matches_summaries(move |col| (col == 2).then(|| slow2.clone())),
            NoneMatch
        );
        // Unconstrained patterns match everything, summaries or not.
        assert_eq!(Pattern::all_wildcards(schema()).compile().matches_summaries(|_| None), All);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Pattern::for_attributes(
            schema(),
            &[
                ("segment", PatternItem::Eq(Value::Int(11))),
                ("speed", PatternItem::Ge(Value::Float(50.0))),
            ],
        )
        .unwrap();
        assert_eq!(p.to_string(), "[11, *, >=50]");
    }
}
