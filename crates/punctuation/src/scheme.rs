//! Punctuation schemes and supportable feedback.
//!
//! Section 4.4 of the paper observes that feedback is best supported when it
//! constrains *delimited* attributes — attributes that are covered by embedded
//! punctuation — because the embedded punctuation will eventually subsume the
//! feedback and allow operators to discard feedback-related guards and state.
//! Feedback on an undelimited attribute ("don't show bids of more than $1.00")
//! would leave guard state in the operators forever.
//!
//! A [`PunctuationScheme`] records, per attribute of a stream schema, how
//! embedded punctuation covers that attribute, and answers whether a given
//! feedback pattern is *supportable* under the scheme.

use crate::pattern::{Pattern, PatternItem};
use dsms_types::{SchemaRef, TypeResult};
use std::collections::BTreeMap;
use std::fmt;

/// How embedded punctuation covers a single attribute of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Delimitation {
    /// The attribute is never punctuated; feedback constraining it will leave
    /// state behind (unsupportable).
    None,
    /// The attribute is punctuated by monotonically advancing prefix
    /// punctuation (e.g. timestamps: `[≤ t, *]` with growing `t`).
    Progressive,
    /// The attribute is punctuated group-by-group (e.g. "all bids for auction
    /// #4 have been seen"), in no particular order.
    Grouped,
}

impl Delimitation {
    /// True when the attribute is covered by some form of embedded punctuation.
    pub fn is_delimited(self) -> bool {
        !matches!(self, Delimitation::None)
    }
}

/// A per-attribute description of how a stream is punctuated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PunctuationScheme {
    schema: SchemaRef,
    delimitation: BTreeMap<usize, Delimitation>,
}

impl PunctuationScheme {
    /// Creates a scheme in which no attribute is delimited.
    pub fn undelimited(schema: SchemaRef) -> Self {
        PunctuationScheme { schema, delimitation: BTreeMap::new() }
    }

    /// Creates a scheme from `(attribute, delimitation)` pairs; unlisted
    /// attributes are undelimited.
    pub fn new(schema: SchemaRef, entries: &[(&str, Delimitation)]) -> TypeResult<Self> {
        let mut delimitation = BTreeMap::new();
        for (name, d) in entries {
            let idx = schema.index_of(name)?;
            delimitation.insert(idx, *d);
        }
        Ok(PunctuationScheme { schema, delimitation })
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The delimitation of the attribute at `index`.
    pub fn delimitation(&self, index: usize) -> Delimitation {
        self.delimitation.get(&index).copied().unwrap_or(Delimitation::None)
    }

    /// The delimitation of the named attribute.
    pub fn delimitation_of(&self, name: &str) -> TypeResult<Delimitation> {
        Ok(self.delimitation(self.schema.index_of(name)?))
    }

    /// True when the named attribute is delimited.
    pub fn is_delimited(&self, name: &str) -> TypeResult<bool> {
        Ok(self.delimitation_of(name)?.is_delimited())
    }

    /// Marks an attribute as delimited in the given way, returning a new scheme.
    pub fn with(&self, name: &str, d: Delimitation) -> TypeResult<Self> {
        let idx = self.schema.index_of(name)?;
        let mut delimitation = self.delimitation.clone();
        delimitation.insert(idx, d);
        Ok(PunctuationScheme { schema: self.schema.clone(), delimitation })
    }

    /// Decides whether a feedback pattern is *supportable* under this scheme:
    /// every attribute the pattern constrains must be delimited, so that the
    /// guard state the feedback induces is guaranteed to be discardable once
    /// embedded punctuation catches up (paper Section 4.4).
    pub fn supports(&self, pattern: &Pattern) -> bool {
        pattern.constrained_attributes().iter().all(|&idx| self.delimitation(idx).is_delimited())
    }

    /// Returns the (names of the) constrained attributes of `pattern` that are
    /// *not* delimited — the reason a pattern is unsupportable, for
    /// diagnostics.
    pub fn unsupportable_attributes(&self, pattern: &Pattern) -> Vec<String> {
        pattern
            .constrained_attributes()
            .iter()
            .filter(|&&idx| !self.delimitation(idx).is_delimited())
            .filter_map(|&idx| self.schema.field(idx).ok().map(|f| f.name().to_string()))
            .collect()
    }

    /// Decides whether an arriving *embedded* punctuation releases (expires) a
    /// feedback guard described by `feedback`: the embedded punctuation must
    /// subsume the feedback pattern on every attribute the feedback
    /// constrains, i.e. every tuple the feedback describes has been declared
    /// complete, so the guard can never again suppress anything and may be
    /// dropped.
    pub fn releases(&self, embedded: &Pattern, feedback: &Pattern) -> bool {
        if embedded.schema() != feedback.schema() {
            return false;
        }
        feedback.constrained_attributes().iter().all(|&idx| {
            let e = embedded.item(idx).unwrap_or(&PatternItem::Wildcard);
            let f = feedback.item(idx).unwrap_or(&PatternItem::Wildcard);
            e.subsumes(f)
        })
    }
}

impl fmt::Display for PunctuationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, field)| format!("{}: {:?}", field.name(), self.delimitation(i)))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Timestamp, Value};

    fn bid_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("auction", DataType::Int),
            ("bidder", DataType::Int),
            ("amount", DataType::Float),
        ])
    }

    fn scheme() -> PunctuationScheme {
        PunctuationScheme::new(
            bid_schema(),
            &[("timestamp", Delimitation::Progressive), ("auction", Delimitation::Grouped)],
        )
        .unwrap()
    }

    #[test]
    fn delimitation_lookup() {
        let s = scheme();
        assert!(s.is_delimited("timestamp").unwrap());
        assert!(s.is_delimited("auction").unwrap());
        assert!(!s.is_delimited("amount").unwrap());
        assert!(s.is_delimited("volume").is_err());
        assert_eq!(s.delimitation_of("timestamp").unwrap(), Delimitation::Progressive);
    }

    #[test]
    fn supportable_feedback_on_delimited_attributes() {
        let s = scheme();
        // "Do not show bids prior to 1:00 pm" — timestamp is progressive: supportable.
        let before = Pattern::for_attributes(
            bid_schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_hours(13))))],
        )
        .unwrap();
        assert!(s.supports(&before));

        // "No results for bidder #2 in auction #4" — auction delimited, bidder not.
        let bidder_auction = Pattern::for_attributes(
            bid_schema(),
            &[
                ("auction", PatternItem::Eq(Value::Int(4))),
                ("bidder", PatternItem::Eq(Value::Int(2))),
            ],
        )
        .unwrap();
        assert!(!s.supports(&bidder_auction));
        assert_eq!(s.unsupportable_attributes(&bidder_auction), vec!["bidder".to_string()]);

        // "Don't show bids of more than $1.00" — amounts are never punctuated.
        let amount = Pattern::for_attributes(
            bid_schema(),
            &[("amount", PatternItem::Gt(Value::Float(1.0)))],
        )
        .unwrap();
        assert!(!s.supports(&amount));
    }

    #[test]
    fn with_adds_delimitation() {
        let s = scheme().with("bidder", Delimitation::Grouped).unwrap();
        let bidder =
            Pattern::for_attributes(bid_schema(), &[("bidder", PatternItem::Eq(Value::Int(2)))])
                .unwrap();
        assert!(s.supports(&bidder));
        assert!(!scheme().supports(&bidder));
    }

    #[test]
    fn release_requires_subsumption_on_constrained_attributes() {
        let s = scheme();
        let feedback = Pattern::for_attributes(
            bid_schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_hours(13))))],
        )
        .unwrap();
        let early_punct = Pattern::for_attributes(
            bid_schema(),
            &[("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_hours(12))))],
        )
        .unwrap();
        let late_punct = Pattern::for_attributes(
            bid_schema(),
            &[("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_hours(13))))],
        )
        .unwrap();
        assert!(!s.releases(&early_punct, &feedback), "punctuation has not caught up yet");
        assert!(s.releases(&late_punct, &feedback), "punctuation at 13:00 covers `< 13:00`");
    }

    #[test]
    fn unconstrained_feedback_is_trivially_supportable() {
        let s = PunctuationScheme::undelimited(bid_schema());
        assert!(s.supports(&Pattern::all_wildcards(bid_schema())));
    }
}
