//! Stream-progress tracking.
//!
//! Operators such as PACE and windowed aggregates need to know, per input,
//! how far the stream has progressed.  A [`ProgressTracker`] folds embedded
//! punctuation (and optionally observed data timestamps) into per-attribute
//! high-watermarks.  PACE in particular compares the high-watermark of the
//! timestamps *seen* against the timestamps of tuples *arriving* to decide
//! when divergence exceeds its tolerance and feedback should be issued
//! (paper Example 3 / Experiment 1).

use crate::punctuation::Punctuation;
use dsms_types::{StreamDuration, Timestamp, Tuple, TypeResult};
use std::fmt;

/// Tracks the progress of a single stream on one timestamp attribute.
#[derive(Debug, Clone)]
pub struct ProgressTracker {
    attribute: String,
    /// Highest timestamp asserted complete by embedded punctuation.
    punctuated_watermark: Option<Timestamp>,
    /// Highest timestamp observed in the data itself.
    observed_high: Option<Timestamp>,
    /// Number of punctuations folded in.
    punctuation_count: u64,
    /// Number of tuples observed.
    tuple_count: u64,
    /// Number of observed tuples that violated a previously seen punctuation
    /// (late tuples).
    late_tuples: u64,
}

impl ProgressTracker {
    /// Creates a tracker for the named timestamp attribute.
    pub fn new(attribute: impl Into<String>) -> Self {
        ProgressTracker {
            attribute: attribute.into(),
            punctuated_watermark: None,
            observed_high: None,
            punctuation_count: 0,
            tuple_count: 0,
            late_tuples: 0,
        }
    }

    /// The attribute being tracked.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Folds an observed tuple into the tracker.  Returns `true` when the
    /// tuple is *late*, i.e. it matches a punctuation already seen (its
    /// timestamp is at or below the punctuated watermark).
    pub fn observe_tuple(&mut self, tuple: &Tuple) -> TypeResult<bool> {
        let ts = tuple.timestamp(&self.attribute)?;
        self.tuple_count += 1;
        self.observed_high = Some(match self.observed_high {
            Some(h) => h.max(ts),
            None => ts,
        });
        let late = self.punctuated_watermark.map(|w| ts <= w).unwrap_or(false);
        if late {
            self.late_tuples += 1;
        }
        Ok(late)
    }

    /// Folds an embedded punctuation into the tracker.  Non-progress
    /// punctuations (that do not carry a watermark for this attribute) are
    /// counted but do not advance the watermark.
    pub fn observe_punctuation(&mut self, punctuation: &Punctuation) {
        self.punctuation_count += 1;
        if let Some(w) = punctuation.watermark_for(&self.attribute) {
            self.punctuated_watermark = Some(match self.punctuated_watermark {
                Some(cur) => cur.max(w),
                None => w,
            });
        }
    }

    /// Directly advances the watermark (used by operators that derive progress
    /// from sources other than punctuation, e.g. PACE's high-watermark of
    /// observed output timestamps).
    pub fn advance_watermark(&mut self, to: Timestamp) {
        self.punctuated_watermark = Some(match self.punctuated_watermark {
            Some(cur) => cur.max(to),
            None => to,
        });
    }

    /// Highest timestamp asserted complete by punctuation, if any.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.punctuated_watermark
    }

    /// Highest timestamp observed in the data, if any.
    pub fn observed_high(&self) -> Option<Timestamp> {
        self.observed_high
    }

    /// The *divergence* between observed data and another tracker's observed
    /// data: how far this stream's high timestamp lags behind the other's.
    /// Positive means `self` is behind `other`.
    pub fn lag_behind(&self, other: &ProgressTracker) -> Option<StreamDuration> {
        match (self.observed_high, other.observed_high) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    /// Number of punctuations folded in.
    pub fn punctuation_count(&self) -> u64 {
        self.punctuation_count
    }

    /// Number of tuples observed.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Number of observed tuples that were late with respect to punctuation.
    pub fn late_tuples(&self) -> u64 {
        self.late_tuples
    }
}

impl fmt::Display for ProgressTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "progress({}: watermark={:?}, observed={:?}, tuples={}, late={})",
            self.attribute,
            self.punctuated_watermark,
            self.observed_high,
            self.tuple_count,
            self.late_tuples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, SchemaRef, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Float)])
    }

    fn tuple(ts: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Float(1.0)])
    }

    #[test]
    fn watermark_advances_monotonically() {
        let mut tr = ProgressTracker::new("timestamp");
        assert_eq!(tr.watermark(), None);
        tr.observe_punctuation(
            &Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(100)).unwrap(),
        );
        tr.observe_punctuation(
            &Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(50)).unwrap(),
        );
        assert_eq!(tr.watermark(), Some(Timestamp::from_secs(100)), "watermark never regresses");
        assert_eq!(tr.punctuation_count(), 2);
    }

    #[test]
    fn late_tuples_are_flagged_and_counted() {
        let mut tr = ProgressTracker::new("timestamp");
        assert!(!tr.observe_tuple(&tuple(10)).unwrap());
        tr.observe_punctuation(
            &Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(20)).unwrap(),
        );
        assert!(tr.observe_tuple(&tuple(15)).unwrap(), "15 <= watermark 20 is late");
        assert!(!tr.observe_tuple(&tuple(25)).unwrap());
        assert_eq!(tr.late_tuples(), 1);
        assert_eq!(tr.tuple_count(), 3);
        assert_eq!(tr.observed_high(), Some(Timestamp::from_secs(25)));
    }

    #[test]
    fn lag_between_two_streams() {
        let mut clean = ProgressTracker::new("timestamp");
        let mut imputed = ProgressTracker::new("timestamp");
        assert_eq!(imputed.lag_behind(&clean), None);
        clean.observe_tuple(&tuple(120)).unwrap();
        imputed.observe_tuple(&tuple(40)).unwrap();
        assert_eq!(imputed.lag_behind(&clean), Some(StreamDuration::from_secs(80)));
        assert_eq!(clean.lag_behind(&imputed), Some(StreamDuration::from_secs(-80)));
    }

    #[test]
    fn manual_watermark_advance() {
        let mut tr = ProgressTracker::new("timestamp");
        tr.advance_watermark(Timestamp::from_secs(33));
        tr.advance_watermark(Timestamp::from_secs(22));
        assert_eq!(tr.watermark(), Some(Timestamp::from_secs(33)));
    }

    #[test]
    fn group_punctuation_does_not_advance_time_watermark() {
        let mut tr = ProgressTracker::new("timestamp");
        tr.observe_punctuation(
            &Punctuation::group_complete(schema(), "v", Value::Float(1.0)).unwrap(),
        );
        assert_eq!(tr.watermark(), None);
        assert_eq!(tr.punctuation_count(), 1);
    }
}
