//! Embedded punctuation.
//!
//! An *embedded* punctuation flows in the data stream (interleaved with
//! tuples) and asserts that no further tuples matching its pattern will
//! appear.  Operators use embedded punctuation to produce results for
//! completed windows and to purge state; the engine also uses a punctuation
//! arriving at a queue to flush a partially filled page (NiagaraST,
//! Section 5).

use crate::pattern::{Pattern, PatternItem};
use dsms_types::{SchemaRef, Timestamp, Tuple, TypeResult, Value};
use std::fmt;

/// A control verb for elastic repartitioning of a shuffle→replicas→merge
/// stage, carried piggyback on a punctuation (the consistent-cut marker) or
/// on a feedback punctuation (the upstream control channel).
///
/// The protocol is a four-step handshake per `epoch` (one resize):
///
/// 1. [`Resize`](StageDirective::Resize) — the merge decides a new partition
///    count and sends it upstream as feedback.
/// 2. [`Migrate`](StageDirective::Migrate) — the shuffle embeds a migration
///    marker on every replica stream; each replica exports its keyed state at
///    that boundary.
/// 3. [`Ack`](StageDirective::Ack) — each replica acknowledges the cut
///    upstream after exporting.
/// 4. [`Commit`](StageDirective::Commit) — once every replica has
///    acknowledged, the shuffle switches routing and embeds a commit marker;
///    replicas reinstall their share of the exported state behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageDirective {
    /// Merge → shuffle (feedback): change the active partition count.
    Resize {
        /// Monotone resize-round identifier.
        epoch: u64,
        /// Requested number of active partitions.
        partitions: usize,
    },
    /// Shuffle → replicas (embedded marker): export keyed state at this cut.
    Migrate {
        /// Resize round this cut belongs to.
        epoch: u64,
        /// Partition count the stage is migrating toward.
        partitions: usize,
    },
    /// Replica → shuffle (feedback): state exported, the cut is clean here.
    Ack {
        /// Resize round being acknowledged.
        epoch: u64,
        /// Index of the acknowledging replica.
        replica: usize,
    },
    /// Shuffle → replicas (embedded marker): routing switched; reinstall
    /// state for the new width.  A commit carrying the *old* width cancels
    /// the resize (used when the stream ends mid-handshake).
    Commit {
        /// Resize round being committed.
        epoch: u64,
        /// Partition count now in effect.
        partitions: usize,
    },
}

/// An embedded punctuation: "no more tuples matching this pattern".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Punctuation {
    pattern: Pattern,
    directive: Option<StageDirective>,
}

impl Punctuation {
    /// Wraps a pattern as an embedded punctuation.
    pub fn new(pattern: Pattern) -> Self {
        Punctuation { pattern, directive: None }
    }

    /// An all-wildcard punctuation carrying an elastic-stage directive —
    /// asserts nothing about the stream (the empty subset is complete) and
    /// exists purely as an in-band consistent-cut marker.
    pub fn directive(schema: SchemaRef, directive: StageDirective) -> Self {
        Punctuation { pattern: Pattern::all_wildcards(schema), directive: Some(directive) }
    }

    /// The elastic-stage directive riding on this punctuation, if any.
    pub fn stage_directive(&self) -> Option<StageDirective> {
        self.directive
    }

    /// The canonical stream-progress punctuation: "all tuples with
    /// `attribute ≤ watermark` have been seen" — the form used by the OOP
    /// architecture to communicate progress on a timestamp attribute.
    pub fn progress(schema: SchemaRef, attribute: &str, watermark: Timestamp) -> TypeResult<Self> {
        let pattern = Pattern::for_attributes(
            schema,
            &[(attribute, PatternItem::Le(Value::Timestamp(watermark)))],
        )?;
        Ok(Punctuation { pattern, directive: None })
    }

    /// A punctuation asserting that a whole group (e.g. a window id or a
    /// segment) is complete: `attribute = value`.
    pub fn group_complete(schema: SchemaRef, attribute: &str, value: Value) -> TypeResult<Self> {
        let pattern = Pattern::for_attributes(schema, &[(attribute, PatternItem::Eq(value))])?;
        Ok(Punctuation { pattern, directive: None })
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The schema this punctuation is defined over.
    pub fn schema(&self) -> &SchemaRef {
        self.pattern.schema()
    }

    /// True when the punctuation's pattern matches the tuple — i.e. the tuple
    /// belongs to the subset declared complete.  A tuple arriving *after* a
    /// punctuation that matches it is late/out-of-contract.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.pattern.matches(tuple)
    }

    /// True when this punctuation implies `other` (every subset declared
    /// complete by `other` is also declared complete by this one).
    pub fn implies(&self, other: &Punctuation) -> bool {
        self.pattern.subsumes(&other.pattern)
    }

    /// If this punctuation is a progress punctuation on `attribute`
    /// (`attribute ≤ t` or `< t`), returns the watermark `t`.
    pub fn watermark_for(&self, attribute: &str) -> Option<Timestamp> {
        let item = self.pattern.item_for(attribute).ok()?;
        match item {
            PatternItem::Le(Value::Timestamp(t)) | PatternItem::Lt(Value::Timestamp(t)) => Some(*t),
            _ => None,
        }
    }

    /// If this punctuation declares a single group complete on `attribute`
    /// (`attribute = v`), returns the group value.
    pub fn completed_group(&self, attribute: &str) -> Option<Value> {
        match self.pattern.item_for(attribute).ok()? {
            PatternItem::Eq(v) => Some(v.clone()),
            _ => None,
        }
    }
}

impl fmt::Display for Punctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)
    }
}

impl From<Pattern> for Punctuation {
    fn from(pattern: Pattern) -> Self {
        Punctuation::new(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(ts: i64, seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
        )
    }

    #[test]
    fn progress_punctuation_matches_past_tuples() {
        let p = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(100)).unwrap();
        assert!(p.matches(&tuple(99, 1, 10.0)));
        assert!(p.matches(&tuple(100, 1, 10.0)));
        assert!(!p.matches(&tuple(101, 1, 10.0)));
        assert_eq!(p.watermark_for("timestamp"), Some(Timestamp::from_secs(100)));
        assert_eq!(p.watermark_for("segment"), None);
    }

    #[test]
    fn group_complete_punctuation() {
        let p = Punctuation::group_complete(schema(), "segment", Value::Int(4)).unwrap();
        assert!(p.matches(&tuple(1, 4, 10.0)));
        assert!(!p.matches(&tuple(1, 5, 10.0)));
        assert_eq!(p.completed_group("segment"), Some(Value::Int(4)));
        assert_eq!(p.completed_group("timestamp"), None);
    }

    #[test]
    fn implication_follows_subsumption() {
        let later =
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(200)).unwrap();
        let earlier =
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(100)).unwrap();
        assert!(later.implies(&earlier));
        assert!(!earlier.implies(&later));
    }

    #[test]
    fn display_uses_bracket_notation() {
        let p = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(60)).unwrap();
        assert_eq!(p.to_string(), "[<=00:01:00, *, *]");
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        assert!(Punctuation::progress(schema(), "volume", Timestamp::EPOCH).is_err());
        assert!(Punctuation::group_complete(schema(), "volume", Value::Int(1)).is_err());
    }
}
