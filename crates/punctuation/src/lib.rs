//! # dsms-punctuation
//!
//! Embedded punctuation, pattern algebra, punctuation schemes and
//! stream-progress tracking.
//!
//! Punctuation (Tucker et al.) is the substrate the paper's feedback
//! mechanism is built on: a punctuation is a tuple-shaped *pattern* that
//! asserts "no further tuples matching this pattern will appear in the
//! stream".  The out-of-order-processing (OOP) architecture of NiagaraST uses
//! punctuation on timestamp attributes to communicate stream progress, unblock
//! windowed aggregates and purge operator state.
//!
//! This crate provides:
//!
//! * [`PatternItem`] and [`Pattern`] — per-attribute match specifications
//!   (wildcard, equality, ranges, sets) and whole-tuple patterns.
//! * [`Punctuation`] — an *embedded* punctuation: a pattern that flows with
//!   the data stream and describes a completed subset.
//! * [`scheme::PunctuationScheme`] — which attributes of a stream are
//!   *delimited* (covered by embedded punctuation), which bounds the feedback
//!   that is *supportable* without unbounded state (paper Section 4.4).
//! * [`progress::ProgressTracker`] — per-attribute high-watermarks derived
//!   from embedded punctuation, used by PACE and by feedback expiration.
//!
//! Feedback punctuation itself (assumed `¬`, desired `?`, demanded `!`) lives
//! in the `dsms-feedback` crate and reuses [`Pattern`] for its predicates.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pattern;
pub mod progress;
pub mod punctuation;
pub mod scheme;

pub use pattern::{CompiledPattern, Pattern, PatternItem, SummaryMatch};
pub use progress::ProgressTracker;
pub use punctuation::{Punctuation, StageDirective};
pub use scheme::PunctuationScheme;
