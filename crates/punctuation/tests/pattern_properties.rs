//! Property-based tests for the pattern algebra.
//!
//! The feedback framework's correctness arguments (Definitions 1 and 2 of the
//! paper) lean on three semantic facts about patterns:
//!
//! 1. subsumption is sound: if `a.subsumes(b)` then every value matched by `b`
//!    is matched by `a`;
//! 2. disjointness is sound: if `a.disjoint_from(b)` then no value is matched
//!    by both; and
//! 3. remapping onto an input schema never *narrows* the described set — a
//!    wildcard is used wherever no source attribute exists.
//!
//! These are exactly the properties exercised here with randomly generated
//! items, values and patterns.

use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
use proptest::prelude::*;

/// The definitional whole-tuple match: every item checked against its
/// attribute, wildcards included.  `Pattern::matches` and the compiled form
/// skip wildcard positions; this reference implementation is what they must
/// agree with.
fn naive_matches(pattern: &Pattern, tuple: &Tuple) -> bool {
    pattern.items().iter().zip(tuple.values()).all(|(item, value)| item.matches(value))
}

fn int_value() -> impl Strategy<Value = Value> {
    (-50i64..50).prop_map(Value::Int)
}

fn pattern_item() -> impl Strategy<Value = PatternItem> {
    prop_oneof![
        Just(PatternItem::Wildcard),
        int_value().prop_map(PatternItem::Eq),
        int_value().prop_map(PatternItem::Lt),
        int_value().prop_map(PatternItem::Le),
        int_value().prop_map(PatternItem::Gt),
        int_value().prop_map(PatternItem::Ge),
        (-50i64..50, 0i64..30)
            .prop_map(|(lo, w)| PatternItem::Between(Value::Int(lo), Value::Int(lo + w))),
        proptest::collection::vec(int_value(), 1..4).prop_map(PatternItem::InSet),
    ]
}

fn schema3() -> SchemaRef {
    Schema::shared(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Int)])
}

fn tuple3(a: i64, b: i64, c: i64) -> Tuple {
    Tuple::new(schema3(), vec![Value::Int(a), Value::Int(b), Value::Int(c)])
}

proptest! {
    /// Soundness of per-item subsumption: a.subsumes(b) ⇒ (b matches v ⇒ a matches v).
    #[test]
    fn item_subsumption_is_sound(a in pattern_item(), b in pattern_item(), v in -60i64..60) {
        let value = Value::Int(v);
        if a.subsumes(&b) && b.matches(&value) {
            prop_assert!(a.matches(&value),
                "{a:?} subsumes {b:?} but does not match {value:?} that {b:?} matches");
        }
    }

    /// Soundness of per-item disjointness: a.disjoint_from(b) ⇒ no common match.
    #[test]
    fn item_disjointness_is_sound(a in pattern_item(), b in pattern_item(), v in -60i64..60) {
        let value = Value::Int(v);
        if a.disjoint_from(&b) {
            prop_assert!(!(a.matches(&value) && b.matches(&value)),
                "{a:?} and {b:?} are claimed disjoint but both match {value:?}");
        }
    }

    /// Disjointness is symmetric.
    #[test]
    fn item_disjointness_is_symmetric(a in pattern_item(), b in pattern_item()) {
        prop_assert_eq!(a.disjoint_from(&b), b.disjoint_from(&a));
    }

    /// Subsumption is reflexive for every generated item.
    #[test]
    fn item_subsumption_is_reflexive(a in pattern_item()) {
        prop_assert!(a.subsumes(&a));
    }

    /// Wildcard subsumes everything and is disjoint from nothing.
    #[test]
    fn wildcard_is_top(a in pattern_item()) {
        prop_assert!(PatternItem::Wildcard.subsumes(&a));
        prop_assert!(!PatternItem::Wildcard.disjoint_from(&a));
    }

    /// Pattern-level subsumption soundness over random 3-attribute tuples.
    #[test]
    fn pattern_subsumption_is_sound(
        items_a in proptest::collection::vec(pattern_item(), 3),
        items_b in proptest::collection::vec(pattern_item(), 3),
        a in -60i64..60, b in -60i64..60, c in -60i64..60,
    ) {
        let pa = Pattern::new(schema3(), items_a);
        let pb = Pattern::new(schema3(), items_b);
        let t = tuple3(a, b, c);
        if pa.subsumes(&pb) && pb.matches(&t) {
            prop_assert!(pa.matches(&t));
        }
        if pa.disjoint_from(&pb) {
            prop_assert!(!(pa.matches(&t) && pb.matches(&t)));
        }
    }

    /// Tightening is a lower bound: a tuple matched by the tightened pattern is
    /// matched by both inputs whenever tightening succeeds with provable items.
    #[test]
    fn tighten_never_matches_outside_either_input(
        items_a in proptest::collection::vec(pattern_item(), 3),
        a in -60i64..60, b in -60i64..60, c in -60i64..60,
    ) {
        // Combine a constrained pattern with the all-wildcard pattern: the
        // result must match exactly what the constrained pattern matches.
        let pa = Pattern::new(schema3(), items_a);
        let top = Pattern::all_wildcards(schema3());
        let t = tuple3(a, b, c);
        if let Some(tight) = pa.tighten(&top) {
            prop_assert_eq!(tight.matches(&t), pa.matches(&t));
        }
    }

    /// The wildcard-skipping `Pattern::matches` and the precompiled
    /// `CompiledPattern::matches` agree with the naive full-arity scan on
    /// random patterns and tuples — including `Null` attribute values, which
    /// match only the wildcard.
    #[test]
    fn compiled_and_naive_matching_agree(
        items in proptest::collection::vec(pattern_item(), 3),
        values in proptest::collection::vec(
            prop_oneof![(-60i64..60).prop_map(Value::Int), Just(Value::Null)], 3),
    ) {
        let pattern = Pattern::new(schema3(), items);
        let compiled = pattern.compile();
        let tuple = Tuple::new(schema3(), values);
        let reference = naive_matches(&pattern, &tuple);
        prop_assert_eq!(pattern.matches(&tuple), reference,
            "Pattern::matches diverged from the naive scan on {} vs {}", pattern, tuple);
        prop_assert_eq!(compiled.matches(&tuple), reference,
            "CompiledPattern::matches diverged from the naive scan on {} vs {}", pattern, tuple);
        prop_assert_eq!(compiled.is_unconstrained(), pattern.is_unconstrained());
        prop_assert_eq!(compiled.arity(), 3usize);
    }

    /// Remapping with an identity mapping preserves matching; remapping that
    /// drops attributes only widens the matched set.
    #[test]
    fn remap_widens_or_preserves(
        items in proptest::collection::vec(pattern_item(), 3),
        a in -60i64..60, b in -60i64..60, c in -60i64..60,
    ) {
        let p = Pattern::new(schema3(), items);
        let t = tuple3(a, b, c);
        let identity = p.remap(schema3(), &[Some(0), Some(1), Some(2)]).unwrap();
        prop_assert_eq!(identity.matches(&t), p.matches(&t));

        // Dropping attribute 1 (it becomes a wildcard) can only widen the set.
        let widened = p.remap(schema3(), &[Some(0), None, Some(2)]).unwrap();
        if p.matches(&t) {
            prop_assert!(widened.matches(&t));
        }
    }
}

/// The property above at its two extremes: an all-wildcard pattern compiles
/// to a guaranteed match, an all-constrained pattern checks every attribute.
#[test]
fn compiled_matching_extremes() {
    let all_wild = Pattern::all_wildcards(schema3());
    let compiled = all_wild.compile();
    assert!(compiled.is_unconstrained());
    assert!(compiled.constrained().is_empty());
    for t in [tuple3(0, 0, 0), tuple3(-60, 59, 7)] {
        assert!(compiled.matches(&t) && all_wild.matches(&t));
    }
    assert!(compiled.matches(&Tuple::new(schema3(), vec![Value::Null; 3])));

    let all_constrained = Pattern::new(
        schema3(),
        vec![
            PatternItem::Eq(Value::Int(1)),
            PatternItem::Ge(Value::Int(2)),
            PatternItem::Lt(Value::Int(3)),
        ],
    );
    let compiled = all_constrained.compile();
    assert_eq!(compiled.constrained().len(), 3);
    for (t, expected) in
        [(tuple3(1, 2, 2), true), (tuple3(1, 2, 3), false), (tuple3(0, 2, 2), false)]
    {
        assert_eq!(compiled.matches(&t), expected, "{t}");
        assert_eq!(all_constrained.matches(&t), expected, "{t}");
        assert_eq!(naive_matches(&all_constrained, &t), expected, "{t}");
    }
}

proptest! {
    /// Progress punctuation ordering: a later watermark implies the earlier one.
    #[test]
    fn progress_watermarks_are_ordered(t1 in 0i64..10_000, t2 in 0i64..10_000) {
        use dsms_punctuation::Punctuation;
        let s = Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)]);
        let p1 = Punctuation::progress(s.clone(), "timestamp", Timestamp::from_secs(t1)).unwrap();
        let p2 = Punctuation::progress(s, "timestamp", Timestamp::from_secs(t2)).unwrap();
        if t1 >= t2 {
            prop_assert!(p1.implies(&p2));
        }
        if t1 <= t2 {
            prop_assert!(p2.implies(&p1));
        }
    }
}
