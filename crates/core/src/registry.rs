//! Per-operator bookkeeping of active feedback.
//!
//! Keeping track of enacted feedback entails state accumulation — not of tuple
//! data, but of predicates (paper Section 4.4).  A [`FeedbackRegistry`] owns
//! that predicate state for one operator:
//!
//! * **assumed** feedback becomes an input/output *guard*: tuples matching any
//!   active assumed pattern are suppressed;
//! * **desired** feedback becomes a *priority* set: tuples matching any active
//!   desired pattern should be processed/produced first;
//! * **demanded** feedback is recorded for the operator to act on once (e.g.
//!   emit partial results) and then retired.
//!
//! The registry also implements *expiration*: when embedded punctuation
//! arrives that subsumes a guard on every attribute the guard constrains, the
//! guard can never suppress anything again and is dropped — this is exactly
//! why the paper restricts supportable feedback to delimited attributes.
//! Registration can optionally be *strict*, rejecting feedback that the
//! stream's punctuation scheme cannot support.

use crate::error::{FeedbackError, FeedbackResult};
use crate::intent::{FeedbackIntent, FeedbackPunctuation};
use crate::stats::FeedbackStats;
use dsms_punctuation::{CompiledPattern, Punctuation, PunctuationScheme, SummaryMatch};
use dsms_types::{ColumnSummary, Tuple};

/// The decision a guard makes about one tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardDecision {
    /// The tuple is not described by any active feedback: process normally.
    Pass,
    /// The tuple is described by an active *assumed* guard: suppress it.
    Suppress,
    /// The tuple is described by an active *desired* pattern: process it with
    /// priority.
    Prioritize,
}

/// The decision guards make about a whole batch of tuples, derived from
/// per-column summaries alone (see
/// [`decide_batch`](FeedbackRegistry::decide_batch)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchGuardDecision {
    /// No assumed guard can match any tuple of the batch and no desired
    /// pattern can either: every tuple would get [`GuardDecision::Pass`], so
    /// the per-tuple checks can be skipped wholesale.
    PassAll,
    /// An active assumed guard provably matches every tuple of the batch:
    /// every tuple would get [`GuardDecision::Suppress`].
    SuppressAll,
    /// The summaries are inconclusive (or a desired pattern may match some
    /// tuples): fall back to [`decide`](FeedbackRegistry::decide) per tuple.
    Mixed,
}

/// Registry of active feedback for a single operator.
///
/// Guard patterns are compiled once, at registration time, into their
/// constrained `(attribute, item)` pairs ([`CompiledPattern`]); the per-tuple
/// [`decide`](FeedbackRegistry::decide) check then touches only the
/// attributes each guard actually constrains — an all-wildcard guard is a
/// constant, and a registry with no active guards short-circuits to
/// [`GuardDecision::Pass`] without looking at the tuple at all.  This is what
/// makes it affordable to run the guard check on *every* tuple at a source
/// or a shuffle, which is the paper's whole premise.
#[derive(Debug, Clone)]
pub struct FeedbackRegistry {
    operator: String,
    scheme: Option<PunctuationScheme>,
    strict: bool,
    assumed: Vec<FeedbackPunctuation>,
    /// Compiled guard index, parallel to `assumed`.
    assumed_compiled: Vec<CompiledPattern>,
    desired: Vec<FeedbackPunctuation>,
    /// Compiled priority index, parallel to `desired`.
    desired_compiled: Vec<CompiledPattern>,
    demanded: Vec<FeedbackPunctuation>,
    stats: FeedbackStats,
}

impl FeedbackRegistry {
    /// Creates a registry for the named operator with no supportability
    /// checking.
    pub fn new(operator: impl Into<String>) -> Self {
        FeedbackRegistry {
            operator: operator.into(),
            scheme: None,
            strict: false,
            assumed: Vec::new(),
            assumed_compiled: Vec::new(),
            desired: Vec::new(),
            desired_compiled: Vec::new(),
            demanded: Vec::new(),
            stats: FeedbackStats::default(),
        }
    }

    /// Creates a registry scoped to one of the named operator's output ports.
    ///
    /// A fan-out operator serving several independent consumers (a shared
    /// source fanned out to N standing queries) keeps one registry *per
    /// output* so that a guard asserted by one consumer suppresses tuples on
    /// that consumer's branch only — per-query feedback isolation.  The
    /// registry's owner name carries the scope (`"fanout#2"`), so relayed
    /// feedback lineage and statistics stay attributable to the port.
    pub fn scoped(operator: impl Into<String>, port: usize) -> Self {
        Self::new(format!("{}#{port}", operator.into()))
    }

    /// Attaches the punctuation scheme of the stream the guards apply to.
    /// With `strict` set, [`register`](Self::register) rejects feedback whose
    /// pattern constrains undelimited attributes (it would accumulate state
    /// forever); without it, such feedback is accepted but counted in the
    /// statistics as unexpirable.
    pub fn with_scheme(mut self, scheme: PunctuationScheme, strict: bool) -> Self {
        self.scheme = Some(scheme);
        self.strict = strict;
        self
    }

    /// The operator this registry belongs to.
    pub fn operator(&self) -> &str {
        &self.operator
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &FeedbackStats {
        &self.stats
    }

    /// Mutable access to the statistics (operators add their own counters,
    /// e.g. suppressed output tuples).
    pub fn stats_mut(&mut self) -> &mut FeedbackStats {
        &mut self.stats
    }

    /// Number of active assumed guards.
    pub fn active_assumed(&self) -> usize {
        self.assumed.len()
    }

    /// Number of active desired patterns.
    pub fn active_desired(&self) -> usize {
        self.desired.len()
    }

    /// Number of pending demanded requests.
    pub fn pending_demanded(&self) -> usize {
        self.demanded.len()
    }

    /// The active assumed guards (most recent last).
    pub fn assumed_guards(&self) -> &[FeedbackPunctuation] {
        &self.assumed
    }

    /// The active desired patterns (most recent last).
    pub fn desired_patterns(&self) -> &[FeedbackPunctuation] {
        &self.desired
    }

    /// Registers newly received feedback.  Duplicate or subsumed assumed
    /// guards are coalesced: a new guard that is already implied by an active
    /// one is dropped, and active guards implied by the new one are replaced.
    pub fn register(&mut self, feedback: FeedbackPunctuation) -> FeedbackResult<()> {
        if let (Some(scheme), true) = (&self.scheme, self.strict) {
            if !scheme.supports(feedback.pattern()) {
                self.stats.rejected_unsupportable += 1;
                return Err(FeedbackError::Unsupportable {
                    attributes: scheme.unsupportable_attributes(feedback.pattern()),
                });
            }
        }
        if let Some(scheme) = &self.scheme {
            if !scheme.supports(feedback.pattern()) {
                self.stats.unexpirable_guards += 1;
            }
        }
        self.stats.received.record(feedback.intent());
        match feedback.intent() {
            FeedbackIntent::Assumed => {
                if self.assumed.iter().any(|g| g.pattern().subsumes(feedback.pattern())) {
                    self.stats.coalesced += 1;
                    return Ok(());
                }
                let before = self.assumed.len();
                let fresh = feedback.pattern();
                retain_in_sync(&mut self.assumed, &mut self.assumed_compiled, |g| {
                    !fresh.subsumes(g.pattern())
                });
                self.stats.coalesced += (before - self.assumed.len()) as u64;
                self.assumed_compiled.push(feedback.pattern().compile());
                self.assumed.push(feedback);
            }
            FeedbackIntent::Desired => {
                if self.desired.iter().any(|g| g.pattern() == feedback.pattern()) {
                    self.stats.coalesced += 1;
                    return Ok(());
                }
                self.desired_compiled.push(feedback.pattern().compile());
                self.desired.push(feedback);
            }
            FeedbackIntent::Demanded => self.demanded.push(feedback),
        }
        Ok(())
    }

    /// The paper's model forbids retracting enacted feedback (Section 4.4);
    /// this method exists to make that explicit at the API level.
    pub fn retract(&mut self, _feedback_id: u64) -> FeedbackResult<()> {
        Err(FeedbackError::RetractionUnsupported)
    }

    /// Decides what to do with an input (or output) tuple under the active
    /// guards.  Assumed guards win over desired priorities: a tuple that is
    /// both assumed-away and desired is suppressed.  Runs against the
    /// compiled guard index: no guards means no work, and each guard checks
    /// only its constrained attributes.
    pub fn decide(&mut self, tuple: &Tuple) -> GuardDecision {
        if self.assumed_compiled.is_empty() && self.desired_compiled.is_empty() {
            return GuardDecision::Pass;
        }
        if self.assumed_compiled.iter().any(|g| g.matches(tuple)) {
            self.stats.tuples_suppressed += 1;
            return GuardDecision::Suppress;
        }
        if self.desired_compiled.iter().any(|g| g.matches(tuple)) {
            self.stats.tuples_prioritized += 1;
            return GuardDecision::Prioritize;
        }
        GuardDecision::Pass
    }

    /// Batch-level twin of [`decide`](Self::decide): classifies a whole batch
    /// of `rows` tuples against the active guards using per-column summaries,
    /// without touching any tuple.
    ///
    /// `summary_of` maps an attribute index to that column's
    /// [`ColumnSummary`] (or `None` when no sound summary exists); it is
    /// consulted at most once per distinct column across all guards — the
    /// common case of many guards over one attribute computes one summary.
    ///
    /// Statistics stay exactly per-tuple-equivalent: a
    /// [`BatchGuardDecision::SuppressAll`] counts all `rows` as suppressed (as
    /// `rows` individual [`decide`](Self::decide) calls would), a
    /// [`BatchGuardDecision::PassAll`] counts nothing, and a
    /// [`BatchGuardDecision::Mixed`] counts nothing here because the caller
    /// re-runs `decide` per tuple.  Conclusive and fallback batches are
    /// tallied in [`FeedbackStats::batches_summary_conclusive`] and
    /// [`FeedbackStats::batches_summary_fallback`]; an empty registry
    /// short-circuits to `PassAll` without counting a batch, mirroring the
    /// per-tuple short-circuit.
    ///
    /// Desired patterns are deliberately conservative: prioritization is
    /// per-tuple by nature, so any possibly-matching desired pattern forces
    /// [`BatchGuardDecision::Mixed`]; only a provably-never-matching desired
    /// set allows `PassAll`.
    pub fn decide_batch<F>(&mut self, rows: usize, mut summary_of: F) -> BatchGuardDecision
    where
        F: FnMut(usize) -> Option<ColumnSummary>,
    {
        if rows == 0 || (self.assumed_compiled.is_empty() && self.desired_compiled.is_empty()) {
            return BatchGuardDecision::PassAll;
        }
        // Summaries are cached per column for the duration of the call:
        // several guards typically constrain the same attribute.
        let mut cache: Vec<(usize, Option<ColumnSummary>)> = Vec::new();
        let mut lookup = |column: usize| -> Option<ColumnSummary> {
            if let Some((_, summary)) = cache.iter().find(|(c, _)| *c == column) {
                return summary.clone();
            }
            let summary = summary_of(column);
            cache.push((column, summary.clone()));
            summary
        };
        let mut suppress_all = false;
        let mut every_assumed_none = true;
        for guard in &self.assumed_compiled {
            match guard.matches_summaries(&mut lookup) {
                SummaryMatch::All => {
                    suppress_all = true;
                    break;
                }
                SummaryMatch::None => {}
                SummaryMatch::Unknown => every_assumed_none = false,
            }
        }
        if suppress_all {
            self.stats.tuples_suppressed += rows as u64;
            self.stats.batches_summary_conclusive += 1;
            return BatchGuardDecision::SuppressAll;
        }
        if every_assumed_none {
            let every_desired_none = self
                .desired_compiled
                .iter()
                .all(|p| p.matches_summaries(&mut lookup) == SummaryMatch::None);
            if every_desired_none {
                self.stats.batches_summary_conclusive += 1;
                return BatchGuardDecision::PassAll;
            }
        }
        self.stats.batches_summary_fallback += 1;
        BatchGuardDecision::Mixed
    }

    /// Like [`decide`](Self::decide) but without mutating statistics; useful
    /// for look-ahead checks.
    pub fn peek(&self, tuple: &Tuple) -> GuardDecision {
        if self.assumed_compiled.iter().any(|g| g.matches(tuple)) {
            GuardDecision::Suppress
        } else if self.desired_compiled.iter().any(|g| g.matches(tuple)) {
            GuardDecision::Prioritize
        } else {
            GuardDecision::Pass
        }
    }

    /// Takes the pending demanded feedback, leaving the registry's demanded
    /// list empty; the operator acts on each exactly once (e.g. emitting
    /// partial results).
    pub fn take_demanded(&mut self) -> Vec<FeedbackPunctuation> {
        std::mem::take(&mut self.demanded)
    }

    /// Folds an embedded punctuation into the registry, dropping every guard
    /// that the punctuation releases (the punctuation subsumes the guard on
    /// every attribute the guard constrains).  Returns the number of guards
    /// expired.
    pub fn expire_with(&mut self, punctuation: &Punctuation) -> usize {
        let Some(scheme) = &self.scheme else {
            return 0;
        };
        let before = self.assumed.len() + self.desired.len();
        let pattern = punctuation.pattern();
        retain_in_sync(&mut self.assumed, &mut self.assumed_compiled, |g| {
            !scheme.releases(pattern, g.pattern())
        });
        retain_in_sync(&mut self.desired, &mut self.desired_compiled, |g| {
            !scheme.releases(pattern, g.pattern())
        });
        let expired = before - (self.assumed.len() + self.desired.len());
        self.stats.guards_expired += expired as u64;
        expired
    }

    /// Total number of predicates currently held — the state-accumulation
    /// figure the paper worries about in Section 4.4.
    pub fn predicate_state_size(&self) -> usize {
        self.assumed.len() + self.desired.len() + self.demanded.len()
    }
}

/// Order-preserving retain over the parallel (feedback, compiled) vectors,
/// keeping entries for which `keep` returns true.  The compiled index must
/// stay aligned with its source feedback or guard decisions would consult
/// the wrong pattern.
fn retain_in_sync<F>(
    feedback: &mut Vec<FeedbackPunctuation>,
    compiled: &mut Vec<CompiledPattern>,
    mut keep: F,
) where
    F: FnMut(&FeedbackPunctuation) -> bool,
{
    debug_assert_eq!(feedback.len(), compiled.len());
    let mut kept = 0;
    for i in 0..feedback.len() {
        if keep(&feedback[i]) {
            feedback.swap(kept, i);
            compiled.swap(kept, i);
            kept += 1;
        }
    }
    feedback.truncate(kept);
    compiled.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::scheme::Delimitation;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn scheme() -> PunctuationScheme {
        PunctuationScheme::new(
            schema(),
            &[("timestamp", Delimitation::Progressive), ("segment", Delimitation::Grouped)],
        )
        .unwrap()
    }

    fn tuple(ts: i64, seg: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(speed)],
        )
    }

    fn before(ts: i64) -> Pattern {
        Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(ts))))],
        )
        .unwrap()
    }

    fn segment(seg: i64) -> Pattern {
        Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))]).unwrap()
    }

    #[test]
    fn assumed_guard_suppresses_matching_tuples() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        assert_eq!(reg.decide(&tuple(50, 1, 10.0)), GuardDecision::Suppress);
        assert_eq!(reg.decide(&tuple(150, 1, 10.0)), GuardDecision::Pass);
        assert_eq!(reg.stats().tuples_suppressed, 1);
        assert_eq!(reg.active_assumed(), 1);
    }

    #[test]
    fn desired_patterns_prioritize_but_assumed_wins() {
        let mut reg = FeedbackRegistry::new("CLEAN");
        reg.register(FeedbackPunctuation::desired(segment(3), "IMPATIENT")).unwrap();
        assert_eq!(reg.decide(&tuple(10, 3, 1.0)), GuardDecision::Prioritize);
        reg.register(FeedbackPunctuation::assumed(segment(3), "JOIN")).unwrap();
        assert_eq!(reg.decide(&tuple(10, 3, 1.0)), GuardDecision::Suppress);
        assert_eq!(reg.peek(&tuple(10, 4, 1.0)), GuardDecision::Pass);
    }

    #[test]
    fn subsumed_guards_are_coalesced() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        // A narrower guard is already implied.
        reg.register(FeedbackPunctuation::assumed(before(50), "PACE")).unwrap();
        assert_eq!(reg.active_assumed(), 1);
        // A wider guard replaces the existing one.
        reg.register(FeedbackPunctuation::assumed(before(200), "PACE")).unwrap();
        assert_eq!(reg.active_assumed(), 1);
        assert_eq!(reg.stats().coalesced, 2);
        assert_eq!(reg.peek(&tuple(150, 1, 1.0)), GuardDecision::Suppress);
    }

    #[test]
    fn strict_registration_rejects_unsupportable_feedback() {
        let mut reg = FeedbackRegistry::new("AVG").with_scheme(scheme(), true);
        // speed is not a delimited attribute.
        let f = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap(),
            "JOIN",
        );
        let err = reg.register(f).unwrap_err();
        assert!(
            matches!(err, FeedbackError::Unsupportable { ref attributes } if attributes == &["speed"])
        );
        assert_eq!(reg.stats().rejected_unsupportable, 1);
        assert_eq!(reg.active_assumed(), 0);
    }

    #[test]
    fn lenient_registration_counts_unexpirable_guards() {
        let mut reg = FeedbackRegistry::new("AVG").with_scheme(scheme(), false);
        let f = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap(),
            "JOIN",
        );
        reg.register(f).unwrap();
        assert_eq!(reg.active_assumed(), 1);
        assert_eq!(reg.stats().unexpirable_guards, 1);
    }

    #[test]
    fn guards_expire_when_punctuation_catches_up() {
        let mut reg = FeedbackRegistry::new("IMPUTE").with_scheme(scheme(), true);
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        assert_eq!(reg.predicate_state_size(), 1);

        let early = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(60)).unwrap();
        assert_eq!(reg.expire_with(&early), 0, "punctuation has not caught up");

        let late = Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(100)).unwrap();
        assert_eq!(reg.expire_with(&late), 1);
        assert_eq!(reg.predicate_state_size(), 0);
        assert_eq!(reg.stats().guards_expired, 1);
        // Once expired, previously suppressed tuples pass again (they are now
        // late with respect to embedded punctuation and will be handled by the
        // operator's own lateness logic instead).
        assert_eq!(reg.peek(&tuple(50, 1, 1.0)), GuardDecision::Pass);
    }

    #[test]
    fn demanded_feedback_is_taken_once() {
        let mut reg = FeedbackRegistry::new("AVG");
        reg.register(FeedbackPunctuation::demanded(segment(2), "client")).unwrap();
        assert_eq!(reg.pending_demanded(), 1);
        let taken = reg.take_demanded();
        assert_eq!(taken.len(), 1);
        assert_eq!(reg.pending_demanded(), 0);
        assert!(reg.take_demanded().is_empty());
    }

    #[test]
    fn retraction_is_rejected() {
        let mut reg = FeedbackRegistry::new("JOIN");
        let f = FeedbackPunctuation::assumed(segment(1), "x");
        let id = f.id();
        reg.register(f).unwrap();
        assert_eq!(reg.retract(id), Err(FeedbackError::RetractionUnsupported));
        assert_eq!(reg.active_assumed(), 1);
    }

    #[test]
    fn duplicate_desired_patterns_coalesce() {
        let mut reg = FeedbackRegistry::new("CLEAN");
        reg.register(FeedbackPunctuation::desired(segment(3), "a")).unwrap();
        reg.register(FeedbackPunctuation::desired(segment(3), "b")).unwrap();
        assert_eq!(reg.active_desired(), 1);
        assert_eq!(reg.stats().coalesced, 1);
    }

    /// Summary lookup over a concrete batch of tuples, as a page would offer.
    fn summaries_of(rows: &[Tuple]) -> impl FnMut(usize) -> Option<ColumnSummary> + '_ {
        move |column| ColumnSummary::over_column(rows, column)
    }

    #[test]
    fn batch_decision_without_guards_short_circuits_without_stats() {
        let mut reg = FeedbackRegistry::new("AVG");
        assert_eq!(reg.decide_batch(64, |_| None), BatchGuardDecision::PassAll);
        assert_eq!(reg.stats().batches_summary_conclusive, 0);
        assert_eq!(reg.stats().batches_summary_fallback, 0);
    }

    #[test]
    fn batch_decision_suppresses_wholesale_when_a_guard_covers_the_batch() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        let rows: Vec<Tuple> = (0..8).map(|i| tuple(10 + i, 1, 40.0)).collect();
        assert_eq!(
            reg.decide_batch(rows.len(), summaries_of(&rows)),
            BatchGuardDecision::SuppressAll
        );
        assert_eq!(reg.stats().tuples_suppressed, 8, "counts as 8 per-tuple suppressions");
        assert_eq!(reg.stats().batches_summary_conclusive, 1);
        assert_eq!(reg.stats().batches_summary_fallback, 0);
    }

    #[test]
    fn batch_decision_passes_wholesale_when_no_guard_can_match() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        reg.register(FeedbackPunctuation::assumed(segment(9), "JOIN")).unwrap();
        let rows: Vec<Tuple> = (0..8).map(|i| tuple(200 + i, 1, 40.0)).collect();
        assert_eq!(reg.decide_batch(rows.len(), summaries_of(&rows)), BatchGuardDecision::PassAll);
        assert_eq!(reg.stats().tuples_suppressed, 0);
        assert_eq!(reg.stats().batches_summary_conclusive, 1);
    }

    #[test]
    fn batch_decision_falls_back_when_summaries_are_inconclusive() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        // Timestamps straddle the guard boundary: some rows match, some don't.
        let rows: Vec<Tuple> = (0..8).map(|i| tuple(96 + i, 1, 40.0)).collect();
        assert_eq!(reg.decide_batch(rows.len(), summaries_of(&rows)), BatchGuardDecision::Mixed);
        assert_eq!(reg.stats().tuples_suppressed, 0, "fallback leaves tuple stats to decide()");
        assert_eq!(reg.stats().batches_summary_fallback, 1);
        // Per-tuple fallback then reaches the same verdicts decide() always did.
        let suppressed = rows.iter().filter(|t| reg.decide(t) == GuardDecision::Suppress).count();
        assert_eq!(suppressed, 4);
    }

    #[test]
    fn batch_decision_is_conservative_about_desired_patterns() {
        let mut reg = FeedbackRegistry::new("CLEAN");
        reg.register(FeedbackPunctuation::desired(segment(3), "IMPATIENT")).unwrap();
        // The batch contains segment 3: prioritization is per-tuple, so the
        // batch cannot pass wholesale.
        let hit: Vec<Tuple> = vec![tuple(10, 3, 1.0), tuple(11, 4, 1.0)];
        assert_eq!(reg.decide_batch(hit.len(), summaries_of(&hit)), BatchGuardDecision::Mixed);
        // A batch provably outside every desired pattern passes wholesale.
        let miss: Vec<Tuple> = vec![tuple(10, 7, 1.0), tuple(11, 8, 1.0)];
        assert_eq!(reg.decide_batch(miss.len(), summaries_of(&miss)), BatchGuardDecision::PassAll);
        assert_eq!(reg.stats().batches_summary_conclusive, 1);
        assert_eq!(reg.stats().batches_summary_fallback, 1);
    }

    #[test]
    fn batch_decision_with_unavailable_summaries_falls_back() {
        let mut reg = FeedbackRegistry::new("IMPUTE");
        reg.register(FeedbackPunctuation::assumed(before(100), "PACE")).unwrap();
        assert_eq!(reg.decide_batch(8, |_| None), BatchGuardDecision::Mixed);
        assert_eq!(reg.stats().batches_summary_fallback, 1);
    }
}
