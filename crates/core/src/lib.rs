//! # dsms-feedback
//!
//! The paper's primary contribution: **feedback punctuation** — punctuation
//! that flows *against* the stream direction, carrying a predicate (which
//! subset of tuples the feedback describes) and an *intent* (what the issuer
//! wants done about that subset).
//!
//! | Intent | Notation | Meaning |
//! |---|---|---|
//! | [`FeedbackIntent::Assumed`]  | `¬[p]` | the issuer will proceed as if the subset will never arrive; antecedents may avoid producing it |
//! | [`FeedbackIntent::Desired`]  | `?[p]` | the issuer wants the subset as soon as possible; antecedents may prioritize it |
//! | [`FeedbackIntent::Demanded`] | `![p]` | the issuer needs the subset *now*, accepting partial/approximate results |
//!
//! The crate is organized around the concepts of Sections 3 and 4 of the paper:
//!
//! * [`intent`] — [`FeedbackIntent`] and [`FeedbackPunctuation`] themselves.
//! * [`roles`] — the producer / exploiter / relayer roles operators may play.
//! * [`correctness`] — Definition 1 (*correct exploitation*) and Definition 2
//!   (*safe propagation*) as executable checks over recorded streams, used by
//!   tests and by a debug validation mode.
//! * [`mapping`] — output→input schema mappings and the safe-propagation
//!   rewrite of feedback patterns (including the cases where no safe
//!   propagation exists).
//! * [`characterization`] — the action menu (guard input, guard output, purge
//!   state, propagate) and per-operator characterizations reproducing Table 1
//!   (COUNT) and Table 2 (JOIN) plus the MAX / SUM / AVG / SELECT discussion.
//! * [`registry`] — per-operator bookkeeping of active feedback (guards),
//!   including expiration driven by embedded punctuation on delimited
//!   attributes (Section 4.4).
//! * [`merge`] — [`FeedbackMerge`], the cross-partition lattice combinator:
//!   when an operator is replicated N ways behind a hash partitioner, a
//!   feedback punctuation crosses the partition point toward the source only
//!   once **every** replica has asserted it (with a threshold meet for
//!   disorder-bound cutoffs).
//! * [`policy`] — the three feedback sources of Section 3.3: explicit
//!   (declared policies such as PACE's disorder bound), adaptive (operators
//!   discovering opportunities, e.g. THRIFTY JOIN), and event-driven
//!   (external events such as a user zooming a speed map).
//! * [`stats`] — counters describing how much work feedback saved.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod characterization;
pub mod correctness;
pub mod error;
pub mod intent;
pub mod mapping;
pub mod merge;
pub mod policy;
pub mod registry;
pub mod roles;
pub mod spec;
pub mod stats;

pub use characterization::{
    characterize, characterize_aggregate, characterize_duplicate, characterize_join,
    characterize_select, AggregateSpec, Characterization, ExploitAction, JoinSpec, Monotonicity,
    OperatorKind, PropagationRule,
};
pub use correctness::{
    check_correct_exploitation, check_safe_propagation, subset, ExploitationReport,
};
pub use error::{FeedbackError, FeedbackResult};
pub use intent::{FeedbackIntent, FeedbackPunctuation};
pub use mapping::{AttributeMapping, PropagationOutcome};
pub use merge::FeedbackMerge;
pub use policy::{AdaptivePolicy, EventDrivenPolicy, ExplicitPolicy, FeedbackSource};
pub use registry::{BatchGuardDecision, FeedbackRegistry, GuardDecision};
pub use roles::{FeedbackExploiter, FeedbackProducer, FeedbackRelayer, FeedbackRoles};
pub use spec::{FeedbackSpec, FeedbackTrigger};
pub use stats::FeedbackStats;
