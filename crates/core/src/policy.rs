//! Feedback *sources* (paper Section 3.3): explicit, adaptive, event-driven.
//!
//! A policy decides *when* an operator should issue feedback and *what subset*
//! the feedback should describe.  Three families are provided, matching the
//! paper's taxonomy:
//!
//! * [`ExplicitPolicy`] — declared with the query, e.g. PACE's
//!   `WITH PACE ON MAX(stream1.time, stream2.time) 1 MINUTE` disorder bound.
//! * [`AdaptivePolicy`] — discovered by the operator from its own state, e.g.
//!   THRIFTY JOIN noticing from punctuation that a window on the probe side is
//!   empty, or IMPATIENT JOIN requesting subsets it can already join.
//! * [`EventDrivenPolicy`] — triggered by external events, e.g. the user
//!   zooming the speed map so that only some segments are visible.

use crate::intent::FeedbackPunctuation;
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{SchemaRef, StreamDuration, Timestamp, TypeResult, Value};
use std::collections::BTreeSet;

/// Which of the paper's three source families produced a piece of feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedbackSource {
    /// Declared with the query (policy enforcement).
    Explicit,
    /// Discovered by an operator from its own stream/state.
    Adaptive,
    /// Triggered by an external/application event.
    EventDriven,
}

/// An explicit disorder-bound policy, as used by PACE (Example 3 /
/// Experiment 1): when the union's two inputs diverge by more than
/// `tolerance`, tuples older than `high_watermark − tolerance` are being
/// ignored, so antecedents should stop producing them.
#[derive(Debug, Clone)]
pub struct ExplicitPolicy {
    /// The timestamp attribute the bound applies to.
    pub attribute: String,
    /// Maximum tolerated divergence between the inputs.
    pub tolerance: StreamDuration,
}

impl ExplicitPolicy {
    /// Creates a disorder-bound policy.
    pub fn disorder_bound(attribute: impl Into<String>, tolerance: StreamDuration) -> Self {
        ExplicitPolicy { attribute: attribute.into(), tolerance }
    }

    /// The cutoff below which tuples are too late, given the current
    /// high-watermark of observed timestamps.
    pub fn cutoff(&self, high_watermark: Timestamp) -> Timestamp {
        high_watermark.saturating_sub(self.tolerance)
    }

    /// True when a tuple timestamped `candidate` violates the policy relative
    /// to the current high-watermark.
    pub fn violated(&self, high_watermark: Timestamp, candidate: Timestamp) -> bool {
        candidate < self.cutoff(high_watermark)
    }

    /// Builds the assumed feedback describing the too-late subset
    /// (`attribute < cutoff`) over the antecedent stream's schema.
    pub fn feedback(
        &self,
        schema: SchemaRef,
        high_watermark: Timestamp,
        issuer: &str,
    ) -> TypeResult<FeedbackPunctuation> {
        let cutoff = self.cutoff(high_watermark);
        let pattern = Pattern::for_attributes(
            schema,
            &[(self.attribute.as_str(), PatternItem::Lt(Value::Timestamp(cutoff)))],
        )?;
        Ok(FeedbackPunctuation::assumed(pattern, issuer))
    }
}

/// An adaptive policy: a join discovering from punctuation that a window is
/// empty on one input, so the matching window on the other input is useless
/// (THRIFTY JOIN), or discovering which subsets it could join right now
/// (IMPATIENT JOIN).
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// The window/group attribute of the *other* input's schema the discovery
    /// is expressed over (e.g. the window id or the `(period, segment)` pair).
    pub attribute: String,
}

impl AdaptivePolicy {
    /// Creates an adaptive policy keyed by the named attribute.
    pub fn on_attribute(attribute: impl Into<String>) -> Self {
        AdaptivePolicy { attribute: attribute.into() }
    }

    /// THRIFTY JOIN: window `window_id` is known to be empty on the probe
    /// input, so tuples of that window on the other input are useless.
    pub fn empty_window_feedback(
        &self,
        schema: SchemaRef,
        window_id: i64,
        issuer: &str,
    ) -> TypeResult<FeedbackPunctuation> {
        let pattern = Pattern::for_attributes(
            schema,
            &[(self.attribute.as_str(), PatternItem::Eq(Value::Int(window_id)))],
        )?;
        Ok(FeedbackPunctuation::assumed(pattern, issuer))
    }

    /// IMPATIENT JOIN: the issuer already holds build-side data for the listed
    /// key values and would like matching probe tuples as soon as possible.
    pub fn desired_keys_feedback(
        &self,
        schema: SchemaRef,
        keys: &[Value],
        issuer: &str,
    ) -> TypeResult<FeedbackPunctuation> {
        let pattern = Pattern::for_attributes(
            schema,
            &[(self.attribute.as_str(), PatternItem::InSet(keys.to_vec()))],
        )?;
        Ok(FeedbackPunctuation::desired(pattern, issuer))
    }
}

/// An event-driven policy: the speed-map viewport (Experiment 2).  The segment
/// universe is known; when the user zooms so that only `visible` segments are
/// shown, tuples for every other segment can be assumed away until the next
/// viewport change.
#[derive(Debug, Clone)]
pub struct EventDrivenPolicy {
    /// The segment attribute of the stream's schema.
    pub attribute: String,
    /// All segment ids that exist.
    pub universe: BTreeSet<i64>,
}

impl EventDrivenPolicy {
    /// Creates a viewport policy over the given segment universe.
    pub fn viewport(attribute: impl Into<String>, universe: impl IntoIterator<Item = i64>) -> Self {
        EventDrivenPolicy { attribute: attribute.into(), universe: universe.into_iter().collect() }
    }

    /// The segments that are *not* visible — the subset to assume away.
    pub fn hidden(&self, visible: &BTreeSet<i64>) -> Vec<i64> {
        self.universe.iter().copied().filter(|s| !visible.contains(s)).collect()
    }

    /// Builds the assumed feedback describing tuples for segments outside the
    /// visible set.  Returns `None` when everything is visible (no feedback
    /// needed).
    pub fn feedback(
        &self,
        schema: SchemaRef,
        visible: &BTreeSet<i64>,
        issuer: &str,
    ) -> TypeResult<Option<FeedbackPunctuation>> {
        let hidden = self.hidden(visible);
        if hidden.is_empty() {
            return Ok(None);
        }
        let pattern = Pattern::for_attributes(
            schema,
            &[(
                self.attribute.as_str(),
                PatternItem::InSet(hidden.into_iter().map(Value::Int).collect()),
            )],
        )?;
        Ok(Some(FeedbackPunctuation::assumed(pattern, issuer)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::FeedbackIntent;
    use dsms_types::{DataType, Schema, Tuple};

    fn sensor_schema() -> SchemaRef {
        Schema::shared(&[
            ("timestamp", DataType::Timestamp),
            ("segment", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(ts: i64, seg: i64) -> Tuple {
        Tuple::new(
            sensor_schema(),
            vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(30.0)],
        )
    }

    #[test]
    fn disorder_bound_detects_violations_and_builds_feedback() {
        let policy = ExplicitPolicy::disorder_bound("timestamp", StreamDuration::from_minutes(1));
        let hw = Timestamp::from_secs(600);
        assert_eq!(policy.cutoff(hw), Timestamp::from_secs(540));
        assert!(policy.violated(hw, Timestamp::from_secs(500)));
        assert!(!policy.violated(hw, Timestamp::from_secs(560)));

        let f = policy.feedback(sensor_schema(), hw, "PACE").unwrap();
        assert_eq!(f.intent(), FeedbackIntent::Assumed);
        assert!(f.describes(&tuple(500, 1)));
        assert!(!f.describes(&tuple(560, 1)));
    }

    #[test]
    fn cutoff_saturates_near_epoch() {
        let policy = ExplicitPolicy::disorder_bound("timestamp", StreamDuration::from_hours(1));
        assert_eq!(policy.cutoff(Timestamp::MIN), Timestamp::MIN);
    }

    #[test]
    fn thrifty_join_empty_window_feedback() {
        let policy = AdaptivePolicy::on_attribute("segment");
        let f = policy.empty_window_feedback(sensor_schema(), 4, "THRIFTY-JOIN").unwrap();
        assert_eq!(f.intent(), FeedbackIntent::Assumed);
        assert!(f.describes(&tuple(0, 4)));
        assert!(!f.describes(&tuple(0, 5)));
    }

    #[test]
    fn impatient_join_desired_keys_feedback() {
        let policy = AdaptivePolicy::on_attribute("segment");
        let f = policy
            .desired_keys_feedback(
                sensor_schema(),
                &[Value::Int(3), Value::Int(7)],
                "IMPATIENT-JOIN",
            )
            .unwrap();
        assert_eq!(f.intent(), FeedbackIntent::Desired);
        assert!(f.describes(&tuple(0, 3)));
        assert!(f.describes(&tuple(0, 7)));
        assert!(!f.describes(&tuple(0, 4)));
    }

    #[test]
    fn viewport_policy_assumes_away_hidden_segments() {
        let policy = EventDrivenPolicy::viewport("segment", 0..9);
        let visible: BTreeSet<i64> = [2, 3].into_iter().collect();
        assert_eq!(policy.hidden(&visible).len(), 7);

        let f = policy.feedback(sensor_schema(), &visible, "MAP").unwrap().unwrap();
        assert!(f.describes(&tuple(0, 5)));
        assert!(!f.describes(&tuple(0, 2)));

        let all: BTreeSet<i64> = (0..9).collect();
        assert!(policy.feedback(sensor_schema(), &all, "MAP").unwrap().is_none());
    }

    #[test]
    fn policies_reject_unknown_attributes() {
        let policy = ExplicitPolicy::disorder_bound("arrival", StreamDuration::from_secs(1));
        assert!(policy.feedback(sensor_schema(), Timestamp::EPOCH, "PACE").is_err());
        let adaptive = AdaptivePolicy::on_attribute("window");
        assert!(adaptive.empty_window_feedback(sensor_schema(), 1, "x").is_err());
    }
}
