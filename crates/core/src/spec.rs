//! Composition-time feedback declarations.
//!
//! The paper treats feedback punctuation as a *plan-level contract*: a
//! consumer declares, ahead of execution, which subset of the stream it will
//! assume away (`¬`), would like early (`?`), or needs immediately (`!`).
//! [`FeedbackSpec`] is that contract as a value — an intent, a pattern, and a
//! *trigger* saying when the message fires — so a plan builder can attach the
//! subscription to an edge at composition time and reject impossible
//! subscriptions (wrong schema, no feedback port upstream) before anything
//! runs.

use crate::intent::{FeedbackIntent, FeedbackPunctuation};
use dsms_punctuation::Pattern;
use dsms_types::SchemaRef;
use std::fmt;

/// When a declared feedback subscription fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackTrigger {
    /// Fire once the subscriber has observed this many tuples on the
    /// subscribed edge (0 = as soon as anything flows).
    AfterTuples(u64),
    /// Fire when the subscriber's inputs flush (end of stream).
    AtFlush,
}

impl fmt::Display for FeedbackTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackTrigger::AfterTuples(n) => write!(f, "after {n} tuples"),
            FeedbackTrigger::AtFlush => write!(f, "at flush"),
        }
    }
}

/// A declared feedback subscription: intent + pattern + trigger.
///
/// Build one with [`FeedbackSpec::assumed`] / [`desired`](FeedbackSpec::desired)
/// / [`demanded`](FeedbackSpec::demanded), refine it fluently, and hand it to a
/// plan builder (`Stream::with_feedback` in `dsms-engine`), which lowers it
/// into a scheduled [`FeedbackPunctuation`] on the subscribed edge.
///
/// # Examples
///
/// ```
/// use dsms_feedback::{FeedbackIntent, FeedbackSpec, FeedbackTrigger};
/// use dsms_punctuation::{Pattern, PatternItem};
/// use dsms_types::{DataType, Schema, Value};
///
/// let schema = Schema::shared(&[("segment", DataType::Int)]);
/// let pattern =
///     Pattern::for_attributes(schema, &[("segment", PatternItem::Eq(Value::Int(2)))]).unwrap();
/// let spec = FeedbackSpec::assumed(pattern).after_tuples(50).from_issuer("map-display");
/// assert_eq!(spec.intent(), FeedbackIntent::Assumed);
/// assert_eq!(spec.trigger(), FeedbackTrigger::AfterTuples(50));
/// let punctuation = spec.to_punctuation("fallback");
/// assert_eq!(punctuation.issuer(), "map-display");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackSpec {
    intent: FeedbackIntent,
    pattern: Pattern,
    trigger: FeedbackTrigger,
    issuer: Option<String>,
}

impl FeedbackSpec {
    /// Creates a spec with the given intent, firing as soon as data flows.
    pub fn new(intent: FeedbackIntent, pattern: Pattern) -> Self {
        FeedbackSpec { intent, pattern, trigger: FeedbackTrigger::AfterTuples(0), issuer: None }
    }

    /// An *assumed* (`¬[p]`) subscription: the consumer proceeds as if the
    /// subset will never arrive.
    pub fn assumed(pattern: Pattern) -> Self {
        Self::new(FeedbackIntent::Assumed, pattern)
    }

    /// A *desired* (`?[p]`) subscription: the consumer wants the subset early.
    pub fn desired(pattern: Pattern) -> Self {
        Self::new(FeedbackIntent::Desired, pattern)
    }

    /// A *demanded* (`![p]`) subscription: the consumer needs the subset now.
    pub fn demanded(pattern: Pattern) -> Self {
        Self::new(FeedbackIntent::Demanded, pattern)
    }

    /// Fires once the subscriber has seen `n` tuples on the subscribed edge.
    pub fn after_tuples(mut self, n: u64) -> Self {
        self.trigger = FeedbackTrigger::AfterTuples(n);
        self
    }

    /// Fires when the subscriber flushes (end of stream).
    pub fn at_flush(mut self) -> Self {
        self.trigger = FeedbackTrigger::AtFlush;
        self
    }

    /// Overrides the issuer name stamped on the lowered punctuation (defaults
    /// to the subscribing operator's name).
    pub fn from_issuer(mut self, issuer: impl Into<String>) -> Self {
        self.issuer = Some(issuer.into());
        self
    }

    /// The intent.
    pub fn intent(&self) -> FeedbackIntent {
        self.intent
    }

    /// The pattern describing the subset of interest.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The schema the pattern (and therefore the subscribed edge) is over.
    pub fn schema(&self) -> &SchemaRef {
        self.pattern.schema()
    }

    /// The trigger.
    pub fn trigger(&self) -> FeedbackTrigger {
        self.trigger
    }

    /// The explicit issuer override, if any.
    pub fn issuer(&self) -> Option<&str> {
        self.issuer.as_deref()
    }

    /// Lowers the spec into a concrete feedback punctuation, stamped with the
    /// explicit issuer or `default_issuer`.
    pub fn to_punctuation(&self, default_issuer: &str) -> FeedbackPunctuation {
        let issuer = self.issuer.as_deref().unwrap_or(default_issuer);
        FeedbackPunctuation::new(self.intent, self.pattern.clone(), issuer)
    }
}

impl fmt::Display for FeedbackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} {}", self.intent.prefix(), self.pattern, self.trigger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, Value};

    fn pattern() -> Pattern {
        let schema = Schema::shared(&[("segment", DataType::Int)]);
        Pattern::for_attributes(schema, &[("segment", PatternItem::Eq(Value::Int(3)))]).unwrap()
    }

    #[test]
    fn constructors_set_intent_and_default_trigger() {
        assert_eq!(FeedbackSpec::assumed(pattern()).intent(), FeedbackIntent::Assumed);
        assert_eq!(FeedbackSpec::desired(pattern()).intent(), FeedbackIntent::Desired);
        assert_eq!(FeedbackSpec::demanded(pattern()).intent(), FeedbackIntent::Demanded);
        assert_eq!(
            FeedbackSpec::assumed(pattern()).trigger(),
            FeedbackTrigger::AfterTuples(0),
            "default: fire as soon as anything flows"
        );
    }

    #[test]
    fn fluent_refinements_apply() {
        let spec = FeedbackSpec::desired(pattern()).after_tuples(7).from_issuer("display");
        assert_eq!(spec.trigger(), FeedbackTrigger::AfterTuples(7));
        assert_eq!(spec.issuer(), Some("display"));
        let spec = spec.at_flush();
        assert_eq!(spec.trigger(), FeedbackTrigger::AtFlush);
    }

    #[test]
    fn lowering_stamps_the_right_issuer() {
        let spec = FeedbackSpec::assumed(pattern());
        assert_eq!(spec.to_punctuation("sink").issuer(), "sink");
        let spec = spec.from_issuer("display");
        assert_eq!(spec.to_punctuation("sink").issuer(), "display");
        assert_eq!(spec.to_punctuation("sink").intent(), FeedbackIntent::Assumed);
    }

    #[test]
    fn display_is_compact() {
        let s = FeedbackSpec::assumed(pattern()).after_tuples(5).to_string();
        assert!(s.starts_with('¬'), "{s}");
        assert!(s.ends_with("after 5 tuples"), "{s}");
        let s = FeedbackSpec::demanded(pattern()).at_flush().to_string();
        assert!(s.ends_with("at flush"), "{s}");
    }
}
