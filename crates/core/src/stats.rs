//! Counters describing how much work feedback saved (and cost).
//!
//! The experiments of Section 6 quantify feedback benefit as "timely tuples in
//! the result" (Experiment 1) and "total query execution time" (Experiment 2).
//! The per-operator counters collected here are the raw material for those
//! measurements and for the ablation benches.

use crate::intent::FeedbackIntent;
use std::fmt;

/// Per-intent counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntentCounts {
    /// Assumed (`¬`) messages.
    pub assumed: u64,
    /// Desired (`?`) messages.
    pub desired: u64,
    /// Demanded (`!`) messages.
    pub demanded: u64,
}

impl IntentCounts {
    /// Increments the counter for the given intent.
    pub fn record(&mut self, intent: FeedbackIntent) {
        match intent {
            FeedbackIntent::Assumed => self.assumed += 1,
            FeedbackIntent::Desired => self.desired += 1,
            FeedbackIntent::Demanded => self.demanded += 1,
        }
    }

    /// Total across intents.
    pub fn total(&self) -> u64 {
        self.assumed + self.desired + self.demanded
    }
}

/// Feedback-related statistics for one operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    /// Feedback messages this operator issued, per intent.
    pub issued: IntentCounts,
    /// Feedback messages this operator received, per intent.
    pub received: IntentCounts,
    /// Feedback messages this operator relayed upstream, per intent.
    pub relayed: IntentCounts,
    /// Input/output tuples suppressed by assumed guards.
    pub tuples_suppressed: u64,
    /// Tuples processed with priority due to desired patterns.
    pub tuples_prioritized: u64,
    /// State entries (groups, windows, hash-table rows) purged due to feedback.
    pub state_purged: u64,
    /// Partial results emitted due to demanded feedback.
    pub partial_results: u64,
    /// Guards dropped because embedded punctuation subsumed them.
    pub guards_expired: u64,
    /// Feedback rejected in strict mode because the punctuation scheme cannot
    /// support it.
    pub rejected_unsupportable: u64,
    /// Guards accepted that the scheme cannot expire (lenient mode).
    pub unexpirable_guards: u64,
    /// Feedback messages coalesced because an equivalent/subsuming guard was
    /// already active.
    pub coalesced: u64,
    /// Batches (pages) whose guard outcome was decided wholesale from column
    /// summaries — no per-tuple guard checks ran.
    pub batches_summary_conclusive: u64,
    /// Batches (pages) whose column summaries were inconclusive, falling back
    /// to per-tuple guard checks.
    pub batches_summary_fallback: u64,
}

impl FeedbackStats {
    /// Merges another operator's statistics into this one (used to aggregate
    /// per-plan totals in the experiment harness).
    pub fn merge(&mut self, other: &FeedbackStats) {
        self.issued.assumed += other.issued.assumed;
        self.issued.desired += other.issued.desired;
        self.issued.demanded += other.issued.demanded;
        self.received.assumed += other.received.assumed;
        self.received.desired += other.received.desired;
        self.received.demanded += other.received.demanded;
        self.relayed.assumed += other.relayed.assumed;
        self.relayed.desired += other.relayed.desired;
        self.relayed.demanded += other.relayed.demanded;
        self.tuples_suppressed += other.tuples_suppressed;
        self.tuples_prioritized += other.tuples_prioritized;
        self.state_purged += other.state_purged;
        self.partial_results += other.partial_results;
        self.guards_expired += other.guards_expired;
        self.rejected_unsupportable += other.rejected_unsupportable;
        self.unexpirable_guards += other.unexpirable_guards;
        self.coalesced += other.coalesced;
        self.batches_summary_conclusive += other.batches_summary_conclusive;
        self.batches_summary_fallback += other.batches_summary_fallback;
    }
}

impl fmt::Display for FeedbackStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "issued={} received={} relayed={} suppressed={} prioritized={} purged={} partial={} expired={} batch_guards={}/{}",
            self.issued.total(),
            self.received.total(),
            self.relayed.total(),
            self.tuples_suppressed,
            self.tuples_prioritized,
            self.state_purged,
            self.partial_results,
            self.guards_expired,
            self.batches_summary_conclusive,
            self.batches_summary_fallback,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intent_counts_record_and_total() {
        let mut c = IntentCounts::default();
        c.record(FeedbackIntent::Assumed);
        c.record(FeedbackIntent::Assumed);
        c.record(FeedbackIntent::Desired);
        c.record(FeedbackIntent::Demanded);
        assert_eq!(c.assumed, 2);
        assert_eq!(c.desired, 1);
        assert_eq!(c.demanded, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = FeedbackStats {
            tuples_suppressed: 5,
            state_purged: 2,
            batches_summary_conclusive: 3,
            ..Default::default()
        };
        a.issued.record(FeedbackIntent::Assumed);
        let mut b = FeedbackStats {
            tuples_suppressed: 7,
            guards_expired: 1,
            batches_summary_conclusive: 4,
            batches_summary_fallback: 2,
            ..Default::default()
        };
        b.issued.record(FeedbackIntent::Desired);
        a.merge(&b);
        assert_eq!(a.tuples_suppressed, 12);
        assert_eq!(a.state_purged, 2);
        assert_eq!(a.guards_expired, 1);
        assert_eq!(a.issued.total(), 2);
        assert_eq!(a.batches_summary_conclusive, 7);
        assert_eq!(a.batches_summary_fallback, 2);
    }

    #[test]
    fn display_summarizes() {
        let s = FeedbackStats { tuples_suppressed: 3, ..Default::default() };
        assert!(s.to_string().contains("suppressed=3"));
    }
}
