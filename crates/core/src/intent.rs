//! Feedback intents and the feedback punctuation message itself.
//!
//! A feedback punctuation differs from an embedded punctuation in two ways
//! (paper Section 3.2): it flows *against* the stream direction (on the
//! control channel, not in the data stream), and it carries an *intent*
//! describing what the issuer wants done about the described subset.

use dsms_punctuation::{Pattern, StageDirective};
use dsms_types::SchemaRef;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The intent carried by a feedback punctuation (paper Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedbackIntent {
    /// `¬[p]`: the issuer proceeds as if the described subset will never be
    /// seen; antecedent operators may avoid producing it.  A hint, not a
    /// command — the null response is still correct (Definition 1).
    Assumed,
    /// `?[p]`: the issuer would like the described subset as soon as
    /// possible; antecedents may prioritize its production.  Does not change
    /// the overall result, only production time and order.
    Desired,
    /// `![p]`: the conceptual intersection of assumed and desired — "I need
    /// this subset now", and a partial/approximate answer is acceptable
    /// (e.g. unblocking an aggregate to emit a partial result).
    Demanded,
}

impl FeedbackIntent {
    /// The paper's prefix notation for this intent.
    pub fn prefix(&self) -> &'static str {
        match self {
            FeedbackIntent::Assumed => "¬",
            FeedbackIntent::Desired => "?",
            FeedbackIntent::Demanded => "!",
        }
    }

    /// Short lowercase name, used in metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FeedbackIntent::Assumed => "assumed",
            FeedbackIntent::Desired => "desired",
            FeedbackIntent::Demanded => "demanded",
        }
    }

    /// True when exploiting this intent may change *which* tuples appear in
    /// the issuer's output (assumed and demanded), as opposed to only their
    /// production time and order (desired).
    pub fn may_drop_tuples(&self) -> bool {
        matches!(self, FeedbackIntent::Assumed | FeedbackIntent::Demanded)
    }
}

impl fmt::Display for FeedbackIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

static NEXT_FEEDBACK_ID: AtomicU64 = AtomicU64::new(1);

/// A feedback punctuation message: an intent plus a pattern describing the
/// subset of interest, tagged with the issuing operator and a unique id.
///
/// Feedback punctuation is *not* part of the data stream; it travels on the
/// upstream control channel (see `dsms-engine::control`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackPunctuation {
    id: u64,
    intent: FeedbackIntent,
    pattern: Pattern,
    issuer: String,
    /// How many operators have relayed this feedback so far (0 = direct from
    /// the issuer).  Useful for diagnostics and for bounding propagation depth
    /// in experiments.
    hops: u32,
    /// Optional elastic-stage directive riding on the control channel (resize
    /// requests and migration acknowledgements).  Only elastic-aware
    /// operators interpret it; everyone else relays it untouched.
    directive: Option<StageDirective>,
}

impl FeedbackPunctuation {
    /// Creates a feedback punctuation with a fresh id.
    pub fn new(intent: FeedbackIntent, pattern: Pattern, issuer: impl Into<String>) -> Self {
        FeedbackPunctuation {
            id: NEXT_FEEDBACK_ID.fetch_add(1, Ordering::Relaxed),
            intent,
            pattern,
            issuer: issuer.into(),
            hops: 0,
            directive: None,
        }
    }

    /// Attaches an elastic-stage directive to this feedback message.
    pub fn with_directive(mut self, directive: StageDirective) -> Self {
        self.directive = Some(directive);
        self
    }

    /// The elastic-stage directive riding on this feedback, if any.
    pub fn stage_directive(&self) -> Option<StageDirective> {
        self.directive
    }

    /// Creates an *assumed* (`¬[p]`) feedback punctuation.
    pub fn assumed(pattern: Pattern, issuer: impl Into<String>) -> Self {
        Self::new(FeedbackIntent::Assumed, pattern, issuer)
    }

    /// Creates a *desired* (`?[p]`) feedback punctuation.
    pub fn desired(pattern: Pattern, issuer: impl Into<String>) -> Self {
        Self::new(FeedbackIntent::Desired, pattern, issuer)
    }

    /// Creates a *demanded* (`![p]`) feedback punctuation.
    pub fn demanded(pattern: Pattern, issuer: impl Into<String>) -> Self {
        Self::new(FeedbackIntent::Demanded, pattern, issuer)
    }

    /// Unique id of this feedback message.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The intent.
    pub fn intent(&self) -> FeedbackIntent {
        self.intent
    }

    /// The pattern describing the subset of interest.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The schema the pattern is defined over (the schema of the stream the
    /// feedback flows against).
    pub fn schema(&self) -> &SchemaRef {
        self.pattern.schema()
    }

    /// Name of the operator that issued (or last relayed) this feedback.
    pub fn issuer(&self) -> &str {
        &self.issuer
    }

    /// Number of relays this feedback has passed through.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Builds the relayed version of this feedback: same intent, a rewritten
    /// pattern (onto an antecedent's schema), a new relayer name and one more
    /// hop.  The id is preserved so the lineage of a feedback message can be
    /// traced across operators.
    pub fn relay(&self, pattern: Pattern, relayer: impl Into<String>) -> Self {
        FeedbackPunctuation {
            id: self.id,
            intent: self.intent,
            pattern,
            issuer: relayer.into(),
            hops: self.hops + 1,
            directive: self.directive,
        }
    }

    /// True when this feedback describes the given tuple.
    pub fn describes(&self, tuple: &dsms_types::Tuple) -> bool {
        self.pattern.matches(tuple)
    }
}

impl fmt::Display for FeedbackPunctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} (from {}, #{}, {} hops)",
            self.intent.prefix(),
            self.pattern,
            self.issuer,
            self.id,
            self.hops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("value", DataType::Float)])
    }

    fn before(ts: i64) -> Pattern {
        Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(ts))))],
        )
        .unwrap()
    }

    #[test]
    fn intents_have_paper_notation() {
        assert_eq!(FeedbackIntent::Assumed.prefix(), "¬");
        assert_eq!(FeedbackIntent::Desired.prefix(), "?");
        assert_eq!(FeedbackIntent::Demanded.prefix(), "!");
        assert!(FeedbackIntent::Assumed.may_drop_tuples());
        assert!(FeedbackIntent::Demanded.may_drop_tuples());
        assert!(!FeedbackIntent::Desired.may_drop_tuples());
    }

    #[test]
    fn ids_are_unique_and_preserved_across_relays() {
        let f1 = FeedbackPunctuation::assumed(before(100), "PACE");
        let f2 = FeedbackPunctuation::assumed(before(100), "PACE");
        assert_ne!(f1.id(), f2.id());

        let relayed = f1.relay(before(100), "IMPUTE");
        assert_eq!(relayed.id(), f1.id());
        assert_eq!(relayed.hops(), 1);
        assert_eq!(relayed.issuer(), "IMPUTE");
        assert_eq!(relayed.intent(), FeedbackIntent::Assumed);
    }

    #[test]
    fn describes_matches_pattern() {
        let f = FeedbackPunctuation::assumed(before(100), "PACE");
        let early = Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(50)), Value::Float(1.0)],
        );
        let late = Tuple::new(
            schema(),
            vec![Value::Timestamp(Timestamp::from_secs(150)), Value::Float(1.0)],
        );
        assert!(f.describes(&early));
        assert!(!f.describes(&late));
    }

    #[test]
    fn display_uses_prefix_notation() {
        let f = FeedbackPunctuation::desired(before(10), "IMPATIENT-JOIN");
        let s = f.to_string();
        assert!(s.starts_with('?'));
        assert!(s.contains("IMPATIENT-JOIN"));
    }

    #[test]
    fn constructors_set_expected_intents() {
        assert_eq!(FeedbackPunctuation::assumed(before(1), "a").intent(), FeedbackIntent::Assumed);
        assert_eq!(FeedbackPunctuation::desired(before(1), "a").intent(), FeedbackIntent::Desired);
        assert_eq!(
            FeedbackPunctuation::demanded(before(1), "a").intent(),
            FeedbackIntent::Demanded
        );
    }
}
