//! Executable notions of correctness (paper Section 4).
//!
//! * **Definition 1 (correct exploitation).**  An operator `O` correctly
//!   exploits a processing opportunity expressed by assumed punctuation `f`
//!   iff, upon exploitation, `O` produces an output stream `S` such that
//!   `SR − subset(SR, f) ⊆ S ⊆ SR`, where `SR` is the output `O` would have
//!   produced without exploitation.
//!
//!   The lower bound allows maximum exploitation (drop everything the feedback
//!   describes); the upper bound allows the *null response* (change nothing)
//!   and forbids inventing tuples that would not have appeared.
//!
//! * **Definition 2 (safe propagation).**  An operator `O` safely propagates
//!   feedback `g` if any antecedent's exploitation of `g` does not alter `O`'s
//!   own correct exploitation — operationally: removing from `O`'s *input* any
//!   subset of the tuples described by `g` must not remove from `O`'s output
//!   any tuple outside the subset described by the feedback `f` that `O` is
//!   exploiting.
//!
//! These are *testing/validation* utilities: they compare recorded streams
//! (multisets of tuples).  The engine's debug validation mode and the
//! integration tests use them to certify that every feedback-aware operator in
//! `dsms-operators` exploits and propagates correctly.

use crate::intent::FeedbackPunctuation;
use dsms_punctuation::Pattern;
use dsms_types::Tuple;
use std::collections::HashMap;

/// `subset(stream, punctuation)` from the paper: the tuples of `stream` that
/// match the punctuation's pattern.
pub fn subset<'a>(stream: &'a [Tuple], pattern: &Pattern) -> Vec<&'a Tuple> {
    stream.iter().filter(|t| pattern.matches(t)).collect()
}

/// Outcome of a Definition-1 check, with enough detail to explain a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitationReport {
    /// Tuples that appear in the exploited output but not in the reference
    /// output (violates `S ⊆ SR`).
    pub invented: Vec<Tuple>,
    /// Tuples missing from the exploited output that the reference output
    /// contains and that the feedback does **not** describe (violates
    /// `SR − subset ⊆ S`).
    pub wrongly_dropped: Vec<Tuple>,
    /// Tuples the feedback describes that the operator nevertheless produced.
    /// This is *allowed* (null response) but reported for visibility.
    pub unexploited: Vec<Tuple>,
}

impl ExploitationReport {
    /// True when the exploitation satisfies Definition 1.
    pub fn is_correct(&self) -> bool {
        self.invented.is_empty() && self.wrongly_dropped.is_empty()
    }

    /// True when the operator achieved *maximum* exploitation: it dropped
    /// every tuple the feedback describes (and nothing else).
    pub fn is_maximal(&self) -> bool {
        self.is_correct() && self.unexploited.is_empty()
    }
}

/// Multiset view of a stream: tuple → multiplicity.
fn multiset(stream: &[Tuple]) -> HashMap<&Tuple, usize> {
    let mut m: HashMap<&Tuple, usize> = HashMap::new();
    for t in stream {
        *m.entry(t).or_insert(0) += 1;
    }
    m
}

/// Checks Definition 1: compares the output stream the operator produced while
/// exploiting feedback `f` (`exploited`) against the output it would have
/// produced without feedback (`reference`), as multisets.
pub fn check_correct_exploitation(
    reference: &[Tuple],
    exploited: &[Tuple],
    feedback: &FeedbackPunctuation,
) -> ExploitationReport {
    let pattern = feedback.pattern();
    let ref_counts = multiset(reference);
    let expl_counts = multiset(exploited);

    // S ⊆ SR: anything in the exploited output must exist (with sufficient
    // multiplicity) in the reference output.
    let mut invented = Vec::new();
    for (tuple, &count) in &expl_counts {
        let allowed = ref_counts.get(tuple).copied().unwrap_or(0);
        if count > allowed {
            for _ in 0..(count - allowed) {
                invented.push((*tuple).clone());
            }
        }
    }

    // SR − subset(SR, f) ⊆ S: reference tuples *not* described by the feedback
    // must all still be present.
    let mut wrongly_dropped = Vec::new();
    let mut unexploited = Vec::new();
    for (tuple, &count) in &ref_counts {
        let produced = expl_counts.get(tuple).copied().unwrap_or(0);
        if pattern.matches(tuple) {
            // Dropping is allowed; producing is the (correct) null response.
            if produced > 0 {
                for _ in 0..produced.min(count) {
                    unexploited.push((*tuple).clone());
                }
            }
        } else if produced < count {
            for _ in 0..(count - produced) {
                wrongly_dropped.push((*tuple).clone());
            }
        }
    }

    ExploitationReport { invented, wrongly_dropped, unexploited }
}

/// Checks Definition 2 empirically for one antecedent input.
///
/// Arguments:
/// * `full_input` — the input stream the antecedent would deliver without
///   exploiting the propagated feedback `g`;
/// * `reduced_input` — the input stream after the antecedent exploited `g`
///   (some subset of the tuples described by `g` removed);
/// * `propagated` — the feedback `g` the operator sent upstream;
/// * `exploited_feedback` — the feedback `f` the operator itself received and
///   is exploiting;
/// * `apply` — the operator as a function from an input stream to an output
///   stream (its other inputs, if any, held fixed by the caller).
///
/// The propagation is safe when (a) the antecedent only removed tuples that
/// `g` describes, and (b) the operator's output over the reduced input is
/// still a correct exploitation of `f` relative to its output over the full
/// input.
pub fn check_safe_propagation<F>(
    full_input: &[Tuple],
    reduced_input: &[Tuple],
    propagated: &FeedbackPunctuation,
    exploited_feedback: &FeedbackPunctuation,
    mut apply: F,
) -> Result<ExploitationReport, String>
where
    F: FnMut(&[Tuple]) -> Vec<Tuple>,
{
    // (a) the antecedent must only have removed tuples described by g.
    let full_counts = multiset(full_input);
    let reduced_counts = multiset(reduced_input);
    for (tuple, &count) in &full_counts {
        let remaining = reduced_counts.get(tuple).copied().unwrap_or(0);
        if remaining < count && !propagated.pattern().matches(tuple) {
            return Err(format!(
                "antecedent removed tuple {tuple} that the propagated feedback {propagated} does not describe"
            ));
        }
    }
    for (tuple, &count) in &reduced_counts {
        let original = full_counts.get(tuple).copied().unwrap_or(0);
        if count > original {
            return Err(format!(
                "antecedent introduced tuple {tuple} that was not in its original output"
            ));
        }
    }

    // (b) the operator's output over the reduced input must still be a correct
    // exploitation of f relative to its reference output.
    let reference = apply(full_input);
    let with_reduced = apply(reduced_input);
    Ok(check_correct_exploitation(&reference, &with_reduced, exploited_feedback))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::FeedbackPunctuation;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, SchemaRef, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("seg", DataType::Int), ("speed", DataType::Float)])
    }

    fn t(seg: i64, speed: f64) -> Tuple {
        Tuple::new(schema(), vec![Value::Int(seg), Value::Float(speed)])
    }

    fn fast_feedback() -> FeedbackPunctuation {
        // ¬[*, ≥50]
        FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("speed", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap(),
            "test",
        )
    }

    #[test]
    fn subset_selects_matching_tuples() {
        let stream = vec![t(1, 40.0), t(2, 55.0), t(3, 60.0)];
        let sel = subset(&stream, fast_feedback().pattern());
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn null_response_is_correct_but_not_maximal() {
        let reference = vec![t(1, 40.0), t(2, 55.0)];
        let report = check_correct_exploitation(&reference, &reference, &fast_feedback());
        assert!(report.is_correct());
        assert!(!report.is_maximal());
        assert_eq!(report.unexploited.len(), 1);
    }

    #[test]
    fn maximum_exploitation_is_correct_and_maximal() {
        let reference = vec![t(1, 40.0), t(2, 55.0), t(3, 70.0)];
        let exploited = vec![t(1, 40.0)];
        let report = check_correct_exploitation(&reference, &exploited, &fast_feedback());
        assert!(report.is_correct());
        assert!(report.is_maximal());
    }

    #[test]
    fn dropping_undescribed_tuples_is_incorrect() {
        let reference = vec![t(1, 40.0), t(2, 55.0)];
        let exploited = vec![t(2, 55.0)]; // dropped the slow tuple instead
        let report = check_correct_exploitation(&reference, &exploited, &fast_feedback());
        assert!(!report.is_correct());
        assert_eq!(report.wrongly_dropped, vec![t(1, 40.0)]);
    }

    #[test]
    fn inventing_tuples_is_incorrect() {
        let reference = vec![t(1, 40.0)];
        let exploited = vec![t(1, 40.0), t(9, 10.0)];
        let report = check_correct_exploitation(&reference, &exploited, &fast_feedback());
        assert!(!report.is_correct());
        assert_eq!(report.invented, vec![t(9, 10.0)]);
    }

    #[test]
    fn multiplicities_matter() {
        // Reference contains the slow tuple twice; producing it once is a
        // wrongly-dropped occurrence because the feedback does not describe it.
        let reference = vec![t(1, 40.0), t(1, 40.0)];
        let exploited = vec![t(1, 40.0)];
        let report = check_correct_exploitation(&reference, &exploited, &fast_feedback());
        assert!(!report.is_correct());
        assert_eq!(report.wrongly_dropped.len(), 1);
    }

    #[test]
    fn safe_propagation_accepts_consistent_reduction() {
        // Operator: a filter keeping speeds >= 50 (so removing slow tuples
        // upstream cannot change its output outside the feedback subset).
        let f = fast_feedback();
        // The operator exploits ¬[*,>=50]; propagates the same pattern upstream.
        let full = vec![t(1, 40.0), t(2, 55.0), t(3, 70.0)];
        let reduced = vec![t(1, 40.0)]; // antecedent removed the fast tuples (described by g)
        let report = check_safe_propagation(&full, &reduced, &f, &f, |input| {
            input.iter().filter(|t| t.float("speed").unwrap() >= 50.0).cloned().collect()
        })
        .unwrap();
        assert!(report.is_correct());
    }

    #[test]
    fn safe_propagation_rejects_overreach() {
        let f = fast_feedback();
        let full = vec![t(1, 40.0), t(2, 55.0)];
        let reduced = vec![t(2, 55.0)]; // antecedent removed a tuple g does not describe
        let err = check_safe_propagation(&full, &reduced, &f, &f, |input| input.to_vec());
        assert!(err.is_err());
    }

    #[test]
    fn safe_propagation_detects_collateral_damage() {
        // Pathological operator: emits a marker tuple only if it has seen a
        // fast tuple; removing fast tuples upstream then changes output
        // *outside* the feedback subset -> propagation is unsafe.
        let f = fast_feedback();
        let full = vec![t(1, 40.0), t(2, 55.0)];
        let reduced = vec![t(1, 40.0)];
        let report = check_safe_propagation(&full, &reduced, &f, &f, |input| {
            let mut out = input.to_vec();
            if input.iter().any(|t| t.float("speed").unwrap() >= 50.0) {
                out.push(t(99, 1.0)); // marker, not described by the feedback
            }
            out
        })
        .unwrap();
        assert!(!report.is_correct());
        assert_eq!(report.wrongly_dropped, vec![t(99, 1.0)]);
    }
}
