//! Operator characterizations (paper Section 4.3, Tables 1 and 2).
//!
//! Extending an operator to respond to assumed punctuation means choosing, for
//! each shape of feedback it may receive, a combination of actions from a
//! small menu — guard the output, guard the input, purge internal state — plus
//! a propagation decision.  The paper characterizes COUNT (Table 1) and JOIN
//! (Table 2) and discusses MAX, SUM, AVG and SELECT in Section 3.5.
//!
//! This module makes those characterizations executable: given a description
//! of the operator (its output-schema partition and, for aggregates, the
//! monotonicity of the aggregate function) and a received assumed feedback
//! pattern, [`characterize`] returns the list of local [`ExploitAction`]s and
//! the [`PropagationRule`] that are *correct* (Definition 1) and *safe*
//! (Definition 2).  The feedback-aware operators in `dsms-operators` execute
//! exactly these characterizations, so the unit tests here double as
//! conformance tests for the operator implementations.

use crate::error::{FeedbackError, FeedbackResult};
use crate::mapping::AttributeMapping;
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::SchemaRef;

/// One local exploitation action from the menu of Section 4.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploitAction {
    /// Avoid emitting output tuples that match the pattern (pattern is over
    /// the operator's output schema).
    GuardOutput(Pattern),
    /// Avoid processing input tuples that match the pattern (pattern is over
    /// the given input's schema).
    GuardInput {
        /// Which input the guard applies to (0 for unary operators).
        input: usize,
        /// The guard pattern, over that input's schema.
        pattern: Pattern,
    },
    /// Purge internal state entries that match the pattern (expressed over the
    /// operator's output schema, since stateful operators key their state by
    /// output semantics — groups, windows, join keys).
    PurgeState(Pattern),
    /// Snapshot the set `G` of groups whose *current partial aggregate* matches
    /// the feedback, purge them, and guard the input against those group keys
    /// (the `¬[*, ≥a]` row of Table 1).  `G` can only be computed at runtime
    /// from operator state, so the characterization names the strategy and the
    /// operator executes it.
    PurgeAndGuardMatchingGroups,
}

impl ExploitAction {
    /// Short name for metrics and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            ExploitAction::GuardOutput(_) => "guard-output",
            ExploitAction::GuardInput { .. } => "guard-input",
            ExploitAction::PurgeState(_) => "purge-state",
            ExploitAction::PurgeAndGuardMatchingGroups => "purge-and-guard-matching-groups",
        }
    }
}

/// How (and whether) the feedback should be relayed to antecedent operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationRule {
    /// Relay the rewritten pattern to each listed input.
    ToInputs(Vec<(usize, Pattern)>),
    /// Relay, per input, punctuation describing the *group keys* currently
    /// matching the feedback (computed from operator state at runtime; the
    /// "Propagate G (in terms of input schema)" rows of Table 1).
    GroupsFromState,
    /// Do not propagate.
    None,
}

impl PropagationRule {
    /// True when no upstream message will be sent.
    pub fn is_none(&self) -> bool {
        matches!(self, PropagationRule::None)
    }
}

/// A complete characterization: local exploitation plus propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Characterization {
    /// Local exploitation actions, in the order they should be applied.
    pub actions: Vec<ExploitAction>,
    /// Propagation decision.
    pub propagation: PropagationRule,
}

impl Characterization {
    /// The null response: no local action, no propagation.  Always correct
    /// (Definition 1 permits `S ≡ SR`).
    pub fn null_response() -> Self {
        Characterization { actions: Vec::new(), propagation: PropagationRule::None }
    }

    /// True when this is the null response.
    pub fn is_null(&self) -> bool {
        self.actions.is_empty() && self.propagation.is_none()
    }

    /// True when the characterization includes an input guard.
    pub fn guards_input(&self) -> bool {
        self.actions.iter().any(|a| {
            matches!(
                a,
                ExploitAction::GuardInput { .. } | ExploitAction::PurgeAndGuardMatchingGroups
            )
        })
    }

    /// True when the characterization includes an output guard.
    pub fn guards_output(&self) -> bool {
        self.actions.iter().any(|a| matches!(a, ExploitAction::GuardOutput(_)))
    }

    /// True when the characterization purges state.
    pub fn purges_state(&self) -> bool {
        self.actions.iter().any(|a| {
            matches!(a, ExploitAction::PurgeState(_) | ExploitAction::PurgeAndGuardMatchingGroups)
        })
    }
}

/// Monotonicity of an aggregate function as more tuples are folded into a
/// group — the property that determines which responses to value-constraining
/// feedback are correct (Section 3.5: "COUNT's produced result increases
/// monotonically, SUM's doesn't").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monotonicity {
    /// The partial aggregate never decreases (COUNT; MAX).
    NonDecreasing,
    /// The partial aggregate never increases (MIN).
    NonIncreasing,
    /// The partial aggregate may move either way (SUM over signed values, AVG).
    None,
}

/// Description of a windowed, grouped aggregate operator for characterization
/// purposes: output schema `(g…, a)` where `g…` are the grouping attributes
/// and `a` is the aggregate attribute.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// The aggregate's output schema.
    pub output: SchemaRef,
    /// The aggregate's input schema.
    pub input: SchemaRef,
    /// Output attribute indices that are grouping attributes.
    pub group_attributes: Vec<usize>,
    /// Output attribute index of the aggregate value.
    pub aggregate_attribute: usize,
    /// Mapping from output grouping attributes onto the input schema.
    pub input_mapping: AttributeMapping,
    /// Monotonicity of the aggregate function.
    pub monotonicity: Monotonicity,
}

/// Description of a binary equi-join for characterization purposes: output
/// schema partitioned into `(L, J, R)` — attributes unique to the left input,
/// join attributes, attributes unique to the right input.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// The join's output schema.
    pub output: SchemaRef,
    /// Left input schema.
    pub left: SchemaRef,
    /// Right input schema.
    pub right: SchemaRef,
    /// Output attribute indices unique to the left input (L).
    pub left_attributes: Vec<usize>,
    /// Output attribute indices of the join attributes (J).
    pub join_attributes: Vec<usize>,
    /// Output attribute indices unique to the right input (R).
    pub right_attributes: Vec<usize>,
    /// Mapping from output onto the left input schema.
    pub left_mapping: AttributeMapping,
    /// Mapping from output onto the right input schema.
    pub right_mapping: AttributeMapping,
}

/// The kinds of operators this module knows how to characterize.
#[derive(Debug, Clone)]
pub enum OperatorKind {
    /// A grouped, windowed aggregate (COUNT, SUM, AVG, MAX, MIN) described by
    /// an [`AggregateSpec`].
    Aggregate(AggregateSpec),
    /// A binary equi-join described by a [`JoinSpec`].
    Join(JoinSpec),
    /// A stateless selection: assumed feedback can simply be conjoined to the
    /// select condition (Section 4.3: "SELECT … maintains no internal state").
    Select {
        /// The select's (single) schema — input and output are identical.
        schema: SchemaRef,
    },
    /// DUPLICATE: both outputs must stay identical, so feedback can only be
    /// exploited when it is enforced on both outputs (or not at all).
    Duplicate {
        /// The duplicated stream's schema.
        schema: SchemaRef,
        /// Whether equivalent feedback has been received for *every* output.
        feedback_on_all_outputs: bool,
    },
}

/// Classification of the per-attribute predicate a feedback pattern places on
/// the aggregate attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggregatePredicate {
    /// Not constrained.
    Unconstrained,
    /// Exactly one value (`= a`).
    Exact,
    /// Upward closed (`≥ a`, `> a`): once satisfied by a non-decreasing
    /// aggregate it stays satisfied.
    UpwardClosed,
    /// Downward closed (`≤ a`, `< a`).
    DownwardClosed,
    /// Anything else (ranges, sets).
    Other,
}

fn classify_item(item: &PatternItem) -> AggregatePredicate {
    match item {
        PatternItem::Wildcard => AggregatePredicate::Unconstrained,
        PatternItem::Eq(_) => AggregatePredicate::Exact,
        PatternItem::Ge(_) | PatternItem::Gt(_) => AggregatePredicate::UpwardClosed,
        PatternItem::Le(_) | PatternItem::Lt(_) => AggregatePredicate::DownwardClosed,
        _ => AggregatePredicate::Other,
    }
}

/// Characterizes an operator's correct-and-safe response to an **assumed**
/// feedback pattern (over the operator's output schema).
///
/// Returns the null response whenever no better response can be proven
/// correct, so callers may apply the result unconditionally.
pub fn characterize(kind: &OperatorKind, feedback: &Pattern) -> FeedbackResult<Characterization> {
    match kind {
        OperatorKind::Aggregate(spec) => characterize_aggregate(spec, feedback),
        OperatorKind::Join(spec) => characterize_join(spec, feedback),
        OperatorKind::Select { schema } => characterize_select(schema, feedback),
        OperatorKind::Duplicate { schema, feedback_on_all_outputs } => {
            characterize_duplicate(schema, *feedback_on_all_outputs, feedback)
        }
    }
}

/// Table 1 (COUNT) generalized to any grouped aggregate via monotonicity.
pub fn characterize_aggregate(
    spec: &AggregateSpec,
    feedback: &Pattern,
) -> FeedbackResult<Characterization> {
    if feedback.schema() != &spec.output {
        return Err(FeedbackError::SchemaMismatch {
            detail: format!(
                "feedback over {} but aggregate output is {}",
                feedback.schema().describe(),
                spec.output.describe()
            ),
        });
    }
    let constrained = feedback.constrained_attributes();
    if constrained.is_empty() {
        return Ok(Characterization::null_response());
    }
    let constrains_group = constrained.iter().any(|i| spec.group_attributes.contains(i));
    let constrains_aggregate = constrained.contains(&spec.aggregate_attribute);

    // Mixed constraints (both group and aggregate attributes): the only
    // response provable correct without reasoning about the specific values is
    // an output guard (analogous to JOIN's ¬[l,*,r] row).
    if constrains_group && constrains_aggregate {
        return Ok(Characterization {
            actions: vec![ExploitAction::GuardOutput(feedback.clone())],
            propagation: PropagationRule::None,
        });
    }

    if constrains_group {
        // Table 1 row ¬[g,*]: remove group g from local state, guard the input
        // on g, and propagate g in terms of the input schema.  Purging without
        // the input guard would be incorrect (incoming tuples may recreate the
        // group), which is why both actions always appear together.
        let (input_pattern, uncovered) = spec.input_mapping.rewrite(feedback)?;
        let mut actions = vec![
            ExploitAction::PurgeState(feedback.clone()),
            ExploitAction::GuardInput { input: 0, pattern: input_pattern.clone() },
        ];
        let propagation = if uncovered.is_empty() {
            PropagationRule::ToInputs(vec![(0, input_pattern)])
        } else {
            // Some constrained group attribute is not visible in the input
            // (e.g. a computed grouping key): keep exploitation local and add
            // an output guard so correctness does not depend on the purge.
            actions.push(ExploitAction::GuardOutput(feedback.clone()));
            PropagationRule::None
        };
        return Ok(Characterization { actions, propagation });
    }

    // Only the aggregate attribute is constrained.
    let item = feedback
        .item(spec.aggregate_attribute)
        .expect("aggregate attribute index is valid for the output schema");
    let predicate = classify_item(item);
    let ch = match (predicate, spec.monotonicity) {
        // Table 1 row ¬[*, a] (exact value): only the output guard is correct —
        // a group currently at the value may move off it, and one not at the
        // value may reach it.
        (AggregatePredicate::Exact, _) => Characterization {
            actions: vec![ExploitAction::GuardOutput(feedback.clone())],
            propagation: PropagationRule::None,
        },
        // Table 1 row ¬[*, ≥a] / ¬[*, >a] for a non-decreasing aggregate
        // (COUNT, MAX): groups whose partial already satisfies the predicate
        // will satisfy it forever → snapshot G, purge, guard input on G, and
        // propagate G in terms of the input schema.
        (AggregatePredicate::UpwardClosed, Monotonicity::NonDecreasing) => Characterization {
            actions: vec![
                ExploitAction::PurgeAndGuardMatchingGroups,
                ExploitAction::GuardOutput(feedback.clone()),
            ],
            propagation: PropagationRule::GroupsFromState,
        },
        // The mirrored case for a non-increasing aggregate (MIN) and a
        // downward-closed predicate.
        (AggregatePredicate::DownwardClosed, Monotonicity::NonIncreasing) => Characterization {
            actions: vec![
                ExploitAction::PurgeAndGuardMatchingGroups,
                ExploitAction::GuardOutput(feedback.clone()),
            ],
            propagation: PropagationRule::GroupsFromState,
        },
        // Table 1 rows ¬[*, ≤a] / ¬[*, <a] for COUNT, and every value
        // constraint for non-monotone aggregates (SUM, AVG): suppressing
        // active windows or purging would be incorrect (the partial may still
        // cross the threshold either way), so only the output guard applies.
        _ => Characterization {
            actions: vec![ExploitAction::GuardOutput(feedback.clone())],
            propagation: PropagationRule::None,
        },
    };
    Ok(ch)
}

/// Table 2 (JOIN).
pub fn characterize_join(spec: &JoinSpec, feedback: &Pattern) -> FeedbackResult<Characterization> {
    if feedback.schema() != &spec.output {
        return Err(FeedbackError::SchemaMismatch {
            detail: format!(
                "feedback over {} but join output is {}",
                feedback.schema().describe(),
                spec.output.describe()
            ),
        });
    }
    let constrained = feedback.constrained_attributes();
    if constrained.is_empty() {
        return Ok(Characterization::null_response());
    }
    let on_left = constrained.iter().any(|i| spec.left_attributes.contains(i));
    let on_join = constrained.iter().any(|i| spec.join_attributes.contains(i));
    let on_right = constrained.iter().any(|i| spec.right_attributes.contains(i));

    let left_rewrite = spec.left_mapping.rewrite(feedback)?;
    let right_rewrite = spec.right_mapping.rewrite(feedback)?;

    match (on_left, on_join, on_right) {
        // ¬[*, j, *]: purge matching tuples from both hash tables, guard both
        // inputs, propagate to both inputs.
        (false, true, false) => Ok(Characterization {
            actions: vec![
                ExploitAction::PurgeState(feedback.clone()),
                ExploitAction::GuardInput { input: 0, pattern: left_rewrite.0.clone() },
                ExploitAction::GuardInput { input: 1, pattern: right_rewrite.0.clone() },
            ],
            propagation: PropagationRule::ToInputs(vec![(0, left_rewrite.0), (1, right_rewrite.0)]),
        }),
        // ¬[l, *, *]: purge matching tuples from the left hash table, guard the
        // left input, propagate to the left input only.
        (true, false, false) | (true, true, false) => Ok(Characterization {
            actions: vec![
                ExploitAction::PurgeState(feedback.clone()),
                ExploitAction::GuardInput { input: 0, pattern: left_rewrite.0.clone() },
            ],
            propagation: PropagationRule::ToInputs(vec![(0, left_rewrite.0)]),
        }),
        // ¬[*, *, r]: the mirror image toward the right input.
        (false, false, true) | (false, true, true) => Ok(Characterization {
            actions: vec![
                ExploitAction::PurgeState(feedback.clone()),
                ExploitAction::GuardInput { input: 1, pattern: right_rewrite.0.clone() },
            ],
            propagation: PropagationRule::ToInputs(vec![(1, right_rewrite.0)]),
        }),
        // ¬[l, *, r]: the feedback couples attributes of both inputs; no safe
        // propagation exists and purging either table could lose tuples needed
        // for results the feedback does not describe → guard the output only.
        (true, _, true) => Ok(Characterization {
            actions: vec![ExploitAction::GuardOutput(feedback.clone())],
            propagation: PropagationRule::None,
        }),
        (false, false, false) => Ok(Characterization::null_response()),
    }
}

/// SELECT (Section 4.3): stateless, so the assumed pattern is simply added as
/// a negative conjunct to the select condition — expressed here as an output
/// guard (equivalently an input guard, since input and output schemas are the
/// same) plus propagation of the unchanged pattern.
pub fn characterize_select(
    schema: &SchemaRef,
    feedback: &Pattern,
) -> FeedbackResult<Characterization> {
    if feedback.schema() != schema {
        return Err(FeedbackError::SchemaMismatch {
            detail: format!(
                "feedback over {} but select schema is {}",
                feedback.schema().describe(),
                schema.describe()
            ),
        });
    }
    if feedback.is_unconstrained() {
        return Ok(Characterization::null_response());
    }
    Ok(Characterization {
        actions: vec![
            ExploitAction::GuardInput { input: 0, pattern: feedback.clone() },
            ExploitAction::GuardOutput(feedback.clone()),
        ],
        propagation: PropagationRule::ToInputs(vec![(0, feedback.clone())]),
    })
}

/// DUPLICATE (Section 4.1): both outputs must remain identical, so feedback is
/// exploitable only when the *same* subset has been assumed on every output;
/// otherwise the null response applies.
pub fn characterize_duplicate(
    schema: &SchemaRef,
    feedback_on_all_outputs: bool,
    feedback: &Pattern,
) -> FeedbackResult<Characterization> {
    if feedback.schema() != schema {
        return Err(FeedbackError::SchemaMismatch {
            detail: format!(
                "feedback over {} but duplicate schema is {}",
                feedback.schema().describe(),
                schema.describe()
            ),
        });
    }
    if !feedback_on_all_outputs || feedback.is_unconstrained() {
        return Ok(Characterization::null_response());
    }
    Ok(Characterization {
        actions: vec![
            ExploitAction::GuardInput { input: 0, pattern: feedback.clone() },
            ExploitAction::GuardOutput(feedback.clone()),
        ],
        propagation: PropagationRule::ToInputs(vec![(0, feedback.clone())]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, Value};

    /// COUNT with output (g, a): g = grouping attribute, a = the count.
    fn count_spec() -> AggregateSpec {
        let output = Schema::shared(&[("g", DataType::Int), ("a", DataType::Int)]);
        let input = Schema::shared(&[("g", DataType::Int), ("v", DataType::Float)]);
        AggregateSpec {
            output: output.clone(),
            input: input.clone(),
            group_attributes: vec![0],
            aggregate_attribute: 1,
            input_mapping: AttributeMapping::by_name(output, input).unwrap(),
            monotonicity: Monotonicity::NonDecreasing,
        }
    }

    fn sum_spec() -> AggregateSpec {
        AggregateSpec { monotonicity: Monotonicity::None, ..count_spec() }
    }

    fn min_spec() -> AggregateSpec {
        AggregateSpec { monotonicity: Monotonicity::NonIncreasing, ..count_spec() }
    }

    fn out_pattern(spec: &AggregateSpec, items: &[(&str, PatternItem)]) -> Pattern {
        Pattern::for_attributes(spec.output.clone(), items).unwrap()
    }

    // ----- Table 1: COUNT -----

    #[test]
    fn table1_group_feedback_purges_guards_and_propagates() {
        let spec = count_spec();
        let f = out_pattern(&spec, &[("g", PatternItem::Eq(Value::Int(7)))]);
        let ch = characterize_aggregate(&spec, &f).unwrap();
        assert!(ch.purges_state());
        assert!(ch.guards_input());
        match &ch.propagation {
            PropagationRule::ToInputs(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].1.to_string(), "[7, *]");
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn table1_exact_count_only_guards_output() {
        let spec = count_spec();
        let f = out_pattern(&spec, &[("a", PatternItem::Eq(Value::Int(10)))]);
        let ch = characterize_aggregate(&spec, &f).unwrap();
        assert_eq!(ch.actions.len(), 1);
        assert!(ch.guards_output());
        assert!(!ch.purges_state());
        assert!(ch.propagation.is_none());
    }

    #[test]
    fn table1_upward_closed_count_purges_matching_groups() {
        let spec = count_spec();
        for item in [PatternItem::Ge(Value::Int(100)), PatternItem::Gt(Value::Int(100))] {
            let f = out_pattern(&spec, &[("a", item)]);
            let ch = characterize_aggregate(&spec, &f).unwrap();
            assert!(ch.actions.contains(&ExploitAction::PurgeAndGuardMatchingGroups));
            assert_eq!(ch.propagation, PropagationRule::GroupsFromState);
        }
    }

    #[test]
    fn table1_downward_closed_count_only_guards_output() {
        let spec = count_spec();
        for item in [PatternItem::Le(Value::Int(5)), PatternItem::Lt(Value::Int(5))] {
            let f = out_pattern(&spec, &[("a", item)]);
            let ch = characterize_aggregate(&spec, &f).unwrap();
            assert_eq!(ch.actions, vec![ExploitAction::GuardOutput(f.clone())]);
            assert!(ch.propagation.is_none());
        }
    }

    // ----- Section 3.5: MAX, SUM, AVG -----

    #[test]
    fn max_with_upward_closed_feedback_closes_matching_windows() {
        // MAX is non-decreasing, so ¬[*, ≥50] admits the aggressive response.
        let spec = count_spec(); // same shape; monotonicity is what matters
        let f = out_pattern(&spec, &[("a", PatternItem::Ge(Value::Int(50)))]);
        let ch = characterize_aggregate(&spec, &f).unwrap();
        assert!(ch.actions.contains(&ExploitAction::PurgeAndGuardMatchingGroups));
    }

    #[test]
    fn sum_and_avg_never_purge_on_value_feedback() {
        // "Suppressing active windows is not a correct response" — AVERAGE at 51
        // could drop below 50 with more input; SUM is not monotone either.
        let spec = sum_spec();
        let f = out_pattern(&spec, &[("a", PatternItem::Ge(Value::Int(50)))]);
        let ch = characterize_aggregate(&spec, &f).unwrap();
        assert!(!ch.purges_state());
        assert_eq!(ch.actions, vec![ExploitAction::GuardOutput(f)]);
        assert!(ch.propagation.is_none());
    }

    #[test]
    fn min_mirrors_max_for_downward_closed_feedback() {
        let spec = min_spec();
        let down = out_pattern(&spec, &[("a", PatternItem::Le(Value::Int(10)))]);
        assert!(characterize_aggregate(&spec, &down).unwrap().purges_state());
        let up = out_pattern(&spec, &[("a", PatternItem::Ge(Value::Int(10)))]);
        assert!(!characterize_aggregate(&spec, &up).unwrap().purges_state());
    }

    #[test]
    fn mixed_group_and_value_feedback_guards_output_only() {
        let spec = count_spec();
        let f = out_pattern(
            &spec,
            &[("g", PatternItem::Eq(Value::Int(1))), ("a", PatternItem::Ge(Value::Int(3)))],
        );
        let ch = characterize_aggregate(&spec, &f).unwrap();
        assert_eq!(ch.actions, vec![ExploitAction::GuardOutput(f)]);
        assert!(ch.propagation.is_none());
    }

    #[test]
    fn unconstrained_feedback_is_null_response() {
        let spec = count_spec();
        let f = Pattern::all_wildcards(spec.output.clone());
        assert!(characterize_aggregate(&spec, &f).unwrap().is_null());
    }

    #[test]
    fn aggregate_rejects_foreign_schema() {
        let spec = count_spec();
        let foreign = Pattern::all_wildcards(spec.input.clone());
        assert!(characterize_aggregate(&spec, &foreign).is_err());
    }

    // ----- Table 2: JOIN -----

    /// JOIN over A(l, j) ⋈ B(j, r) with output (l, j, r).
    fn join_spec() -> JoinSpec {
        let left = Schema::shared(&[("l", DataType::Int), ("j", DataType::Int)]);
        let right = Schema::shared(&[("j", DataType::Int), ("r", DataType::Int)]);
        let output =
            Schema::shared(&[("l", DataType::Int), ("j", DataType::Int), ("r", DataType::Int)]);
        JoinSpec {
            output: output.clone(),
            left: left.clone(),
            right: right.clone(),
            left_attributes: vec![0],
            join_attributes: vec![1],
            right_attributes: vec![2],
            left_mapping: AttributeMapping::by_name(output.clone(), left).unwrap(),
            right_mapping: AttributeMapping::by_name(output, right).unwrap(),
        }
    }

    fn join_pattern(items: &[(&str, PatternItem)]) -> Pattern {
        Pattern::for_attributes(join_spec().output.clone(), items).unwrap()
    }

    #[test]
    fn table2_join_attribute_feedback_goes_both_ways() {
        let spec = join_spec();
        let f = join_pattern(&[("j", PatternItem::Eq(Value::Int(4)))]);
        let ch = characterize_join(&spec, &f).unwrap();
        assert!(ch.purges_state());
        let guards: Vec<usize> = ch
            .actions
            .iter()
            .filter_map(|a| match a {
                ExploitAction::GuardInput { input, .. } => Some(*input),
                _ => None,
            })
            .collect();
        assert_eq!(guards, vec![0, 1]);
        match &ch.propagation {
            PropagationRule::ToInputs(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0].1.to_string(), "[*, 4]");
                assert_eq!(v[1].1.to_string(), "[4, *]");
            }
            other => panic!("expected propagation to both inputs, got {other:?}"),
        }
    }

    #[test]
    fn table2_left_only_feedback_goes_left() {
        let spec = join_spec();
        let f = join_pattern(&[("l", PatternItem::Ge(Value::Int(50)))]);
        let ch = characterize_join(&spec, &f).unwrap();
        match &ch.propagation {
            PropagationRule::ToInputs(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].0, 0);
                assert_eq!(v[0].1.to_string(), "[>=50, *]");
            }
            other => panic!("expected propagation to the left input, got {other:?}"),
        }
    }

    #[test]
    fn table2_right_only_feedback_goes_right() {
        let spec = join_spec();
        let f = join_pattern(&[("r", PatternItem::Eq(Value::Int(9)))]);
        let ch = characterize_join(&spec, &f).unwrap();
        match &ch.propagation {
            PropagationRule::ToInputs(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].0, 1);
                assert_eq!(v[0].1.to_string(), "[*, 9]");
            }
            other => panic!("expected propagation to the right input, got {other:?}"),
        }
    }

    #[test]
    fn table2_cross_input_feedback_guards_output_only() {
        let spec = join_spec();
        let f = join_pattern(&[
            ("l", PatternItem::Eq(Value::Int(50))),
            ("r", PatternItem::Eq(Value::Int(50))),
        ]);
        let ch = characterize_join(&spec, &f).unwrap();
        assert_eq!(ch.actions, vec![ExploitAction::GuardOutput(f)]);
        assert!(ch.propagation.is_none());
        assert!(!ch.purges_state());
    }

    #[test]
    fn join_unconstrained_feedback_is_null() {
        let spec = join_spec();
        let f = Pattern::all_wildcards(spec.output.clone());
        assert!(characterize_join(&spec, &f).unwrap().is_null());
    }

    // ----- SELECT and DUPLICATE -----

    #[test]
    fn select_adds_feedback_to_its_condition_and_propagates() {
        let schema = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Float)]);
        let f =
            Pattern::for_attributes(schema.clone(), &[("v", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap();
        let ch = characterize_select(&schema, &f).unwrap();
        assert!(ch.guards_input());
        assert!(ch.guards_output());
        assert!(matches!(ch.propagation, PropagationRule::ToInputs(ref v) if v.len() == 1));
    }

    #[test]
    fn duplicate_requires_feedback_on_all_outputs() {
        let schema = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Float)]);
        let f =
            Pattern::for_attributes(schema.clone(), &[("v", PatternItem::Ge(Value::Float(50.0)))])
                .unwrap();
        assert!(characterize_duplicate(&schema, false, &f).unwrap().is_null());
        let ch = characterize_duplicate(&schema, true, &f).unwrap();
        assert!(!ch.is_null());
        assert!(ch.guards_input());
    }

    #[test]
    fn characterize_dispatches_on_kind() {
        let spec = count_spec();
        let f = out_pattern(&spec, &[("g", PatternItem::Eq(Value::Int(7)))]);
        let ch = characterize(&OperatorKind::Aggregate(spec), &f).unwrap();
        assert!(ch.purges_state());
    }
}
