//! The three roles an operator may play in the feedback architecture
//! (paper Section 1: "producers, exploiters, and relayers of feedback").
//!
//! These traits are deliberately engine-agnostic: they describe *what* an
//! operator contributes to the feedback loop, while `dsms-engine` decides how
//! the resulting messages travel (on the upstream control channel) and
//! `dsms-operators` implements them for each concrete operator.
//!
//! An operator may implement any subset of the roles:
//!
//! * PACE produces feedback (from its explicit disorder policy) but has
//!   nothing to exploit;
//! * IMPUTE exploits assumed feedback (purging late state) and relays it;
//! * a feedback-unaware operator implements none of them — it ignores
//!   feedback and cannot relay it (Section 5, "Feedback Support").

use crate::characterization::Characterization;
use crate::intent::FeedbackPunctuation;
use crate::mapping::PropagationOutcome;
use dsms_types::Tuple;
use std::fmt;

/// The subset of feedback roles an operator *declares* it plays, as a plain
/// value usable by plan builders and validators.
///
/// Where [`FeedbackProducer`] / [`FeedbackExploiter`] / [`FeedbackRelayer`]
/// are behavioural traits, `FeedbackRoles` is the static declaration: a plan
/// builder asks an operator for its roles *before* execution and can reject a
/// feedback subscription whose target declares no feedback port at all —
/// turning what would be a silent run-time no-op (the paper's
/// feedback-unaware operator simply ignores the message) into a
/// composition-time error.
///
/// # Examples
///
/// ```
/// use dsms_feedback::FeedbackRoles;
///
/// let select = FeedbackRoles::exploiter().with_relayer();
/// assert!(select.accepts_feedback());
/// assert_eq!(select.to_string(), "exploiter+relayer");
/// assert!(!FeedbackRoles::NONE.accepts_feedback());
/// assert_eq!(FeedbackRoles::NONE.to_string(), "none");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FeedbackRoles {
    produces: bool,
    exploits: bool,
    relays: bool,
}

impl FeedbackRoles {
    /// A feedback-unaware operator: no roles, no feedback port.
    pub const NONE: FeedbackRoles =
        FeedbackRoles { produces: false, exploits: false, relays: false };

    /// Declares only the producer role (e.g. PACE).
    pub const fn producer() -> Self {
        FeedbackRoles { produces: true, exploits: false, relays: false }
    }

    /// Declares only the exploiter role (e.g. IMPUTE).
    pub const fn exploiter() -> Self {
        FeedbackRoles { produces: false, exploits: true, relays: false }
    }

    /// Declares only the relayer role (e.g. a shuffle).
    pub const fn relayer() -> Self {
        FeedbackRoles { produces: false, exploits: false, relays: true }
    }

    /// Adds the producer role.
    pub const fn with_producer(self) -> Self {
        FeedbackRoles { produces: true, ..self }
    }

    /// Adds the exploiter role.
    pub const fn with_exploiter(self) -> Self {
        FeedbackRoles { exploits: true, ..self }
    }

    /// Adds the relayer role.
    pub const fn with_relayer(self) -> Self {
        FeedbackRoles { relays: true, ..self }
    }

    /// True when the operator issues feedback of its own accord.
    pub const fn produces(&self) -> bool {
        self.produces
    }

    /// True when the operator adapts its processing to received feedback.
    pub const fn exploits(&self) -> bool {
        self.exploits
    }

    /// True when the operator forwards received feedback to its antecedents.
    pub const fn relays(&self) -> bool {
        self.relays
    }

    /// True when the operator has a feedback port at all: feedback sent to it
    /// is either exploited or relayed (possibly both).  False means feedback
    /// would be silently ignored — the paper's feedback-unaware operator.
    pub const fn accepts_feedback(&self) -> bool {
        self.exploits || self.relays
    }

    /// True when no role is declared.
    pub const fn is_none(&self) -> bool {
        !self.produces && !self.exploits && !self.relays
    }

    /// The union of two declarations (used by wrapper operators that add a
    /// role on top of an inner operator's).
    pub const fn union(self, other: Self) -> Self {
        FeedbackRoles {
            produces: self.produces || other.produces,
            exploits: self.exploits || other.exploits,
            relays: self.relays || other.relays,
        }
    }
}

impl fmt::Display for FeedbackRoles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut parts = Vec::new();
        if self.produces {
            parts.push("producer");
        }
        if self.exploits {
            parts.push("exploiter");
        }
        if self.relays {
            parts.push("relayer");
        }
        write!(f, "{}", parts.join("+"))
    }
}

/// An operator that can *discover* processing opportunities and issue
/// feedback describing them.
pub trait FeedbackProducer {
    /// Called by the engine after the operator has processed a unit of work;
    /// returns any feedback punctuation the operator wants sent to its
    /// antecedent(s).  The engine routes each message to the appropriate
    /// upstream control channel.
    fn produce_feedback(&mut self) -> Vec<FeedbackPunctuation>;
}

/// An operator that can *exploit* received feedback by adapting its own
/// processing (guarding input/output, purging state, prioritizing subsets,
/// emitting partial results).
pub trait FeedbackExploiter {
    /// Called when feedback arrives on the operator's downstream control
    /// channel.  Returns the characterization the operator decided to enact
    /// (possibly the null response), which the engine records for metrics and
    /// debug validation.
    fn exploit(&mut self, feedback: &FeedbackPunctuation) -> Characterization;

    /// Asks the exploiter whether a specific input tuple is currently
    /// suppressed by an enacted input guard.  The default implementation
    /// suppresses nothing.
    fn suppresses(&self, _tuple: &Tuple) -> bool {
        false
    }
}

/// An operator that can *relay* feedback to its antecedents, rewriting the
/// pattern into each input's schema when a safe propagation exists.
pub trait FeedbackRelayer {
    /// Computes the propagation outcome for each input (indexed from 0).
    /// Implementations typically delegate to [`crate::mapping::propagate_through`]
    /// with the operator's own attribute mappings.
    fn relay(&self, feedback: &FeedbackPunctuation) -> Vec<(usize, PropagationOutcome)>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::Characterization;
    use crate::mapping::{propagate_through, AttributeMapping};
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, SchemaRef, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("seg", DataType::Int), ("speed", DataType::Float)])
    }

    /// A toy operator exercising all three roles: it produces feedback about
    /// segment 9, exploits whatever it receives by suppressing matching
    /// tuples, and relays feedback unchanged (its input and output schemas are
    /// identical).
    struct Toy {
        guards: Vec<FeedbackPunctuation>,
    }

    impl FeedbackProducer for Toy {
        fn produce_feedback(&mut self) -> Vec<FeedbackPunctuation> {
            vec![FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("seg", PatternItem::Eq(Value::Int(9)))])
                    .unwrap(),
                "toy",
            )]
        }
    }

    impl FeedbackExploiter for Toy {
        fn exploit(&mut self, feedback: &FeedbackPunctuation) -> Characterization {
            self.guards.push(feedback.clone());
            Characterization::null_response()
        }

        fn suppresses(&self, tuple: &Tuple) -> bool {
            self.guards.iter().any(|f| f.describes(tuple))
        }
    }

    impl FeedbackRelayer for Toy {
        fn relay(&self, feedback: &FeedbackPunctuation) -> Vec<(usize, PropagationOutcome)> {
            let mapping = AttributeMapping::by_name(schema(), schema()).unwrap();
            vec![(0, propagate_through(feedback, &mapping, "toy").unwrap())]
        }
    }

    #[test]
    fn toy_operator_plays_all_roles() {
        let mut toy = Toy { guards: Vec::new() };

        let produced = toy.produce_feedback();
        assert_eq!(produced.len(), 1);

        let incoming = FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("seg", PatternItem::Eq(Value::Int(3)))]).unwrap(),
            "downstream",
        );
        toy.exploit(&incoming);
        let seg3 = Tuple::new(schema(), vec![Value::Int(3), Value::Float(10.0)]);
        let seg4 = Tuple::new(schema(), vec![Value::Int(4), Value::Float(10.0)]);
        assert!(toy.suppresses(&seg3));
        assert!(!toy.suppresses(&seg4));

        let relayed = toy.relay(&incoming);
        assert_eq!(relayed.len(), 1);
        assert!(matches!(relayed[0].1, PropagationOutcome::Propagate(_)));
    }

    #[test]
    fn roles_declarations_compose_and_display() {
        assert!(FeedbackRoles::NONE.is_none());
        assert!(!FeedbackRoles::NONE.accepts_feedback());
        assert_eq!(FeedbackRoles::default(), FeedbackRoles::NONE);

        let pace = FeedbackRoles::producer();
        assert!(pace.produces() && !pace.accepts_feedback());
        assert_eq!(pace.to_string(), "producer");

        let select = FeedbackRoles::exploiter().with_relayer();
        assert!(select.exploits() && select.relays() && select.accepts_feedback());
        assert_eq!(select.to_string(), "exploiter+relayer");

        let shuffle = FeedbackRoles::relayer();
        assert!(shuffle.accepts_feedback());

        let wrapped = shuffle.union(FeedbackRoles::producer());
        assert!(wrapped.produces() && wrapped.relays());
        assert_eq!(wrapped.to_string(), "producer+relayer");
        assert_eq!(FeedbackRoles::NONE.union(FeedbackRoles::NONE), FeedbackRoles::NONE);
    }

    #[test]
    fn default_suppresses_nothing() {
        struct Passive;
        impl FeedbackExploiter for Passive {
            fn exploit(&mut self, _f: &FeedbackPunctuation) -> Characterization {
                Characterization::null_response()
            }
        }
        let p = Passive;
        let t = Tuple::new(schema(), vec![Value::Int(1), Value::Float(1.0)]);
        assert!(!p.suppresses(&t));
    }
}
