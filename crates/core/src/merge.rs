//! Cross-partition feedback merging.
//!
//! When a stateful operator is replicated N ways behind a hash partitioner,
//! feedback punctuation arriving *from* the replicas must be combined before
//! it may cross the partition point and continue toward the source: a tuple
//! routes to exactly one replica, and the pattern language cannot express the
//! hash route, so a subset is safe to assume away upstream of the partitioner
//! only when **every** replica has asserted it.  [`FeedbackMerge`] implements
//! that rule as a lattice meet over per-replica assertions:
//!
//! * **Exact unanimity** — an arbitrary feedback pattern is released once all
//!   N replicas have asserted an *equal* `(intent, pattern)` pair.  This is
//!   the common case when feedback born downstream of the merge point is
//!   broadcast to every replica and each replica relays it unchanged: the
//!   relays preserve the original message id, so the released message carries
//!   the lineage of the originating punctuation.
//! * **Threshold meet** — feedback whose pattern is a single strict upper
//!   bound (`attribute < v`, the shape produced by
//!   [`ExplicitPolicy::feedback`](crate::policy::ExplicitPolicy::feedback)
//!   disorder bounds) is merged *by value*: each replica's latest bound is
//!   tracked, and once every replica has one, the meet — the **minimum**
//!   bound — is released.  Replicas running per-replica policies thus combine
//!   even when their cutoffs differ, and the released bound only ever
//!   advances.
//!
//! The same conservative rule is applied to all three intents.  For assumed
//! (`¬`) and demanded (`!`) feedback unanimity is required for correctness —
//! exploiting either may drop tuples, and a tuple suppressed upstream of the
//! partitioner is invisible to *every* replica.  For desired (`?`) feedback
//! unanimity is not required for correctness (prioritization never changes
//! the result), but the merge keeps the rule so antecedents are only
//! re-prioritized on behalf of the whole replica group.

use crate::intent::{FeedbackIntent, FeedbackPunctuation};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::Value;

/// One exact `(intent, pattern)` pair awaiting unanimity.
#[derive(Clone)]
struct ExactPending {
    intent: FeedbackIntent,
    pattern: Pattern,
    /// Which replicas have asserted this pair so far.
    asserted: Vec<bool>,
    /// Membership snapshot at entry creation: only replicas active when the
    /// round started owe a vote.  A replica scaled *out* mid-round must not
    /// be waited on (it never saw the data), and one scaled *in* mid-round
    /// stops being waited on via the intersection with the current
    /// membership (see [`FeedbackMerge::set_active`]).
    required: Vec<bool>,
    /// The most recent assertion, returned (unchanged, lineage intact) on
    /// release.
    latest: FeedbackPunctuation,
}

/// Per-replica strict upper bounds on one `(intent, attribute)`, merged by
/// minimum.
#[derive(Clone)]
struct BoundPending {
    intent: FeedbackIntent,
    attribute: String,
    /// Latest bound asserted by each replica (a replica's newer bound
    /// supersedes its older one).
    bounds: Vec<Option<Value>>,
    /// Membership snapshot at entry creation (see [`ExactPending::required`]).
    required: Vec<bool>,
    /// The bound most recently released downstream of the merge; releases are
    /// monotone, so an unchanged meet is not re-released.
    released: Option<Value>,
    /// The assertion that triggered tracking, kept for lineage on release.
    latest: FeedbackPunctuation,
}

/// Combines feedback punctuation from N replicas of a partitioned operator,
/// releasing a message upstream only when every replica has asserted it (see
/// the module docs for the exact lattice rules).
///
/// The combinator is executor-agnostic: a partitioning operator calls
/// [`assert_from`](FeedbackMerge::assert_from) with the replica index a
/// feedback message arrived from, and relays the returned message (if any)
/// toward the source.
#[derive(Clone)]
pub struct FeedbackMerge {
    replicas: usize,
    /// Current replica membership (elastic stages scale replicas in and out;
    /// fixed stages leave every slot active forever).
    active: Vec<bool>,
    exact: Vec<ExactPending>,
    bounds: Vec<BoundPending>,
    released: u64,
    evicted: u64,
}

impl FeedbackMerge {
    /// Bound on exact assertions awaiting unanimity.  Replica-specific
    /// feedback that its siblings never echo (e.g. a per-replica adaptive
    /// policy) would otherwise accumulate without limit on a long-running
    /// stream; when the bound is hit the *oldest* pending assertion is
    /// evicted.  Eviction is safe — feedback is an optimization and the null
    /// response is always correct (paper Definition 1) — it can only delay a
    /// release if the evicted pattern is asserted again later.
    pub const MAX_PENDING: usize = 1024;

    /// Creates a merge point over `replicas` replicas (clamped to at least 1),
    /// all initially active.
    pub fn new(replicas: usize) -> Self {
        let replicas = replicas.max(1);
        FeedbackMerge {
            replicas,
            active: vec![true; replicas],
            exact: Vec::new(),
            bounds: Vec::new(),
            released: 0,
            evicted: 0,
        }
    }

    /// Number of replicas feeding this merge point.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Current membership flags (one per replica slot).
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Replaces the replica membership (missing trailing flags deactivate
    /// their slots) and re-evaluates every pending assertion under the new
    /// set, returning any newly released messages.
    ///
    /// Unanimity is always over the *current* replica set intersected with
    /// the membership at round start: a replica scaled out mid-round stops
    /// blocking rounds it already owed a vote to, and a replica scaled in
    /// mid-round is not retroactively owed votes for rounds that predate it.
    /// A release still requires at least one assertion from a currently
    /// active replica, so an all-dormant round never releases on its own.
    pub fn set_active(&mut self, flags: &[bool]) -> Vec<FeedbackPunctuation> {
        self.active = (0..self.replicas).map(|i| flags.get(i).copied().unwrap_or(false)).collect();
        let mut out = Vec::new();
        let mut index = 0;
        while index < self.exact.len() {
            if exact_complete(&self.exact[index], &self.active) {
                let entry = self.exact.remove(index);
                self.released += 1;
                out.push(entry.latest);
            } else {
                index += 1;
            }
        }
        for index in 0..self.bounds.len() {
            if let Some(released) = self.release_bound(index) {
                self.released += 1;
                out.push(released);
            }
        }
        out
    }

    /// Number of distinct assertions still awaiting unanimity.
    pub fn pending(&self) -> usize {
        self.exact.len() + self.bounds.iter().filter(|b| b.released.is_none()).count()
    }

    /// Number of merged messages released so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Number of pending assertions evicted at [`MAX_PENDING`](Self::MAX_PENDING).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Records that `replica` asserted `feedback`.  Returns the merged
    /// message once every replica has asserted it (and `None` until then, or
    /// for an out-of-range replica index).
    pub fn assert_from(
        &mut self,
        replica: usize,
        feedback: FeedbackPunctuation,
    ) -> Option<FeedbackPunctuation> {
        if replica >= self.replicas {
            return None;
        }
        let result = match upper_bound_of(feedback.pattern()) {
            Some((attribute, bound)) => self.assert_bound(replica, feedback, attribute, bound),
            None => self.assert_exact(replica, feedback),
        };
        if result.is_some() {
            self.released += 1;
        }
        result
    }

    fn assert_exact(
        &mut self,
        replica: usize,
        feedback: FeedbackPunctuation,
    ) -> Option<FeedbackPunctuation> {
        let position = self
            .exact
            .iter()
            .position(|p| p.intent == feedback.intent() && p.pattern == *feedback.pattern());
        let index = match position {
            Some(i) => i,
            None => {
                if self.exact.len() >= Self::MAX_PENDING {
                    self.exact.remove(0); // oldest first; see MAX_PENDING
                    self.evicted += 1;
                }
                self.exact.push(ExactPending {
                    intent: feedback.intent(),
                    pattern: feedback.pattern().clone(),
                    asserted: vec![false; self.replicas],
                    required: self.active.clone(),
                    latest: feedback.clone(),
                });
                self.exact.len() - 1
            }
        };
        let entry = &mut self.exact[index];
        entry.asserted[replica] = true;
        entry.latest = feedback;
        if exact_complete(entry, &self.active) {
            // `remove`, not `swap_remove`: insertion order doubles as age
            // order for the oldest-first eviction above.
            let entry = self.exact.remove(index);
            Some(entry.latest)
        } else {
            None
        }
    }

    fn assert_bound(
        &mut self,
        replica: usize,
        feedback: FeedbackPunctuation,
        attribute: String,
        bound: Value,
    ) -> Option<FeedbackPunctuation> {
        let position = self
            .bounds
            .iter()
            .position(|b| b.intent == feedback.intent() && b.attribute == attribute);
        let index = match position {
            Some(i) => i,
            None => {
                self.bounds.push(BoundPending {
                    intent: feedback.intent(),
                    attribute,
                    bounds: vec![None; self.replicas],
                    required: self.active.clone(),
                    released: None,
                    latest: feedback.clone(),
                });
                self.bounds.len() - 1
            }
        };
        let entry = &mut self.bounds[index];
        // A replica's newer bound supersedes its older one (cutoffs only
        // advance under a disorder policy, but take the max defensively).
        entry.bounds[replica] = Some(match entry.bounds[replica].take() {
            Some(prev) if prev.total_cmp(&bound).is_ge() => prev,
            _ => bound,
        });
        entry.latest = feedback;
        self.release_bound(index)
    }

    /// Recomputes the meet of bound entry `index` under the current
    /// membership, releasing the merged cutoff if it advanced.
    fn release_bound(&mut self, index: usize) -> Option<FeedbackPunctuation> {
        let entry = &mut self.bounds[index];
        let meet = bound_meet(entry, &self.active)?;
        let advanced = match &entry.released {
            None => true,
            Some(prev) => meet.total_cmp(prev).is_gt(),
        };
        if !advanced {
            return None;
        }
        // Build the released message *before* recording the release: if the
        // pattern cannot be constructed over this schema, the watermark must
        // not advance, or the merged cutoff would silently never be delivered.
        let pattern = Pattern::for_attributes(
            entry.latest.schema().clone(),
            &[(entry.attribute.as_str(), PatternItem::Lt(meet.clone()))],
        )
        .ok()?;
        entry.released = Some(meet);
        let issuer = entry.latest.issuer().to_string();
        Some(entry.latest.relay(pattern, issuer))
    }
}

/// Unanimity over the current replica set: every replica that owed a vote
/// when the round started *and* is still active has asserted, and at least
/// one currently active replica has asserted.
fn exact_complete(entry: &ExactPending, active: &[bool]) -> bool {
    let mut any_active_vote = false;
    for (slot, is_active) in active.iter().enumerate() {
        if entry.required[slot] && *is_active && !entry.asserted[slot] {
            return false;
        }
        if *is_active && entry.asserted[slot] {
            any_active_vote = true;
        }
    }
    any_active_vote
}

/// The minimum bound over currently active replicas, once every replica that
/// owed one (required at round start and still active) has reported — or
/// `None` while the round is incomplete or no active replica has a bound.
/// Bounds volunteered by replicas outside the required set still tighten the
/// meet (taking the minimum is always conservative).
fn bound_meet(entry: &BoundPending, active: &[bool]) -> Option<Value> {
    let mut meet: Option<Value> = None;
    for (slot, is_active) in active.iter().enumerate() {
        match (&entry.bounds[slot], is_active) {
            (None, true) if entry.required[slot] => return None,
            (Some(bound), true) => {
                meet = Some(match meet.take() {
                    Some(current) if current.total_cmp(bound).is_le() => current,
                    _ => bound.clone(),
                });
            }
            _ => {}
        }
    }
    meet
}

impl std::fmt::Debug for FeedbackMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedbackMerge")
            .field("replicas", &self.replicas)
            .field("pending", &self.pending())
            .field("released", &self.released)
            .finish()
    }
}

/// The `(attribute, bound)` of a single-attribute strict-upper-bound pattern
/// (`attribute < v`), the shape produced by disorder-bound policies — or
/// `None` for any other pattern shape.
fn upper_bound_of(pattern: &Pattern) -> Option<(String, Value)> {
    let constrained = pattern.constrained_attributes();
    if constrained.len() != 1 {
        return None;
    }
    let index = constrained[0];
    match pattern.item(index)? {
        PatternItem::Lt(v) => {
            let name = pattern.schema().field(index).ok()?.name().to_string();
            Some((name, v.clone()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("segment", DataType::Int)])
    }

    fn segment_eq(seg: i64) -> Pattern {
        Pattern::for_attributes(schema(), &[("segment", PatternItem::Eq(Value::Int(seg)))]).unwrap()
    }

    fn before(secs: i64) -> Pattern {
        Pattern::for_attributes(
            schema(),
            &[("timestamp", PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(secs))))],
        )
        .unwrap()
    }

    #[test]
    fn exact_pattern_released_only_on_unanimity() {
        let mut merge = FeedbackMerge::new(3);
        let fb = FeedbackPunctuation::assumed(segment_eq(4), "sink");
        assert!(merge.assert_from(0, fb.clone()).is_none());
        assert!(merge.assert_from(0, fb.clone()).is_none(), "re-assertion is idempotent");
        assert!(merge.assert_from(2, fb.clone()).is_none());
        assert_eq!(merge.pending(), 1);
        let released = merge.assert_from(1, fb.clone()).expect("third replica completes");
        assert_eq!(released.id(), fb.id(), "lineage preserved across the merge");
        assert_eq!(released.pattern(), fb.pattern());
        assert_eq!(merge.pending(), 0);
        assert_eq!(merge.released(), 1);
    }

    #[test]
    fn distinct_patterns_and_intents_do_not_combine() {
        let mut merge = FeedbackMerge::new(2);
        assert!(merge.assert_from(0, FeedbackPunctuation::assumed(segment_eq(1), "a")).is_none());
        assert!(merge.assert_from(1, FeedbackPunctuation::assumed(segment_eq(2), "b")).is_none());
        assert!(merge.assert_from(1, FeedbackPunctuation::desired(segment_eq(1), "b")).is_none());
        assert_eq!(merge.pending(), 3, "three independent pending assertions");
    }

    #[test]
    fn upper_bounds_merge_to_the_minimum() {
        let mut merge = FeedbackMerge::new(3);
        assert!(merge.assert_from(0, FeedbackPunctuation::assumed(before(100), "r0")).is_none());
        assert!(merge.assert_from(1, FeedbackPunctuation::assumed(before(80), "r1")).is_none());
        let released = merge
            .assert_from(2, FeedbackPunctuation::assumed(before(120), "r2"))
            .expect("all replicas bounded");
        assert_eq!(
            released.pattern().item_for("timestamp").unwrap(),
            &PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(80))),
            "the meet is the minimum bound"
        );
        assert_eq!(released.hops(), 1, "the merged bound is a relay step");
    }

    #[test]
    fn bound_releases_are_monotone() {
        let mut merge = FeedbackMerge::new(2);
        merge.assert_from(0, FeedbackPunctuation::assumed(before(50), "r0"));
        let first = merge.assert_from(1, FeedbackPunctuation::assumed(before(60), "r1")).unwrap();
        assert_eq!(
            first.pattern().item_for("timestamp").unwrap(),
            &PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(50)))
        );
        // Replica 1 advances, but the meet (still 50) has not: nothing new.
        assert!(merge.assert_from(1, FeedbackPunctuation::assumed(before(90), "r1")).is_none());
        // Replica 0 advances past the released bound: the meet advances to 90.
        let second = merge.assert_from(0, FeedbackPunctuation::assumed(before(200), "r0")).unwrap();
        assert_eq!(
            second.pattern().item_for("timestamp").unwrap(),
            &PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(90)))
        );
        // A regressing bound from a replica never regresses the release...
        assert!(merge.assert_from(0, FeedbackPunctuation::assumed(before(10), "r0")).is_none());
        // ...and the meet advances again once the slowest replica moves.
        let third = merge.assert_from(1, FeedbackPunctuation::assumed(before(95), "r1")).unwrap();
        assert_eq!(
            third.pattern().item_for("timestamp").unwrap(),
            &PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(95)))
        );
        assert_eq!(merge.released(), 3);
    }

    #[test]
    fn exact_pending_is_bounded_with_oldest_eviction() {
        let mut merge = FeedbackMerge::new(2);
        for seg in 0..(FeedbackMerge::MAX_PENDING as i64 + 10) {
            assert!(merge
                .assert_from(0, FeedbackPunctuation::assumed(segment_eq(seg), "r0"))
                .is_none());
        }
        assert_eq!(merge.pending(), FeedbackMerge::MAX_PENDING);
        assert_eq!(merge.evicted(), 10);
        // The oldest assertions were evicted: re-asserting segment 0 from the
        // other replica starts a fresh round rather than completing one...
        assert!(merge.assert_from(1, FeedbackPunctuation::assumed(segment_eq(0), "r1")).is_none());
        // ...while a surviving assertion still completes on unanimity.
        let seg = FeedbackMerge::MAX_PENDING as i64 + 5;
        assert!(merge
            .assert_from(1, FeedbackPunctuation::assumed(segment_eq(seg), "r1"))
            .is_some());
    }

    #[test]
    fn out_of_range_replica_is_ignored() {
        let mut merge = FeedbackMerge::new(2);
        assert!(merge.assert_from(7, FeedbackPunctuation::assumed(segment_eq(1), "x")).is_none());
        assert_eq!(merge.pending(), 0);
    }

    #[test]
    fn single_replica_merge_is_transparent() {
        let mut merge = FeedbackMerge::new(1);
        let fb = FeedbackPunctuation::desired(segment_eq(3), "sink");
        let released = merge.assert_from(0, fb.clone()).expect("one replica is unanimity");
        assert_eq!(released.id(), fb.id());
        assert_eq!(FeedbackMerge::new(0).replicas(), 1, "clamped");
    }

    #[test]
    fn scaled_out_replica_owes_no_vote() {
        // 4 slots, only 0 and 1 active: unanimity is over the active pair —
        // the dormant replicas never see data and must not block the merge.
        let mut merge = FeedbackMerge::new(4);
        assert!(merge.set_active(&[true, true, false, false]).is_empty());
        assert_eq!(merge.active(), &[true, true, false, false]);
        let fb = FeedbackPunctuation::assumed(segment_eq(7), "sink");
        assert!(merge.assert_from(0, fb.clone()).is_none());
        let released = merge.assert_from(1, fb.clone()).expect("dormant slots owe no vote");
        assert_eq!(released.id(), fb.id());
    }

    #[test]
    fn deactivating_a_straggler_releases_the_round_it_was_blocking() {
        let mut merge = FeedbackMerge::new(3);
        let fb = FeedbackPunctuation::assumed(segment_eq(2), "sink");
        assert!(merge.assert_from(0, fb.clone()).is_none());
        assert!(merge.assert_from(1, fb.clone()).is_none());
        // Replica 2 scales out mid-round without ever voting: the round it
        // was blocking releases at the membership switch.
        let released = merge.set_active(&[true, true, false]);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id(), fb.id());
        assert_eq!(merge.pending(), 0);
        assert_eq!(merge.released(), 1);
    }

    #[test]
    fn stale_bound_of_scaled_out_replica_stops_capping_the_meet() {
        let mut merge = FeedbackMerge::new(3);
        assert!(merge.assert_from(0, FeedbackPunctuation::assumed(before(100), "r0")).is_none());
        assert!(merge.assert_from(1, FeedbackPunctuation::assumed(before(80), "r1")).is_none());
        // Replica 2 never reported a cutoff; scaling it out releases the meet
        // of the remaining members instead of waiting forever.
        let released = merge.set_active(&[true, true, false]);
        assert_eq!(released.len(), 1);
        assert_eq!(
            released[0].pattern().item_for("timestamp").unwrap(),
            &PatternItem::Lt(Value::Timestamp(Timestamp::from_secs(80)))
        );
    }

    #[test]
    fn newly_activated_replica_is_not_owed_votes_for_old_rounds() {
        let mut merge = FeedbackMerge::new(3);
        merge.set_active(&[true, true, false]);
        let fb = FeedbackPunctuation::assumed(segment_eq(9), "sink");
        assert!(merge.assert_from(0, fb.clone()).is_none());
        // Scale-out happens mid-round: slot 2 joins the membership but the
        // round started without it, so only slots 0 and 1 owe votes.
        assert!(merge.set_active(&[true, true, true]).is_empty());
        assert!(merge.assert_from(1, fb.clone()).is_some(), "old round completes without slot 2");
        // A round started *after* the scale-out owes all three votes.
        let fb2 = FeedbackPunctuation::assumed(segment_eq(10), "sink");
        assert!(merge.assert_from(0, fb2.clone()).is_none());
        assert!(merge.assert_from(1, fb2.clone()).is_none());
        assert!(merge.assert_from(2, fb2.clone()).is_some());
    }

    #[test]
    fn a_release_requires_at_least_one_active_vote() {
        let mut merge = FeedbackMerge::new(2);
        let fb = FeedbackPunctuation::assumed(segment_eq(3), "sink");
        assert!(merge.assert_from(0, fb.clone()).is_none());
        // Slot 0 (the only voter) goes dormant: the pending round must not
        // release on the strength of dormant votes alone.
        assert!(merge.set_active(&[false, true]).is_empty());
        assert_eq!(merge.pending(), 1, "round stays pending for the active slot");
        assert!(merge.assert_from(1, fb.clone()).is_some(), "the active slot completes it");
    }

    #[test]
    fn debug_renders_counts() {
        let mut merge = FeedbackMerge::new(2);
        merge.assert_from(0, FeedbackPunctuation::assumed(segment_eq(1), "a"));
        let s = format!("{merge:?}");
        assert!(s.contains("replicas: 2") && s.contains("pending: 1"), "{s}");
    }
}
