//! Output→input schema mappings and safe propagation of feedback patterns.
//!
//! When an operator relays feedback to its antecedents it must rewrite the
//! feedback pattern, which is expressed over the operator's *output* schema,
//! into each antecedent's *input* schema (paper Section 4.2).  Such a
//! rewrite exists only for attributes that map one-to-one onto an input
//! attribute; and — critically — when the feedback constrains attributes from
//! *more than one* input at once (the `¬[50,*,*,50]` example), no safe
//! per-input propagation exists: sending the projections separately could
//! suppress tuples (such as `<49,2,3,50>`) that the original feedback does not
//! describe.

use crate::error::{FeedbackError, FeedbackResult};
use crate::intent::FeedbackPunctuation;
use dsms_punctuation::Pattern;
use dsms_types::{SchemaRef, TypeResult};

/// A mapping from an operator's output schema onto one input schema.
///
/// `sources[i]` gives, for input attribute `i`, the output attribute it
/// corresponds to (or `None` when the input attribute does not appear in the
/// output, e.g. an attribute projected away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeMapping {
    output: SchemaRef,
    input: SchemaRef,
    sources: Vec<Option<usize>>,
}

impl AttributeMapping {
    /// Creates a mapping by explicitly listing, for each input attribute, the
    /// corresponding output attribute index.
    pub fn new(
        output: SchemaRef,
        input: SchemaRef,
        sources: Vec<Option<usize>>,
    ) -> FeedbackResult<Self> {
        if sources.len() != input.arity() {
            return Err(FeedbackError::SchemaMismatch {
                detail: format!(
                    "mapping lists {} sources but input schema {} has {} attributes",
                    sources.len(),
                    input.describe(),
                    input.arity()
                ),
            });
        }
        for s in sources.iter().flatten() {
            if *s >= output.arity() {
                return Err(FeedbackError::SchemaMismatch {
                    detail: format!(
                        "mapping references output attribute {s} but output schema {} has {} attributes",
                        output.describe(),
                        output.arity()
                    ),
                });
            }
        }
        Ok(AttributeMapping { output, input, sources })
    }

    /// Builds a mapping by matching attribute *names* between the output and
    /// input schemas — the common case for operators that carry attributes
    /// through unchanged (select, union, PACE, aggregates keeping group
    /// attributes).
    pub fn by_name(output: SchemaRef, input: SchemaRef) -> TypeResult<Self> {
        let sources = input.fields().iter().map(|f| output.index_of(f.name()).ok()).collect();
        Ok(AttributeMapping { output, input, sources })
    }

    /// Builds a mapping from explicit `(output_attribute, input_attribute)`
    /// name pairs; input attributes not listed are unmapped.
    pub fn by_pairs(
        output: SchemaRef,
        input: SchemaRef,
        pairs: &[(&str, &str)],
    ) -> TypeResult<Self> {
        let mut sources: Vec<Option<usize>> = vec![None; input.arity()];
        for (out_name, in_name) in pairs {
            let out_idx = output.index_of(out_name)?;
            let in_idx = input.index_of(in_name)?;
            sources[in_idx] = Some(out_idx);
        }
        Ok(AttributeMapping { output, input, sources })
    }

    /// The output schema.
    pub fn output(&self) -> &SchemaRef {
        &self.output
    }

    /// The input schema.
    pub fn input(&self) -> &SchemaRef {
        &self.input
    }

    /// For each input attribute, the output attribute it maps from.
    pub fn sources(&self) -> &[Option<usize>] {
        &self.sources
    }

    /// Output attribute indices that are covered by this mapping (i.e. have a
    /// corresponding input attribute).
    pub fn covered_output_attributes(&self) -> Vec<usize> {
        let mut covered: Vec<usize> = self.sources.iter().flatten().copied().collect();
        covered.sort_unstable();
        covered.dedup();
        covered
    }

    /// Rewrites an output-schema pattern into the input schema.  Constrained
    /// output attributes without a corresponding input attribute are *not*
    /// silently widened — that would be unsafe — instead the rewrite reports
    /// them so the caller can decide (see [`propagate_through`]).
    pub fn rewrite(&self, pattern: &Pattern) -> FeedbackResult<(Pattern, Vec<usize>)> {
        if pattern.schema() != &self.output {
            return Err(FeedbackError::SchemaMismatch {
                detail: format!(
                    "pattern is over {} but mapping expects output {}",
                    pattern.schema().describe(),
                    self.output.describe()
                ),
            });
        }
        let covered = self.covered_output_attributes();
        let uncovered_constrained: Vec<usize> = pattern
            .constrained_attributes()
            .iter()
            .copied()
            .filter(|idx| !covered.contains(idx))
            .collect();
        let rewritten = pattern.remap(self.input.clone(), &self.sources)?;
        Ok((rewritten, uncovered_constrained))
    }
}

/// The outcome of attempting to propagate feedback to one antecedent input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationOutcome {
    /// Safe propagation exists; the rewritten feedback is ready to send.
    Propagate(FeedbackPunctuation),
    /// The feedback constrains no attribute visible to this input; relaying
    /// an unconstrained pattern would describe *everything*, so nothing is
    /// sent (but local exploitation may still be possible).
    NothingToPropagate,
    /// No safe propagation exists for this input (the feedback constrains
    /// attributes this input cannot see, so projecting it would widen the
    /// described set and could suppress tuples the original feedback does not
    /// describe).
    Unsafe {
        /// Output attribute indices that are constrained but invisible to the
        /// input.
        uncovered_attributes: Vec<usize>,
    },
}

/// Rewrites `feedback` for one antecedent input, enforcing the safe-propagation
/// rule of Section 4.2:
///
/// * if **every** constrained attribute of the feedback maps onto the input,
///   propagation is safe → [`PropagationOutcome::Propagate`];
/// * if **none** does, there is nothing to say to this input →
///   [`PropagationOutcome::NothingToPropagate`];
/// * if **some but not all** do, per-input projection would widen the
///   described subset (the `¬[50,*,*,50]` case) → [`PropagationOutcome::Unsafe`].
///
/// For multi-input operators the caller applies this per input; it is
/// perfectly possible (and common, cf. Table 2) for propagation to be safe
/// toward one input and unsafe toward the other.
pub fn propagate_through(
    feedback: &FeedbackPunctuation,
    mapping: &AttributeMapping,
    relayer: &str,
) -> FeedbackResult<PropagationOutcome> {
    let (rewritten, uncovered) = mapping.rewrite(feedback.pattern())?;
    let constrained = feedback.pattern().constrained_attributes();
    if constrained.is_empty() {
        return Ok(PropagationOutcome::NothingToPropagate);
    }
    if uncovered.is_empty() {
        Ok(PropagationOutcome::Propagate(feedback.relay(rewritten, relayer)))
    } else if uncovered.len() == constrained.len() {
        Ok(PropagationOutcome::NothingToPropagate)
    } else {
        Ok(PropagationOutcome::Unsafe { uncovered_attributes: uncovered })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::PatternItem;
    use dsms_types::{DataType, Schema, Value};

    /// The paper's Section 4.2 example: A(a,t,id) ⋈ B(t,id,b) → C(a,t,id,b).
    fn schemas() -> (SchemaRef, SchemaRef, SchemaRef) {
        let a =
            Schema::shared(&[("a", DataType::Int), ("t", DataType::Int), ("id", DataType::Int)]);
        let b =
            Schema::shared(&[("t", DataType::Int), ("id", DataType::Int), ("b", DataType::Int)]);
        let c = Schema::shared(&[
            ("a", DataType::Int),
            ("t", DataType::Int),
            ("id", DataType::Int),
            ("b", DataType::Int),
        ]);
        (a, b, c)
    }

    fn feedback(items: &[(&str, PatternItem)]) -> FeedbackPunctuation {
        let (_, _, c) = schemas();
        FeedbackPunctuation::assumed(Pattern::for_attributes(c, items).unwrap(), "JOIN")
    }

    #[test]
    fn mapping_by_name_matches_shared_attributes() {
        let (a, _, c) = schemas();
        let m = AttributeMapping::by_name(c, a).unwrap();
        assert_eq!(m.sources(), &[Some(0), Some(1), Some(2)]);
        assert_eq!(m.covered_output_attributes(), vec![0, 1, 2]);
    }

    #[test]
    fn join_key_feedback_propagates_to_both_inputs() {
        // f = ¬[*,3,4,*] → ¬[*,3,4] to A and ¬[3,4,*] to B.
        let (a, b, c) = schemas();
        let f = feedback(&[
            ("t", PatternItem::Eq(Value::Int(3))),
            ("id", PatternItem::Eq(Value::Int(4))),
        ]);

        let to_a = propagate_through(&f, &AttributeMapping::by_name(c.clone(), a).unwrap(), "JOIN")
            .unwrap();
        match to_a {
            PropagationOutcome::Propagate(g) => assert_eq!(g.pattern().to_string(), "[*, 3, 4]"),
            other => panic!("expected propagation to A, got {other:?}"),
        }
        let to_b =
            propagate_through(&f, &AttributeMapping::by_name(c, b).unwrap(), "JOIN").unwrap();
        match to_b {
            PropagationOutcome::Propagate(g) => assert_eq!(g.pattern().to_string(), "[3, 4, *]"),
            other => panic!("expected propagation to B, got {other:?}"),
        }
    }

    #[test]
    fn left_only_feedback_propagates_to_left_only() {
        // f = ¬[50,*,*,*] → ¬[50,*,*] to A; nothing to B.
        let (a, b, c) = schemas();
        let f = feedback(&[("a", PatternItem::Eq(Value::Int(50)))]);
        match propagate_through(&f, &AttributeMapping::by_name(c.clone(), a).unwrap(), "JOIN")
            .unwrap()
        {
            PropagationOutcome::Propagate(g) => assert_eq!(g.pattern().to_string(), "[50, *, *]"),
            other => panic!("expected propagation to A, got {other:?}"),
        }
        assert_eq!(
            propagate_through(&f, &AttributeMapping::by_name(c, b).unwrap(), "JOIN").unwrap(),
            PropagationOutcome::NothingToPropagate
        );
    }

    #[test]
    fn cross_input_feedback_has_no_safe_propagation() {
        // f = ¬[50,*,*,50]: constrains `a` (left-only) and `b` (right-only);
        // propagating either projection alone could suppress <49,2,3,50>.
        let (a, b, c) = schemas();
        let f = feedback(&[
            ("a", PatternItem::Eq(Value::Int(50))),
            ("b", PatternItem::Eq(Value::Int(50))),
        ]);
        for input in [a, b] {
            match propagate_through(
                &f,
                &AttributeMapping::by_name(c.clone(), input).unwrap(),
                "JOIN",
            )
            .unwrap()
            {
                PropagationOutcome::Unsafe { uncovered_attributes } => {
                    assert_eq!(uncovered_attributes.len(), 1);
                }
                other => panic!("expected unsafe propagation, got {other:?}"),
            }
        }
    }

    #[test]
    fn unconstrained_feedback_propagates_nothing() {
        let (a, _, c) = schemas();
        let f = FeedbackPunctuation::assumed(Pattern::all_wildcards(c.clone()), "JOIN");
        assert_eq!(
            propagate_through(&f, &AttributeMapping::by_name(c, a).unwrap(), "JOIN").unwrap(),
            PropagationOutcome::NothingToPropagate
        );
    }

    #[test]
    fn mapping_validates_arity_and_indices() {
        let (a, _, c) = schemas();
        assert!(AttributeMapping::new(c.clone(), a.clone(), vec![Some(0)]).is_err());
        assert!(AttributeMapping::new(c.clone(), a.clone(), vec![Some(99), None, None]).is_err());
        assert!(AttributeMapping::new(c, a, vec![Some(0), Some(1), Some(2)]).is_ok());
    }

    #[test]
    fn by_pairs_maps_renamed_attributes() {
        // An aggregate with output (minute, avg_speed) and input (timestamp, speed):
        // only the group attribute maps, under a different name.
        let out = Schema::shared(&[("minute", DataType::Int), ("avg_speed", DataType::Float)]);
        let inp = Schema::shared(&[("timestamp", DataType::Int), ("speed", DataType::Float)]);
        let m = AttributeMapping::by_pairs(out.clone(), inp, &[("minute", "timestamp")]).unwrap();
        assert_eq!(m.sources(), &[Some(0), None]);

        let f = FeedbackPunctuation::assumed(
            Pattern::for_attributes(out, &[("minute", PatternItem::Lt(Value::Int(9)))]).unwrap(),
            "AVERAGE",
        );
        match propagate_through(&f, &m, "AVERAGE").unwrap() {
            PropagationOutcome::Propagate(g) => assert_eq!(g.pattern().to_string(), "[<9, *]"),
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_rejects_wrong_schema() {
        let (a, b, c) = schemas();
        let m = AttributeMapping::by_name(c, a.clone()).unwrap();
        let foreign = Pattern::all_wildcards(b);
        assert!(m.rewrite(&foreign).is_err());
        let _ = a;
    }
}
