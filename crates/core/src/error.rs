//! Error types for the feedback layer.

use dsms_types::TypeError;
use std::fmt;

/// Result alias used throughout the feedback layer.
pub type FeedbackResult<T> = Result<T, FeedbackError>;

/// Errors raised when constructing, propagating or exploiting feedback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedbackError {
    /// A lower-level type/schema error.
    Type(TypeError),
    /// The feedback's pattern is defined over a different schema than required.
    SchemaMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// No safe propagation of the feedback onto the requested input exists
    /// (paper Section 4.2, e.g. `¬[50,*,*,50]` over a join).
    NoSafePropagation {
        /// Why propagation is unsafe.
        reason: String,
    },
    /// The feedback is not supportable under the stream's punctuation scheme
    /// (it constrains undelimited attributes and would accumulate state,
    /// Section 4.4).
    Unsupportable {
        /// The undelimited attributes the feedback constrains.
        attributes: Vec<String>,
    },
    /// An operation that requires an intent other than the one carried.
    WrongIntent {
        /// What the operation expected.
        expected: &'static str,
        /// What the feedback carried.
        actual: &'static str,
    },
    /// Feedback retraction was requested but the model forbids it (paper
    /// Section 4.4: "our current model assumes there are no retractions").
    RetractionUnsupported,
}

impl fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackError::Type(e) => write!(f, "{e}"),
            FeedbackError::SchemaMismatch { detail } => {
                write!(f, "feedback schema mismatch: {detail}")
            }
            FeedbackError::NoSafePropagation { reason } => {
                write!(f, "no safe propagation exists: {reason}")
            }
            FeedbackError::Unsupportable { attributes } => write!(
                f,
                "feedback constrains undelimited attributes ({}) and would accumulate state",
                attributes.join(", ")
            ),
            FeedbackError::WrongIntent { expected, actual } => {
                write!(f, "operation requires {expected} feedback, got {actual}")
            }
            FeedbackError::RetractionUnsupported => {
                write!(f, "feedback retraction is not supported; enacted feedback is final")
            }
        }
    }
}

impl std::error::Error for FeedbackError {}

impl From<TypeError> for FeedbackError {
    fn from(e: TypeError) -> Self {
        FeedbackError::Type(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FeedbackError::Unsupportable { attributes: vec!["amount".into()] };
        assert!(e.to_string().contains("amount"));
        let e =
            FeedbackError::NoSafePropagation { reason: "value constraints on both sides".into() };
        assert!(e.to_string().contains("value constraints"));
        assert!(FeedbackError::RetractionUnsupported.to_string().contains("final"));
    }

    #[test]
    fn type_errors_convert() {
        let te = TypeError::DuplicateAttribute { name: "x".into() };
        let fe: FeedbackError = te.clone().into();
        assert_eq!(fe, FeedbackError::Type(te));
    }
}
