//! Per-column batch summaries.
//!
//! A [`ColumnSummary`] condenses one attribute of a batch of tuples into four
//! numbers — row count, null count, minimum and maximum under [`Value`]'s
//! *total* order — which is exactly the information a punctuation pattern
//! needs to classify the whole batch at once: "no row of this page can match
//! `speed >= 50`" (max below 50) or "every row matches" (min at or above 50
//! and no nulls).  The batch-level guard evaluation in `dsms-punctuation`
//! (`PatternItem::matches_summary`) and the `FeedbackRegistry::decide_batch`
//! fast path in `dsms-feedback` are built on these summaries; the columnar
//! page in `dsms-engine` computes them on demand per column.
//!
//! Summaries use the same comparator as per-tuple pattern matching
//! ([`Value`]'s total order), so a range conclusion drawn from a summary is
//! exactly the conclusion per-tuple evaluation would reach — never an
//! approximation.

use crate::tuple::Tuple;
use crate::value::Value;

/// Min/max/null summary of one column of a batch.
///
/// `min` and `max` range over the **non-null** values only (a null reading is
/// "unknown" and matches no relational predicate), ordered by [`Value`]'s
/// total order — the same comparator pattern items use, which is what makes
/// summary-based batch conclusions exact.
///
/// ```
/// use dsms_types::{ColumnSummary, Value};
///
/// let mut summary = ColumnSummary::new();
/// for v in [Value::Int(40), Value::Null, Value::Int(55)] {
///     summary.observe(&v);
/// }
/// assert_eq!(summary.len(), 3);
/// assert_eq!(summary.nulls(), 1);
/// assert_eq!(summary.min(), Some(&Value::Int(40)));
/// assert_eq!(summary.max(), Some(&Value::Int(55)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnSummary {
    len: usize,
    nulls: usize,
    min: Option<Value>,
    max: Option<Value>,
}

impl ColumnSummary {
    /// An empty summary (no rows observed).
    pub fn new() -> Self {
        ColumnSummary::default()
    }

    /// Folds one value into the summary.
    pub fn observe(&mut self, value: &Value) {
        self.len += 1;
        if value.is_null() {
            self.nulls += 1;
            return;
        }
        match &self.min {
            Some(min) if min <= value => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(max) if max >= value => {}
            _ => self.max = Some(value.clone()),
        }
    }

    /// Summarizes an iterator of values.
    pub fn over_values<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut summary = ColumnSummary::new();
        for v in values {
            summary.observe(v);
        }
        summary
    }

    /// Summarizes column `column` across a batch of tuples.
    ///
    /// Returns `None` when the batch is empty or **any** row lacks the
    /// column (shorter arity): per-tuple pattern matching treats a missing
    /// attribute as a match, so no summary over the present values could
    /// soundly describe such a batch.
    ///
    /// ```
    /// use dsms_types::{ColumnSummary, DataType, Schema, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("speed", DataType::Float)]);
    /// let rows: Vec<Tuple> = [48.0, 52.0, 45.5]
    ///     .iter()
    ///     .map(|s| Tuple::new(schema.clone(), vec![Value::Float(*s)]))
    ///     .collect();
    /// let summary = ColumnSummary::over_column(&rows, 0).unwrap();
    /// assert_eq!(summary.min(), Some(&Value::Float(45.5)));
    /// assert_eq!(summary.max(), Some(&Value::Float(52.0)));
    /// assert!(ColumnSummary::over_column(&rows, 1).is_none(), "no such column");
    /// ```
    pub fn over_column(rows: &[Tuple], column: usize) -> Option<Self> {
        if rows.is_empty() {
            return None;
        }
        let mut summary = ColumnSummary::new();
        for row in rows {
            summary.observe(row.values().get(column)?);
        }
        Some(summary)
    }

    /// Number of values observed (nulls included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values have been observed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of null values observed.
    pub fn nulls(&self) -> usize {
        self.nulls
    }

    /// True when at least one observed value was null.
    pub fn has_nulls(&self) -> bool {
        self.nulls > 0
    }

    /// True when every observed value was null.
    pub fn all_null(&self) -> bool {
        self.len > 0 && self.nulls == self.len
    }

    /// The smallest non-null value observed, by [`Value`]'s total order.
    pub fn min(&self) -> Option<&Value> {
        self.min.as_ref()
    }

    /// The largest non-null value observed, by [`Value`]'s total order.
    pub fn max(&self) -> Option<&Value> {
        self.max.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaRef;
    use crate::schema::{DataType, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(&[("segment", DataType::Int), ("speed", DataType::Float)])
    }

    fn tuple(seg: i64, speed: f64) -> Tuple {
        Tuple::new(schema(), vec![Value::Int(seg), Value::Float(speed)])
    }

    #[test]
    fn observe_tracks_min_max_and_nulls() {
        let values = [Value::Int(5), Value::Null, Value::Int(-3), Value::Int(9)];
        let s = ColumnSummary::over_values(values.iter());
        assert_eq!(s.len(), 4);
        assert_eq!(s.nulls(), 1);
        assert!(s.has_nulls());
        assert!(!s.all_null());
        assert_eq!(s.min(), Some(&Value::Int(-3)));
        assert_eq!(s.max(), Some(&Value::Int(9)));
    }

    #[test]
    fn all_null_column_has_no_range() {
        let values = [Value::Null, Value::Null];
        let s = ColumnSummary::over_values(values.iter());
        assert!(s.all_null());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn empty_summary_is_empty() {
        let s = ColumnSummary::new();
        assert!(s.is_empty());
        assert!(!s.all_null(), "an empty summary makes no all-null claim");
    }

    #[test]
    fn over_column_summarizes_each_attribute() {
        let rows = vec![tuple(3, 40.0), tuple(1, 60.0), tuple(2, 50.0)];
        let segments = ColumnSummary::over_column(&rows, 0).unwrap();
        assert_eq!(segments.min(), Some(&Value::Int(1)));
        assert_eq!(segments.max(), Some(&Value::Int(3)));
        let speeds = ColumnSummary::over_column(&rows, 1).unwrap();
        assert_eq!(speeds.min(), Some(&Value::Float(40.0)));
        assert_eq!(speeds.max(), Some(&Value::Float(60.0)));
    }

    #[test]
    fn over_column_rejects_missing_columns_and_empty_batches() {
        let rows = vec![tuple(1, 1.0)];
        assert!(ColumnSummary::over_column(&rows, 2).is_none(), "column out of range");
        assert!(ColumnSummary::over_column(&[], 0).is_none(), "empty batch");
    }

    #[test]
    fn min_max_use_the_total_order_across_numeric_types() {
        // Value's total order compares Int and Float cross-numerically, the
        // same way PatternItem comparisons do.
        let values = [Value::Int(2), Value::Float(1.5), Value::Float(2.5)];
        let s = ColumnSummary::over_values(values.iter());
        assert_eq!(s.min(), Some(&Value::Float(1.5)));
        assert_eq!(s.max(), Some(&Value::Float(2.5)));
    }
}
