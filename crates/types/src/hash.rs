//! A fixed-seed, Fx-style hasher for deterministic routing.
//!
//! `std::collections::hash_map::DefaultHasher::new()` happens to use fixed
//! keys today, but the standard library documents neither that nor the hash
//! algorithm itself as stable across releases — anything that must be
//! *reproducibly* deterministic (hash-partition routing, pinned output
//! digests) needs a hasher whose algorithm this crate owns.  [`FixedHasher`]
//! is that hasher: the multiply-rotate-xor scheme popularised by Firefox's
//! `FxHasher`, seeded with a compile-time constant.  It is also much cheaper
//! per hash than the default SipHash — there is no per-hasher key schedule,
//! so constructing one per tuple costs nothing — which is why the shuffle's
//! per-tuple routing uses it.
//!
//! Not DoS-resistant by design; do not use it for maps keyed by untrusted
//! input.

use std::hash::{BuildHasher, Hash, Hasher};

/// Initial state: an arbitrary odd constant (the 64-bit golden ratio), fixed
/// forever so routing and pinned digests stay stable across releases.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// Multiplier from the Fx scheme (also the 64-bit golden-ratio prime family).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Deterministic Fx-style [`Hasher`] with a fixed seed.
#[derive(Debug, Clone)]
pub struct FixedHasher {
    hash: u64,
}

impl FixedHasher {
    /// Creates a hasher in its (fixed) initial state.
    pub fn new() -> Self {
        FixedHasher { hash: SEED }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Default for FixedHasher {
    fn default() -> Self {
        FixedHasher::new()
    }
}

impl Hasher for FixedHasher {
    /// Finishes with a Murmur3-style avalanche so *every* output bit depends
    /// on every input bit.  The raw Fx accumulator propagates entropy only
    /// upward (multiplication never lets high input bits influence low output
    /// bits), which would make `finish() % n` — exactly how the shuffle picks
    /// a partition — depend on just the low input bits.
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccb);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Fold the length into the top byte so "ab" and "ab\0" differ.
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }
}

/// [`BuildHasher`] for [`FixedHasher`], usable as the `S` parameter of
/// `HashMap`/`HashSet` when iteration-independent, run-to-run-identical
/// hashing is wanted.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = FixedHasher;

    fn build_hasher(&self) -> FixedHasher {
        FixedHasher::new()
    }
}

/// Hashes one value to completion with the fixed-seed hasher.  The stable
/// building block for pinned digests and deterministic routing.
pub fn fixed_hash(value: &impl Hash) -> u64 {
    let mut hasher = FixedHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically_across_hashers() {
        assert_eq!(fixed_hash(&42u64), fixed_hash(&42u64));
        let mut a = FixedHasher::new();
        let mut b = FixedHasher::new();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_inputs_disperse() {
        let hashes: std::collections::HashSet<u64> = (0..1000i64).map(|i| fixed_hash(&i)).collect();
        assert_eq!(hashes.len(), 1000, "no collisions on small sequential ints");
    }

    #[test]
    fn low_bits_spread_under_modulo() {
        // The shuffle routes with `finish() % partitions`: the avalanche
        // finalizer must push entropy into the low bits or small sequential
        // keys would all land in one partition.
        let mut buckets = [0usize; 4];
        for key in 0..32i64 {
            buckets[(fixed_hash(&key) % 4) as usize] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 0), "every bucket hit: {buckets:?}");
    }

    #[test]
    fn trailing_bytes_and_length_matter() {
        let mut a = FixedHasher::new();
        let mut b = FixedHasher::new();
        a.write(b"ab");
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish(), "length is folded into the remainder word");
    }

    #[test]
    fn algorithm_is_pinned() {
        // These constants are the contract: shuffle routing and pinned output
        // digests depend on them never changing.  If this test fails, the
        // hashing algorithm changed — do not update the constants without
        // understanding that every pinned digest in the repo moves with them.
        assert_eq!(fixed_hash(&0u64), 0x832d_11e5_84eb_9411);
        assert_eq!(fixed_hash(&42i64), 0x6015_5eb6_186c_17cb);
        let mut h = FixedHasher::new();
        h.write(b"hello world");
        assert_eq!(h.finish(), 0x7a03_f0ee_6b5c_94d2);
    }

    #[test]
    fn fixed_state_builds_equal_hashers() {
        use std::hash::BuildHasher;
        let s = FixedState;
        let mut a = s.build_hasher();
        let mut b = s.build_hasher();
        a.write_u64(7);
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
