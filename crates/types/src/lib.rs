//! # dsms-types
//!
//! Tuple, value, schema and time model for the feedback-punctuation DSMS
//! reproduction ("Inter-Operator Feedback in Data Stream Management Systems
//! via Punctuation", CIDR 2009).
//!
//! The paper's host system, NiagaraST, processes streams of flat relational
//! tuples annotated with timestamps.  This crate provides that substrate:
//!
//! * [`Value`] — a dynamically typed scalar (null, bool, int, float, text,
//!   timestamp) with a *total* order so values can appear in punctuation
//!   predicates and in hash keys.
//! * [`DataType`], [`Field`] and [`Schema`] — stream schemas, shared between
//!   operators via [`SchemaRef`] (an `Arc`).
//! * [`Tuple`] — a schema-tagged row of values.
//! * [`ColumnSummary`] — per-column min/max/null summaries over batches of
//!   tuples, the basis for batch-level punctuation-guard evaluation.
//! * [`Timestamp`] and [`StreamDuration`] — millisecond-resolution stream
//!   (application) time, used both for data timestamps and for window
//!   arithmetic.
//! * [`FixedHasher`] / [`fixed_hash`] — a fixed-seed Fx-style hasher whose
//!   algorithm this crate owns, for reproducibly deterministic routing and
//!   pinned digests (the std `DefaultHasher` guarantees neither).
//!
//! Everything in this crate is engine-agnostic: the punctuation algebra,
//! the feedback framework and the operators are all layered on top of it.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod hash;
pub mod schema;
pub mod time;
pub mod tuple;
pub mod value;

pub use column::ColumnSummary;
pub use error::{TypeError, TypeResult};
pub use hash::{fixed_hash, FixedHasher, FixedState};
pub use schema::{DataType, Field, Schema, SchemaBuilder, SchemaRef};
pub use time::{StreamDuration, Timestamp};
pub use tuple::{Tuple, TupleBuilder};
pub use value::Value;
