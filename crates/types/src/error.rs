//! Error types for the type layer.

use std::fmt;

/// Result alias used throughout the type layer.
pub type TypeResult<T> = Result<T, TypeError>;

/// Errors raised when constructing or manipulating schemas, tuples and values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The attribute that was requested.
        name: String,
        /// The schema's attribute names, for diagnostics.
        available: Vec<String>,
    },
    /// An attribute index was out of bounds for a schema or tuple.
    IndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The number of attributes actually present.
        len: usize,
    },
    /// A value had a different runtime type than the schema declared.
    TypeMismatch {
        /// The attribute (by name) that mismatched.
        attribute: String,
        /// The declared type.
        expected: String,
        /// The runtime type of the offending value.
        actual: String,
    },
    /// A tuple had a different arity than its schema.
    ArityMismatch {
        /// Number of values supplied.
        values: usize,
        /// Number of attributes in the schema.
        attributes: usize,
    },
    /// Two schemas that were required to be identical differ.
    SchemaMismatch {
        /// Human-readable description of the difference.
        detail: String,
    },
    /// A schema was constructed with a duplicate attribute name.
    DuplicateAttribute {
        /// The duplicated name.
        name: String,
    },
    /// A value could not be parsed from text.
    ParseError {
        /// The input text.
        input: String,
        /// The target type.
        target: String,
    },
    /// An arithmetic or aggregation operation was applied to incompatible values.
    InvalidOperation {
        /// Description of the operation and operands.
        detail: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownAttribute { name, available } => {
                write!(f, "unknown attribute `{name}` (available: {})", available.join(", "))
            }
            TypeError::IndexOutOfBounds { index, len } => {
                write!(f, "attribute index {index} out of bounds for arity {len}")
            }
            TypeError::TypeMismatch { attribute, expected, actual } => {
                write!(f, "attribute `{attribute}` expects {expected}, got {actual}")
            }
            TypeError::ArityMismatch { values, attributes } => {
                write!(f, "tuple has {values} values but schema has {attributes} attributes")
            }
            TypeError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            TypeError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name `{name}` in schema")
            }
            TypeError::ParseError { input, target } => {
                write!(f, "cannot parse `{input}` as {target}")
            }
            TypeError::InvalidOperation { detail } => write!(f, "invalid operation: {detail}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let err = TypeError::UnknownAttribute {
            name: "speed".into(),
            available: vec!["ts".into(), "segment".into()],
        };
        let msg = err.to_string();
        assert!(msg.contains("speed"));
        assert!(msg.contains("segment"));
    }

    #[test]
    fn display_arity_mismatch() {
        let err = TypeError::ArityMismatch { values: 2, attributes: 3 };
        assert_eq!(err.to_string(), "tuple has 2 values but schema has 3 attributes");
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = TypeError::DuplicateAttribute { name: "x".into() };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
