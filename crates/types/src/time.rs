//! Stream (application) time.
//!
//! NiagaraST experiments use traffic data reported at a 20-second resolution
//! over an 18-hour horizon.  All stream timestamps in this reproduction are
//! application-time milliseconds since an arbitrary stream epoch, wrapped in
//! [`Timestamp`].  Durations between timestamps are [`StreamDuration`]s.
//!
//! The types are deliberately small `Copy` newtypes so they can be embedded in
//! values, punctuation patterns and window arithmetic without allocation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in stream (application) time, in milliseconds since the stream epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(i64);

/// A span of stream time, in milliseconds.  May be negative when produced by
/// subtracting a later timestamp from an earlier one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StreamDuration(i64);

impl Timestamp {
    /// The stream epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);

    /// Creates a timestamp from raw milliseconds since the stream epoch.
    pub const fn from_millis(millis: i64) -> Self {
        Timestamp(millis)
    }

    /// Creates a timestamp from whole seconds since the stream epoch.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Creates a timestamp from whole minutes since the stream epoch.
    pub const fn from_minutes(minutes: i64) -> Self {
        Timestamp(minutes * 60_000)
    }

    /// Creates a timestamp from whole hours since the stream epoch.
    pub const fn from_hours(hours: i64) -> Self {
        Timestamp(hours * 3_600_000)
    }

    /// Raw milliseconds since the stream epoch.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Whole seconds since the stream epoch (truncating).
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: StreamDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    pub const fn saturating_sub(self, d: StreamDuration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The duration elapsed since `earlier` (negative if `self` is earlier).
    pub const fn duration_since(self, earlier: Timestamp) -> StreamDuration {
        StreamDuration(self.0 - earlier.0)
    }

    /// Aligns this timestamp down to the start of the window of `width` that
    /// contains it, following the WID window-id convention (windows start at
    /// the epoch).
    pub fn align_down(self, width: StreamDuration) -> Timestamp {
        assert!(width.0 > 0, "window width must be positive");
        Timestamp(self.0.div_euclid(width.0) * width.0)
    }

    /// The (zero-based) id of the tumbling window of `width` containing this
    /// timestamp.
    pub fn window_id(self, width: StreamDuration) -> i64 {
        assert!(width.0 > 0, "window width must be positive");
        self.0.div_euclid(width.0)
    }

    /// Returns the larger of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl StreamDuration {
    /// The zero duration.
    pub const ZERO: StreamDuration = StreamDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(millis: i64) -> Self {
        StreamDuration(millis)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        StreamDuration(secs * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(minutes: i64) -> Self {
        StreamDuration(minutes * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: i64) -> Self {
        StreamDuration(hours * 3_600_000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000
    }

    /// Whole minutes (truncating).
    pub const fn as_minutes(self) -> i64 {
        self.0 / 60_000
    }

    /// True when the duration is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True when the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value of the duration.
    pub const fn abs(self) -> StreamDuration {
        StreamDuration(self.0.abs())
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, factor: i64) -> StreamDuration {
        StreamDuration(self.0 * factor)
    }
}

impl Add<StreamDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: StreamDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<StreamDuration> for Timestamp {
    fn add_assign(&mut self, rhs: StreamDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<StreamDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: StreamDuration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<StreamDuration> for Timestamp {
    fn sub_assign(&mut self, rhs: StreamDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = StreamDuration;
    fn sub(self, rhs: Timestamp) -> StreamDuration {
        StreamDuration(self.0 - rhs.0)
    }
}

impl Add<StreamDuration> for StreamDuration {
    type Output = StreamDuration;
    fn add(self, rhs: StreamDuration) -> StreamDuration {
        StreamDuration(self.0 + rhs.0)
    }
}

impl Sub<StreamDuration> for StreamDuration {
    type Output = StreamDuration;
    fn sub(self, rhs: StreamDuration) -> StreamDuration {
        StreamDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0.div_euclid(1_000);
        let millis = self.0.rem_euclid(1_000);
        let hours = total_secs.div_euclid(3_600);
        let minutes = total_secs.rem_euclid(3_600) / 60;
        let secs = total_secs.rem_euclid(60);
        if millis == 0 {
            write!(f, "{hours:02}:{minutes:02}:{secs:02}")
        } else {
            write!(f, "{hours:02}:{minutes:02}:{secs:02}.{millis:03}")
        }
    }
}

impl fmt::Display for StreamDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_millis(2_000));
        assert_eq!(Timestamp::from_minutes(3), Timestamp::from_secs(180));
        assert_eq!(Timestamp::from_hours(1), Timestamp::from_minutes(60));
        assert_eq!(StreamDuration::from_hours(18).as_minutes(), 18 * 60);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_secs(100);
        let d = StreamDuration::from_secs(20);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        let mut u = t;
        u += d;
        u -= d;
        assert_eq!(u, t);
    }

    #[test]
    fn window_alignment_follows_wid() {
        let width = StreamDuration::from_secs(60);
        assert_eq!(Timestamp::from_secs(0).window_id(width), 0);
        assert_eq!(Timestamp::from_secs(59).window_id(width), 0);
        assert_eq!(Timestamp::from_secs(60).window_id(width), 1);
        assert_eq!(Timestamp::from_secs(61).align_down(width), Timestamp::from_secs(60));
        // negative timestamps still align down (floor semantics)
        assert_eq!(Timestamp::from_secs(-1).window_id(width), -1);
        assert_eq!(Timestamp::from_secs(-1).align_down(width), Timestamp::from_secs(-60));
    }

    #[test]
    fn display_formats_wall_clock_style() {
        assert_eq!(Timestamp::from_secs(3_661).to_string(), "01:01:01");
        assert_eq!(Timestamp::from_millis(1_500).to_string(), "00:00:01.500");
    }

    #[test]
    fn saturating_operations_do_not_overflow() {
        let max = Timestamp::MAX;
        assert_eq!(max.saturating_add(StreamDuration::from_millis(10)), Timestamp::MAX);
        let min = Timestamp::MIN;
        assert_eq!(min.saturating_sub(StreamDuration::from_millis(10)), Timestamp::MIN);
    }

    #[test]
    fn min_max_helpers() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn duration_helpers() {
        let d = StreamDuration::from_minutes(-2);
        assert!(d.is_negative());
        assert!(!d.is_positive());
        assert_eq!(d.abs(), StreamDuration::from_minutes(2));
        assert_eq!(StreamDuration::from_secs(20).times(3), StreamDuration::from_secs(60));
    }
}
