//! Dynamically typed scalar values.
//!
//! Stream tuples in NiagaraST carry attribute values of heterogeneous types;
//! punctuation patterns compare against those values with relational operators
//! (`=`, `<`, `≤`, `>`, `≥`).  [`Value`] therefore provides a *total* order
//! across values of the same type class (integers and floats compare
//! numerically with each other; NaN sorts above all other floats) so that the
//! punctuation algebra and aggregate operators can rely on `Ord`-like
//! comparisons without panicking.

use crate::error::{TypeError, TypeResult};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed scalar value carried in a tuple attribute.
///
/// `Text` carries `Arc<str>` rather than `String`: cloning a value — which
/// fan-out operators, joins, and key extractors do on every tuple — is then a
/// reference-count bump for every variant, never a heap copy.  The payload is
/// immutable either way (values are never edited in place, tuples are rebuilt
/// via [`crate::Tuple::with_value`]), so sharing is invisible to callers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// An absent value (e.g. a failed sensor reading awaiting imputation).
    Null,
    /// A boolean flag.
    Bool(bool),
    /// A 64-bit signed integer (segment ids, detector ids, counts, window ids).
    Int(i64),
    /// A 64-bit float (speeds, averages).
    Float(f64),
    /// A text value (freeway names, currency codes); shared, clone is O(1).
    Text(Arc<str>),
    /// A stream timestamp.
    Timestamp(Timestamp),
}

impl Value {
    /// Human-readable name of the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Timestamp(_) => "timestamp",
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float`, or the integer payload
    /// widened to a float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the timestamp payload, if this is a `Timestamp`.
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Numeric value of this scalar, if it is numeric (`Int`, `Float`, or
    /// `Timestamp` viewed as milliseconds).  Used by aggregates.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(t.as_millis() as f64),
            _ => None,
        }
    }

    /// Compares two values with SQL-like semantics restricted to a total order:
    ///
    /// * `Null` sorts below everything else and equals only `Null`.
    /// * `Int` and `Float` compare numerically with each other; NaN sorts above
    ///   every other float and equals itself.
    /// * Values of different (non-numeric-compatible) type classes compare by a
    ///   fixed type rank so that the order is still total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            // Mixed, incompatible type classes: order by type rank.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// True when the two values are comparable as the same type class (so a
    /// relational predicate over them is meaningful).
    pub fn comparable_with(&self, other: &Value) -> bool {
        use Value::*;
        matches!(
            (self, other),
            (Null, _)
                | (_, Null)
                | (Bool(_), Bool(_))
                | (Int(_), Int(_))
                | (Float(_), Float(_))
                | (Int(_), Float(_))
                | (Float(_), Int(_))
                | (Text(_), Text(_))
                | (Timestamp(_), Timestamp(_))
        )
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // same class as Int
            Value::Timestamp(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// Adds two numeric values, widening to float when needed.
    pub fn checked_add(&self, other: &Value) -> TypeResult<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (Float(a), Float(b)) => Ok(Float(a + b)),
            (Int(a), Float(b)) => Ok(Float(*a as f64 + b)),
            (Float(a), Int(b)) => Ok(Float(a + *b as f64)),
            _ => Err(TypeError::InvalidOperation {
                detail: format!("cannot add {} and {}", self.type_name(), other.type_name()),
            }),
        }
    }

    /// Parses a value from text given a target type name (used by workload
    /// loaders and the experiment harness).
    pub fn parse(text: &str, target: &crate::schema::DataType) -> TypeResult<Value> {
        use crate::schema::DataType;
        let trimmed = text.trim();
        if trimmed.eq_ignore_ascii_case("null") || trimmed.is_empty() {
            return Ok(Value::Null);
        }
        let err =
            || TypeError::ParseError { input: text.to_string(), target: format!("{target:?}") };
        match target {
            DataType::Bool => trimmed.parse::<bool>().map(Value::Bool).map_err(|_| err()),
            DataType::Int => trimmed.parse::<i64>().map(Value::Int).map_err(|_| err()),
            DataType::Float => trimmed.parse::<f64>().map(Value::Float).map_err(|_| err()),
            DataType::Text => Ok(Value::Text(trimmed.into())),
            DataType::Timestamp => trimmed
                .parse::<i64>()
                .map(|ms| Value::Timestamp(Timestamp::from_millis(ms)))
                .map_err(|_| err()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                // Ints and equal-valued floats hash identically so hash joins on
                // mixed numeric keys behave like their comparisons.
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Timestamp(t) => {
                4u8.hash(state);
                t.as_millis().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v.into())
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Text(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn null_sorts_first_and_equals_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Bool(false));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert!(Value::Int(5) < Value::Float(5.5));
        assert!(Value::Float(4.9) < Value::Int(5));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
    }

    #[test]
    fn int_and_equal_float_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        Value::Int(42).hash(&mut h1);
        Value::Float(42.0).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Text("abc".into()).as_text(), Some("abc"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Value::Timestamp(Timestamp::from_secs(3)).as_timestamp(),
            Some(Timestamp::from_secs(3))
        );
        assert_eq!(Value::Text("abc".into()).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn checked_add_widens_and_rejects() {
        assert_eq!(Value::Int(1).checked_add(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(1).checked_add(&Value::Float(0.5)).unwrap(), Value::Float(1.5));
        assert!(Value::Text("a".into()).checked_add(&Value::Int(1)).is_err());
    }

    #[test]
    fn parse_round_trips_each_type() {
        assert_eq!(Value::parse("42", &DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(Value::parse("4.5", &DataType::Float).unwrap(), Value::Float(4.5));
        assert_eq!(Value::parse("true", &DataType::Bool).unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("hi", &DataType::Text).unwrap(), Value::Text("hi".into()));
        assert_eq!(
            Value::parse("1500", &DataType::Timestamp).unwrap(),
            Value::Timestamp(Timestamp::from_millis(1500))
        );
        assert_eq!(Value::parse("  ", &DataType::Int).unwrap(), Value::Null);
        assert!(Value::parse("abc", &DataType::Int).is_err());
    }

    #[test]
    fn comparable_with_matches_type_classes() {
        assert!(Value::Int(1).comparable_with(&Value::Float(1.0)));
        assert!(Value::Null.comparable_with(&Value::Text("x".into())));
        assert!(!Value::Int(1).comparable_with(&Value::Text("1".into())));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Timestamp(Timestamp::from_secs(61)).to_string(), "00:01:01");
    }
}
